"""Async job scheduler: priority queue, coalescing, process-pool workers.

The serving core.  A :class:`JobScheduler` accepts :class:`JobSpec`
submissions on the event loop and resolves each one along the cheapest
path available:

1. **cache** — the spec's cache key (identical to ``repro.store``'s sweep
   key) is already in the :class:`~repro.service.cache.TwoTierCache`: a
   completed :class:`Job` is returned immediately, no worker touched;
2. **coalescing** — an identical request (same cache key) is already
   queued or running: the caller is attached to *that* job, so N
   concurrent identical requests cost exactly one computation;
3. **compute** — the job enters a bounded priority queue (higher
   ``priority`` pops first, FIFO within a priority) and runs on a worker
   — a process from a :class:`~concurrent.futures.ProcessPoolExecutor`
   (``procs >= 1``), or a single in-process thread (``procs = 0``, the
   test- and notebook-friendly mode).  Completed records persist through
   the cache into the store *before* the job is marked done, so a crash
   after completion can never have acknowledged an unpersisted result.

Experiments run under the adaptive precision engine (a ``precision``
knob in ``params``) stream convergence progress back into
:attr:`Job.progress`: the worker installs
:func:`repro.adaptive.set_round_observer` and forwards each round's
payload — via a manager queue from worker processes, or directly from the
worker thread.

Cancellation is honest about what a process pool can do: a *queued* job
cancels immediately; a *running* job cannot be preempted mid-computation
(:meth:`JobScheduler.cancel` returns False) — its result is persisted so
the spent work at least warms the cache.  :meth:`JobScheduler.close`
drains the same way: queued jobs are marked cancelled, in-flight jobs
complete and persist.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import signal
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from .._version import __version__
from ..errors import ModelError

# the package import (not .registry directly) so worker processes register
# the experiment modules before running their job
from ..experiments import run_experiment, validate_params
from ..experiments.__main__ import validate_ids
from ..experiments.base import canonical_cell, set_engine_config
from ..obs import (
    TraceContext,
    capture_spans,
    collect_timings,
    current_trace,
    emit_span,
    emit_span_record,
    get_logger,
    set_trace_context,
    span,
)
from ..obs.metrics import MetricsRegistry, set_default_registry
from ..store.records import cache_key, canonical_params, make_record
from .cache import TwoTierCache
from .errors import QueueFullError, ServiceError

_log = get_logger("repro.service.jobs")

__all__ = [
    "Job",
    "JobScheduler",
    "JobSpec",
    "ServiceMetrics",
    "QUEUED",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

_ENGINES = ("auto", "batch", "compiled", "fastest", "scalar")

#: finished jobs kept in the history index for ``GET /jobs/<id>``
_MAX_FINISHED = 4096

#: progress payloads retained per job (newest last)
_MAX_PROGRESS_HISTORY = 50


# ---------------------------------------------------------------------------
# worker kernel (module level: process pools must pickle it)
# ---------------------------------------------------------------------------

_PROGRESS_QUEUE = None  # set per worker process by _worker_init

#: sentinel the scheduler pushes through the progress queue at close so
#: the blocking drain thread wakes up and exits
_PROGRESS_STOP = "__progress_stop__"

#: ``(job_id, experiment_id, seed, fast, params, engine, n_jobs,
#: trace_id, parent_span_id)`` — the last two are None untraced
_JobTask = Tuple[
    str,
    str,
    int,
    bool,
    Tuple[Tuple[str, object], ...],
    str,
    int,
    Optional[str],
    Optional[str],
]


def _worker_init(progress_queue) -> None:
    """Process-pool initializer: progress pipe + SIGINT immunity.

    Workers ignore SIGINT so a Ctrl-C aimed at the server (delivered to
    the whole foreground process group) cannot kill a worker mid-job; the
    parent decides how to drain.
    """
    global _PROGRESS_QUEUE
    _PROGRESS_QUEUE = progress_queue
    signal.signal(signal.SIGINT, signal.SIG_IGN)


def _process_progress_put(item) -> None:
    if _PROGRESS_QUEUE is not None:
        _PROGRESS_QUEUE.put_nowait(item)


def _execute_job(
    task: _JobTask, progress_put: Optional[Callable] = None
) -> Tuple[dict, dict]:
    """Run one job in a worker; returns ``(store_record, obs_payload)``.

    Installs the job's engine configuration and a round observer for the
    duration of the run.  In a pool worker that state is private to the
    worker; on the thread path the previous values are restored afterwards
    (the observer is thread-local, so concurrent thread jobs cannot cross).
    Progress delivery is fire-and-forget: a dead progress pipe (e.g. during
    shutdown) never fails the computation.

    ``obs_payload`` carries the run's observability freight home over the
    result channel: the spans recorded worker-side (the parent re-emits
    them, so the trace tree connects across the process boundary), a
    snapshot of a fresh per-job metrics registry (the parent merges it —
    the worker→parent aggregation path), and the phase-timing breakdown.
    """
    if len(task) == 7:  # pre-trace tuple shape (direct callers, old tests)
        task = task + (None, None)
    (
        job_id,
        experiment_id,
        seed,
        fast,
        params,
        engine,
        n_jobs,
        trace_id,
        parent_span_id,
    ) = task
    if progress_put is None:
        progress_put = _process_progress_put
    from ..adaptive.controller import set_round_observer

    def observe(payload) -> None:
        try:
            progress_put((job_id, payload))
        except Exception:
            pass

    trace = (
        TraceContext(trace_id, parent_span_id)
        if trace_id and parent_span_id
        else None
    )
    job_registry = MetricsRegistry()
    previous_registry = set_default_registry(job_registry)
    previous_trace = set_trace_context(trace)
    previous_engine = set_engine_config(engine=engine, n_jobs=n_jobs)
    previous_observer = set_round_observer(observe)
    try:
        with capture_spans(exclusive=True) as spans, \
                collect_timings() as timer:
            with span(
                "job.execute",
                job_id=job_id,
                experiment_id=experiment_id,
            ):
                result = run_experiment(
                    experiment_id, seed=seed, fast=fast, params=dict(params)
                )
        timings = timer.payload(engine=engine, n_jobs=n_jobs)
    finally:
        set_round_observer(previous_observer)
        set_engine_config(
            engine=previous_engine.engine, n_jobs=previous_engine.n_jobs
        )
        set_trace_context(previous_trace)
        set_default_registry(previous_registry)
    record = make_record(
        experiment_id,
        seed=seed,
        fast=fast,
        params=dict(params),
        result=result,
        engine=engine,
    )
    obs_payload = {
        "spans": spans if trace is not None else [],
        "metrics": job_registry.snapshot(),
        "timings": timings,
    }
    return record, obs_payload


# ---------------------------------------------------------------------------
# job model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class JobSpec:
    """One run request's identity: what to compute, on which engine.

    ``params`` is a name-sorted tuple of pairs (hashable, insertion-order
    independent) exactly like :class:`~repro.sweeps.SweepPoint`; the cache
    key is the sweep layer's, so the service, sweeps and stores all agree
    on what "the same run" means.
    """

    experiment_id: str
    seed: int = 0
    fast: bool = True
    params: Tuple[Tuple[str, object], ...] = ()
    engine: str = "auto"
    n_jobs: int = 1

    def __post_init__(self) -> None:
        if self.engine not in _ENGINES:
            raise ModelError(
                f"engine must be one of {_ENGINES}, got {self.engine!r}"
            )
        if self.n_jobs < 1:
            raise ModelError(f"n_jobs must be >= 1, got {self.n_jobs}")

    @property
    def params_dict(self) -> Dict[str, object]:
        """The knobs as a plain dict."""
        return dict(self.params)

    def cache_key(self, version: str = __version__) -> str:
        """The store key this spec's record lives under."""
        return cache_key(
            self.experiment_id,
            self.seed,
            self.fast,
            self.params_dict,
            version,
            self.engine,
        )

    def label(self) -> str:
        """Human-readable label for logs and reports."""
        parts = [self.experiment_id, f"seed={self.seed}"]
        parts += [f"{name}={value}" for name, value in self.params]
        if not self.fast:
            parts.append("full")
        if self.engine != "auto":
            parts.append(f"engine={self.engine}")
        return " ".join(parts)

    @classmethod
    def from_request(cls, body: Mapping[str, object]) -> "JobSpec":
        """Build a validated spec from a ``POST /run`` JSON body.

        Unknown experiment ids fail with the CLI's did-you-mean message;
        unknown knobs with the runner's supported-knob list.  The
        request-level keys ``priority`` and ``wait`` are allowed and
        ignored here (the HTTP layer consumes them).
        """
        if not isinstance(body, Mapping):
            raise ModelError("request body must be a JSON object")
        known = {
            "experiment_id",
            "id",
            "seed",
            "fast",
            "params",
            "engine",
            "n_jobs",
            "priority",
            "wait",
        }
        stray = sorted(set(body) - known)
        if stray:
            raise ModelError(
                f"unknown request field(s): {stray} (known: {sorted(known)})"
            )
        experiment_id = body.get("experiment_id", body.get("id"))
        if not isinstance(experiment_id, str):
            raise ModelError(
                "request needs an 'experiment_id' (or 'id') string"
            )
        validate_ids([experiment_id])
        seed = body.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ModelError(f"seed must be an integer, got {seed!r}")
        fast = body.get("fast", True)
        if not isinstance(fast, bool):
            raise ModelError(f"fast must be a boolean, got {fast!r}")
        params = body.get("params") or {}
        if not isinstance(params, Mapping):
            raise ModelError(f"params must be an object, got {params!r}")
        validate_params(experiment_id, params)
        engine = body.get("engine", "auto")
        if not isinstance(engine, str):
            raise ModelError(f"engine must be a string, got {engine!r}")
        n_jobs = body.get("n_jobs", 1)
        if isinstance(n_jobs, bool) or not isinstance(n_jobs, int):
            raise ModelError(f"n_jobs must be an integer, got {n_jobs!r}")
        return cls(
            experiment_id=experiment_id,
            seed=seed,
            fast=fast,
            params=tuple(sorted(params.items())),
            engine=engine,
            n_jobs=n_jobs,
        )


class Job:
    """One scheduled (or cache-served) run and its lifecycle state."""

    def __init__(self, job_id: str, spec: JobSpec, priority: int = 0) -> None:
        self.id = job_id
        self.spec = spec
        self.priority = int(priority)
        self.key = spec.cache_key()
        self.state = QUEUED
        self.cached = False
        #: where the answer came from: "memory" | "store" | "computed"
        self.source: Optional[str] = None
        self.coalesced = 0
        self.error: Optional[str] = None
        self.record: Optional[dict] = None
        self.progress: Optional[dict] = None
        self.progress_history: List[dict] = []
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        #: the submitting request's trace context (span parent for the
        #: job's queue-wait/execute/persist spans); None untraced
        self.trace: Optional[TraceContext] = current_trace()
        #: phase breakdown (queue wait, worker phases, persist), seconds
        self.timings: Optional[Dict[str, object]] = None
        # monotonic twins of the wall-clock stamps: span durations must
        # never go negative under a clock step
        self._created_mono = time.perf_counter()
        self._started_mono: Optional[float] = None
        self._done = asyncio.Event()

    @property
    def done(self) -> bool:
        """True once the job reached a terminal state."""
        return self.state in (DONE, FAILED, CANCELLED)

    async def wait(self, timeout: Optional[float] = None) -> "Job":
        """Block until the job reaches a terminal state."""
        await asyncio.wait_for(self._done.wait(), timeout)
        return self

    def _task(self) -> _JobTask:
        spec = self.spec
        return (
            self.id,
            spec.experiment_id,
            spec.seed,
            spec.fast,
            spec.params,
            spec.engine,
            spec.n_jobs,
            self.trace.trace_id if self.trace is not None else None,
            self.trace.span_id if self.trace is not None else None,
        )

    def to_payload(self, include_record: bool = False) -> Dict[str, object]:
        """JSON-safe job status for the HTTP API."""
        spec = self.spec
        payload: Dict[str, object] = {
            "id": self.id,
            "state": self.state,
            "experiment_id": spec.experiment_id,
            "seed": spec.seed,
            "fast": spec.fast,
            "params": canonical_params(spec.params_dict),
            "engine": spec.engine,
            "n_jobs": spec.n_jobs,
            "priority": self.priority,
            "key": self.key,
            "cached": self.cached,
            "source": self.source,
            "coalesced": self.coalesced,
            "error": self.error,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "wait_seconds": (
                self.started - self.created
                if self.started is not None
                else None
            ),
            "duration_seconds": (
                self.finished - self.started
                if self.started is not None and self.finished is not None
                else None
            ),
            "progress": self.progress,
            "progress_rounds": len(self.progress_history),
            "trace_id": (
                self.trace.trace_id if self.trace is not None else None
            ),
        }
        if self.timings is not None:
            payload["timings"] = self.timings
        if include_record and self.record is not None:
            payload["record"] = self.record
        return payload


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


def _quantile(values: List[float], q: float) -> float:
    """Nearest-rank quantile of a non-empty sorted list."""
    index = min(int(q * len(values)), len(values) - 1)
    return values[index]


@dataclass
class ServiceMetrics:
    """Scheduler-side counters behind ``GET /metrics``."""

    submitted: int = 0
    cache_served: int = 0
    coalesced: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    rejected: int = 0
    started_at: float = field(default_factory=time.time)
    #: compute durations of completed jobs, seconds, bounded
    _durations: List[float] = field(default_factory=list)

    def record_duration(self, seconds: float) -> None:
        self._durations.append(float(seconds))
        if len(self._durations) > 1024:
            del self._durations[: len(self._durations) - 1024]

    def latency_snapshot(self) -> Dict[str, object]:
        durations = sorted(self._durations)
        if not durations:
            return {"count": 0, "mean": None, "p50": None, "p99": None, "max": None}
        return {
            "count": len(durations),
            "mean": sum(durations) / len(durations),
            "p50": _quantile(durations, 0.50),
            "p99": _quantile(durations, 0.99),
            "max": durations[-1],
        }


# ---------------------------------------------------------------------------
# scheduler
# ---------------------------------------------------------------------------


class JobScheduler:
    """Bounded-priority-queue scheduler over a worker pool and a cache.

    Event-loop-thread only (like the cache it owns): every public method
    must be called from the loop :meth:`start` ran on.  ``procs >= 1``
    executes jobs in a process pool; ``procs = 0`` in a single in-process
    worker thread (no subprocesses — the mode tests and notebooks use).
    """

    def __init__(
        self,
        cache: Optional[TwoTierCache] = None,
        procs: int = 1,
        queue_limit: int = 64,
        name: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
        slow_job_seconds: float = 30.0,
    ) -> None:
        if procs < 0:
            raise ModelError(f"procs must be >= 0, got {procs}")
        if queue_limit < 1:
            raise ModelError(f"queue_limit must be >= 1, got {queue_limit}")
        if name is not None and (not name or "/" in name or " " in name):
            raise ModelError(
                f"scheduler name must be a non-empty token without '/' or "
                f"spaces, got {name!r}"
            )
        if registry is None:
            from ..obs.metrics import default_registry

            registry = default_registry()
        self.registry = registry
        self.cache = (
            cache
            if cache is not None
            else TwoTierCache(registry=registry)
        )
        #: instance name; job ids become ``<name>-job-NNNNNN`` so a router
        #: can route ``GET /jobs/<id>`` back to the shard that minted it
        self.name = name
        self.procs = procs
        self.queue_limit = queue_limit
        self.slots = max(procs, 1)
        self.metrics = ServiceMetrics()
        #: completed jobs slower than this log a ``job.slow`` warning
        self.slow_job_seconds = slow_job_seconds
        self._jobs_events = registry.counter(
            "repro_jobs_total",
            "Job lifecycle events (submitted, cache_served, coalesced, "
            "completed, failed, cancelled, rejected).",
            ("event",),
        )
        #: pre-bound per-event children — submit() is the request hot
        #: path (cache hits included), so label resolution happens once
        self._event_children = {
            event: self._jobs_events.labels(event=event)
            for event in (
                "submitted",
                "cache_served",
                "coalesced",
                "completed",
                "failed",
                "cancelled",
                "rejected",
            )
        }
        self._compute_seconds = registry.histogram(
            "repro_job_compute_seconds",
            "Worker compute duration per completed or failed job.",
        )
        self._queue_wait_seconds = registry.histogram(
            "repro_job_queue_wait_seconds",
            "Time jobs spend queued before taking a worker slot.",
        )
        self._queue_depth_gauge = registry.gauge(
            "repro_queue_depth", "Jobs waiting for a worker slot."
        )
        self._running_gauge = registry.gauge(
            "repro_jobs_running", "Jobs currently on a worker."
        )
        self._adaptive_half_width = registry.gauge(
            "repro_adaptive_half_width",
            "Latest adaptive-round CI half-width, per metric name.",
            ("metric",),
        )
        self._adaptive_replications = registry.gauge(
            "repro_adaptive_replications",
            "Latest adaptive-round cumulative replications, per metric "
            "name.",
            ("metric",),
        )
        self._adaptive_rounds = registry.counter(
            "repro_adaptive_rounds_total",
            "Adaptive precision rounds observed across all jobs.",
        )
        self._jobs: Dict[str, Job] = {}
        self._by_key: Dict[str, Job] = {}
        self._heap: List[Tuple[int, int, Job]] = []
        self._sequence = itertools.count()
        self._queued = 0
        self._running = 0
        self._closed = False
        self._wakeup: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor: Optional[Executor] = None
        self._manager = None
        self._progress_queue = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._progress_task: Optional[asyncio.Task] = None
        self._job_tasks: set = set()

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> "JobScheduler":
        """Spin up the worker pool, the dispatcher and the progress drain."""
        if self._loop is not None:
            raise ServiceError("scheduler already started", status=500)
        self._loop = asyncio.get_running_loop()
        self._wakeup = asyncio.Event()
        if self.procs >= 1:
            import multiprocessing

            self._manager = multiprocessing.Manager()
            self._progress_queue = self._manager.Queue()
            self._executor = ProcessPoolExecutor(
                max_workers=self.procs,
                initializer=_worker_init,
                initargs=(self._progress_queue,),
            )
            self._progress_task = self._loop.create_task(
                self._drain_progress()
            )
        else:
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-service-worker"
            )
        self._dispatcher = self._loop.create_task(self._dispatch_loop())
        return self

    async def close(self) -> None:
        """Drain and shut down: queued jobs cancel, running jobs finish.

        In-flight computations cannot be preempted; they complete and their
        records persist to the store before the pool shuts down — the
        guarantee the server's SIGINT handler (and its clean-store test)
        relies on.
        """
        if self._closed:
            return
        self._closed = True
        for job in list(self._jobs.values()):
            if job.state == QUEUED:
                self._cancel_queued(job)
        if self._wakeup is not None:
            self._wakeup.set()
        if self._dispatcher is not None:
            await self._dispatcher
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        if self._progress_task is not None:
            # the pool is down: no producer remains, so a sentinel cleanly
            # unblocks the drain thread (cancel would leak it mid-get)
            try:
                self._progress_queue.put(_PROGRESS_STOP)
            except Exception:
                self._progress_task.cancel()
            try:
                await self._progress_task
            except asyncio.CancelledError:
                pass
        if self._manager is not None:
            self._manager.shutdown()

    # -- submission ------------------------------------------------------

    def submit(self, spec: JobSpec, priority: int = 0) -> Job:
        """Resolve a request: cache hit, coalesce, or enqueue.

        Returns the job serving this request — possibly an already-running
        job other callers share (coalescing), or an already-done synthetic
        job for cache hits.  Raises :class:`QueueFullError` when the
        bounded queue is at capacity and :class:`ServiceError` (503) after
        :meth:`close`.
        """
        if self._closed:
            raise ServiceError("scheduler is shutting down", status=503)
        if self._loop is None:
            raise ServiceError("scheduler not started", status=500)
        self.metrics.submitted += 1
        self._event_children["submitted"].inc()
        key = spec.cache_key()
        record, source = self.cache.lookup(key)
        if record is not None:
            job = Job(self._next_id(), spec, priority)
            job.state = DONE
            job.cached = True
            job.source = source
            job.record = record
            now = time.time()
            job.started = job.finished = now
            job._done.set()
            self._remember(job)
            self.metrics.cache_served += 1
            self._event_children["cache_served"].inc()
            return job
        active = self._by_key.get(key)
        if active is not None and not active.done:
            active.coalesced += 1
            self.metrics.coalesced += 1
            self._event_children["coalesced"].inc()
            if active.state == QUEUED and priority > active.priority:
                # honor the priority contract for coalesced callers: the
                # shared job escalates to the highest attached priority
                # (the stale heap entry is skipped lazily once this one,
                # which sorts earlier, has started the job)
                active.priority = priority
                heapq.heappush(
                    self._heap, (-priority, next(self._sequence), active)
                )
                self._wakeup.set()
            return active
        if self._queued >= self.queue_limit:
            self.metrics.rejected += 1
            self._event_children["rejected"].inc()
            raise QueueFullError(
                f"job queue is full ({self._queued}/{self.queue_limit} "
                f"queued); retry later or raise --queue-limit"
            )
        job = Job(self._next_id(), spec, priority)
        self._remember(job)
        self._by_key[key] = job
        heapq.heappush(self._heap, (-job.priority, next(self._sequence), job))
        self._queued += 1
        self._wakeup.set()
        return job

    def get(self, job_id: str) -> Optional[Job]:
        """The job under ``job_id``, or None (e.g. evicted history)."""
        return self._jobs.get(job_id)

    def jobs_snapshot(self, limit: int = 100) -> List[Dict[str, object]]:
        """Payloads of the most recently submitted jobs, newest first."""
        out = []
        for job in reversed(list(self._jobs.values())):
            out.append(job.to_payload())
            if len(out) >= limit:
                break
        return out

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; running/finished jobs are not cancellable.

        A running job's computation cannot be preempted (it lives in a
        worker process); letting it finish persists the record, so the
        spent work warms the cache instead of evaporating.
        """
        job = self._jobs.get(job_id)
        if job is None or job.state != QUEUED:
            return False
        self._cancel_queued(job)
        return True

    @property
    def queue_depth(self) -> int:
        """Jobs waiting for a worker slot."""
        return self._queued

    @property
    def running(self) -> int:
        """Jobs currently on a worker."""
        return self._running

    def metrics_snapshot(self) -> Dict[str, object]:
        """The ``GET /metrics`` payload."""
        metrics = self.metrics
        return {
            "name": self.name,
            "uptime_seconds": time.time() - metrics.started_at,
            "jobs": {
                "submitted": metrics.submitted,
                "cache_served": metrics.cache_served,
                "coalesced": metrics.coalesced,
                "completed": metrics.completed,
                "failed": metrics.failed,
                "cancelled": metrics.cancelled,
                "rejected": metrics.rejected,
                "queue_depth": self.queue_depth,
                "queue_limit": self.queue_limit,
                "running": self.running,
                "slots": self.slots,
                "procs": self.procs,
            },
            "cache": self.cache.stats(),
            "compute_seconds": metrics.latency_snapshot(),
        }

    def prometheus_text(self) -> str:
        """The ``GET /metrics?format=prometheus`` exposition body.

        Counters and histograms accumulate live; point-in-time gauges
        (queue depth, cache occupancy, uptime) are refreshed here so
        every scrape sees current values.
        """
        registry = self.registry
        self._queue_depth_gauge.set(self._queued)
        self._running_gauge.set(self._running)
        registry.gauge(
            "repro_worker_slots", "Concurrent worker slots."
        ).set(self.slots)
        registry.gauge(
            "repro_uptime_seconds", "Seconds since scheduler start."
        ).set(time.time() - self.metrics.started_at)
        stats = self.cache.stats()
        registry.gauge(
            "repro_cache_memory_items", "Records in the memory tier."
        ).set(stats["memory_size"])
        registry.gauge(
            "repro_cache_store_records", "Records in the persistent store."
        ).set(stats["store_records"])
        return registry.render()

    # -- internals -------------------------------------------------------

    def _next_id(self) -> str:
        base = f"job-{next(self._sequence):06d}"
        return f"{self.name}-{base}" if self.name else base

    def _remember(self, job: Job) -> None:
        self._jobs[job.id] = job
        if len(self._jobs) > _MAX_FINISHED:
            for job_id, old in list(self._jobs.items()):
                if len(self._jobs) <= _MAX_FINISHED:
                    break
                if old.done:
                    del self._jobs[job_id]

    def _cancel_queued(self, job: Job) -> None:
        job.state = CANCELLED
        job.finished = time.time()
        self._queued -= 1
        self.metrics.cancelled += 1
        self._event_children["cancelled"].inc()
        if self._by_key.get(job.key) is job:
            del self._by_key[job.key]
        job._done.set()
        # the heap entry stays; _fill_slots skips non-queued jobs lazily

    async def _dispatch_loop(self) -> None:
        while True:
            self._fill_slots()
            if self._closed and self._running == 0:
                break
            await self._wakeup.wait()
            self._wakeup.clear()

    def _fill_slots(self) -> None:
        if self._closed:
            return
        while self._running < self.slots and self._heap:
            _, _, job = heapq.heappop(self._heap)
            if job.state != QUEUED:
                continue  # cancelled while queued; already accounted
            self._queued -= 1
            self._running += 1
            job.state = RUNNING
            job.started = time.time()
            job._started_mono = time.perf_counter()
            wait = job._started_mono - job._created_mono
            self._queue_wait_seconds.observe(wait)
            if job.trace is not None:
                emit_span(
                    "job.queue_wait",
                    job.trace.child(),
                    job.trace.span_id,
                    job.created,
                    wait,
                    job_id=job.id,
                )
            task = self._loop.create_task(self._run_job(job))
            self._job_tasks.add(task)
            task.add_done_callback(self._job_tasks.discard)

    async def _run_job(self, job: Job) -> None:
        try:
            if self.procs >= 1:
                record, obs_payload = await self._loop.run_in_executor(
                    self._executor, _execute_job, job._task()
                )
            else:
                record, obs_payload = await self._loop.run_in_executor(
                    self._executor,
                    _execute_job,
                    job._task(),
                    self._thread_progress_put(),
                )
            persist_wall = time.time()
            persist_start = time.perf_counter()
            self.cache.put(record)
            persist_seconds = time.perf_counter() - persist_start
        except Exception as error:
            job.error = f"{type(error).__name__}: {error}"
            job.state = FAILED
            self.metrics.failed += 1
            self._event_children["failed"].inc()
        else:
            job.record = record
            job.source = "computed"
            job.state = DONE
            self.metrics.completed += 1
            self._event_children["completed"].inc()
            self._absorb_worker_obs(job, obs_payload, persist_seconds)
            if job.trace is not None:
                emit_span(
                    "job.persist",
                    job.trace.child(),
                    job.trace.span_id,
                    persist_wall,
                    persist_seconds,
                    job_id=job.id,
                )
        finally:
            job.finished = time.time()
            if job.started is not None:
                duration = job.finished - job.started
                self.metrics.record_duration(duration)
                self._compute_seconds.observe(duration)
                if duration > self.slow_job_seconds:
                    _log.warning(
                        "job.slow",
                        job_id=job.id,
                        experiment_id=job.spec.experiment_id,
                        state=job.state,
                        duration_seconds=duration,
                        threshold_seconds=self.slow_job_seconds,
                    )
                elif _log.enabled("info"):
                    _log.info(
                        "job.finished",
                        job_id=job.id,
                        experiment_id=job.spec.experiment_id,
                        state=job.state,
                        duration_seconds=duration,
                        error=job.error,
                    )
            if self._by_key.get(job.key) is job:
                del self._by_key[job.key]
            self._running -= 1
            job._done.set()
            self._wakeup.set()

    def _absorb_worker_obs(
        self, job: Job, obs_payload: object, persist_seconds: float
    ) -> None:
        """Fold a worker's observability freight into scheduler state:
        re-emit its spans (the trace tree crosses the process boundary),
        merge its metric deltas, and assemble the job's phase timings."""
        if not isinstance(obs_payload, dict):
            return
        for record in obs_payload.get("spans") or []:
            if isinstance(record, dict):
                emit_span_record(record)
        metrics_snapshot = obs_payload.get("metrics")
        if isinstance(metrics_snapshot, dict) and metrics_snapshot:
            try:
                self.registry.merge(metrics_snapshot)
            except ValueError:
                pass  # layout drift from a mixed-version worker: skip
        timings = obs_payload.get("timings")
        job.timings = {
            "queue_wait_seconds": (
                round(job._started_mono - job._created_mono, 6)
                if job._started_mono is not None
                else None
            ),
            "persist_seconds": round(persist_seconds, 6),
            "execute": timings if isinstance(timings, dict) else None,
        }

    # -- progress --------------------------------------------------------

    def _thread_progress_put(self) -> Callable:
        loop = self._loop

        def put(item) -> None:
            loop.call_soon_threadsafe(self._apply_progress, item)

        return put

    def _apply_progress(self, item) -> None:
        try:
            job_id, payload = item
        except (TypeError, ValueError):
            return
        job = self._jobs.get(job_id)
        if job is None or not isinstance(payload, dict):
            return
        safe = canonical_cell(payload)
        job.progress = safe
        job.progress_history.append(safe)
        if len(job.progress_history) > _MAX_PROGRESS_HISTORY:
            del job.progress_history[0]
        self._observe_round(safe)

    def _observe_round(self, payload: Mapping) -> None:
        """Feed adaptive per-round gauges from a round-observer payload."""
        self._adaptive_rounds.inc()
        metrics = payload.get("metrics")
        if not isinstance(metrics, Mapping):
            return
        for metric_name, info in metrics.items():
            if not isinstance(info, Mapping):
                continue
            half_width = info.get("half_width")
            if isinstance(half_width, (int, float)):
                self._adaptive_half_width.set(
                    half_width, metric=str(metric_name)
                )
            replications = info.get("replications")
            if isinstance(replications, (int, float)):
                self._adaptive_replications.set(
                    replications, metric=str(metric_name)
                )

    async def _drain_progress(self) -> None:
        """Pump worker-process round reports into job state (process mode).

        Blocks on the manager queue in a default-executor thread (zero
        idle cost, immediate delivery); :meth:`close` unblocks it with a
        sentinel once no worker can produce more.
        """
        while True:
            try:
                item = await self._loop.run_in_executor(
                    None, self._progress_queue.get
                )
            except (EOFError, BrokenPipeError, ConnectionError, OSError):
                return  # manager gone (shutdown)
            if item == _PROGRESS_STOP:
                return
            self._apply_progress(item)
