"""Two-tier result cache: in-memory LRU over a persistent ``ResultStore``.

The service's warm path.  Tier 1 is a bounded least-recently-used map of
complete store records; tier 2 is an optional append-only
:class:`~repro.store.ResultStore` shared with the sweep layer, so results
computed by offline sweeps are warm the moment the server starts, and
results computed by the server survive restarts.  A hit in either tier
returns without touching a worker process — the property the scheduler's
submit path relies on.

Only records carrying a ``result`` payload are cacheable: identity-only
records mark a point as *known*, not as *computed* (exactly the
distinction :meth:`repro.sweeps.Sweep.partition` draws), and serving one
would hand a client a result-less answer.

The cache is deliberately not thread-safe: the scheduler drives it from
the event loop only.  Hit/miss/eviction counters feed ``GET /metrics``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Mapping, Optional, Tuple

from ..errors import ModelError
from ..obs.metrics import MetricsRegistry
from ..store import ResultStore

__all__ = ["TwoTierCache"]


class TwoTierCache:
    """A bounded LRU of store records over an optional persistent store."""

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        capacity: int = 1024,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity < 1:
            raise ModelError(f"cache capacity must be >= 1, got {capacity}")
        self.store = store
        self.capacity = capacity
        self._memory: "OrderedDict[str, dict]" = OrderedDict()
        self.memory_hits = 0
        self.store_hits = 0
        self.misses = 0
        self.evictions = 0
        # registry twins of the plain counters above: the legacy JSON
        # shape keeps reading the attributes, the Prometheus exposition
        # reads these (same increments, so the views always agree)
        if registry is None:
            from ..obs.metrics import default_registry

            registry = default_registry()
        self._hits_metric = registry.counter(
            "repro_cache_hits_total",
            "Cache hits by tier (memory or store).",
            ("tier",),
        )
        # lookup() is on the warm request path — bind the tier children
        # once so a hit pays one lock, not label resolution
        self._memory_hits_metric = self._hits_metric.labels(tier="memory")
        self._store_hits_metric = self._hits_metric.labels(tier="store")
        self._misses_metric = registry.counter(
            "repro_cache_misses_total", "Cache lookups that missed both tiers."
        )
        self._evictions_metric = registry.counter(
            "repro_cache_evictions_total",
            "Memory-tier LRU evictions.",
        )

    # -- reading ---------------------------------------------------------

    def get(self, key: str) -> Optional[dict]:
        """The complete record under ``key``, or None (counted as a miss)."""
        record, _ = self.lookup(key)
        return record

    def lookup(self, key: str) -> Tuple[Optional[dict], Optional[str]]:
        """Like :meth:`get`, also reporting which tier answered.

        Returns ``(record, source)`` with source ``"memory"``, ``"store"``
        or ``None``.  Memory hits refresh the entry's recency; store hits
        promote the record into memory so a repeat is a memory hit.
        """
        record = self._memory.get(key)
        if record is not None:
            self._memory.move_to_end(key)
            self.memory_hits += 1
            self._memory_hits_metric.inc()
            return record, "memory"
        if self.store is not None:
            record = self.store.get(key)
            if record is not None and "result" in record:
                self.store_hits += 1
                self._store_hits_metric.inc()
                self._remember(key, record)
                return record, "store"
        self.misses += 1
        self._misses_metric.inc()
        return None, None

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        if self.store is None:
            return False
        record = self.store.get(key)
        return record is not None and "result" in record

    # -- writing ---------------------------------------------------------

    def put(self, record: Mapping[str, object]) -> str:
        """Persist a freshly computed record into both tiers.

        The store write happens first — a crash after it loses only the
        memory tier, which rebuilds from the store; the other order could
        serve a record that never reached disk.
        """
        if "result" not in record:
            raise ModelError(
                f"cache refuses identity-only record "
                f"{record.get('key', '<unkeyed>')!r} (no result payload)"
            )
        record = dict(record)
        if self.store is not None:
            key = self.store.put(record)
        else:
            from ..store.records import validate_record

            validate_record(record)
            key = record["key"]
        self._remember(key, record)
        return key

    def _remember(self, key: str, record: dict) -> None:
        self._memory[key] = dict(record)
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)
            self.evictions += 1
            self._evictions_metric.inc()

    # -- reporting -------------------------------------------------------

    @property
    def hits(self) -> int:
        """Total hits across both tiers."""
        return self.memory_hits + self.store_hits

    def stats(self) -> Dict[str, object]:
        """Counter snapshot for ``GET /metrics``."""
        lookups = self.hits + self.misses
        return {
            "memory_hits": self.memory_hits,
            "store_hits": self.store_hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_ratio": (self.hits / lookups) if lookups else 0.0,
            "memory_size": len(self._memory),
            "memory_capacity": self.capacity,
            "store_records": len(self.store) if self.store is not None else 0,
            "store_path": (
                str(self.store.path) if self.store is not None else None
            ),
        }
