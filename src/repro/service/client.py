"""Blocking HTTP client for the simulation service.

A thin, dependency-free (stdlib ``http.client``) wrapper used by the test
suite, the load harness and the sweep layer's ``--via-service`` path.  One
:class:`ServiceClient` holds one keep-alive connection and is therefore
**not thread-safe** — concurrent load generators give each worker thread
its own client (connections are cheap; the server multiplexes).

Error responses (4xx/5xx) raise :class:`~repro.service.errors.ServiceError`
carrying the HTTP status and the server's message — including the
did-you-mean hints for unknown experiment ids.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Dict, Mapping, Optional, Tuple
from urllib.parse import urlsplit

from ..obs import (
    TRACE_HEADER,
    current_trace,
    format_trace_header,
    new_trace_context,
    parse_prometheus_text,
)
from .errors import ServiceError

__all__ = ["ServiceClient"]

_TERMINAL = ("done", "failed", "cancelled")


class ServiceClient:
    """A blocking JSON client bound to one service base URL."""

    def __init__(self, base_url: str, timeout: float = 630.0) -> None:
        parts = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if parts.scheme not in ("", "http"):
            raise ServiceError(
                f"only http:// service URLs are supported, got {base_url!r}"
            )
        if not parts.hostname:
            raise ServiceError(f"service URL has no host: {base_url!r}")
        self.host = parts.hostname
        self.port = parts.port or 8752
        self.timeout = timeout
        self._connection: Optional[http.client.HTTPConnection] = None
        #: trace id of the most recent request (tests assert propagation)
        self.last_trace_id: Optional[str] = None

    # -- transport -------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._connection

    def close(self) -> None:
        """Drop the keep-alive connection (reopened on the next request)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping] = None,
        parse_json: bool = True,
    ) -> Tuple[int, object]:
        body = None
        headers = {"Accept": "application/json"}
        # every request carries a trace: the ambient context when the
        # caller is already inside a span, a fresh root otherwise — so a
        # bare client call is itself traceable end to end
        trace = current_trace() or new_trace_context()
        headers[TRACE_HEADER] = format_trace_header(trace)
        self.last_trace_id = trace.trace_id
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        last_error: Optional[Exception] = None
        for attempt in range(2):
            connection = self._connect()
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
                break
            except (
                http.client.HTTPException,
                ConnectionError,
                socket.timeout,
                OSError,
            ) as error:
                # a stale keep-alive connection (server restarted, idle
                # timeout) fails exactly once; reconnect and retry once
                self.close()
                last_error = error
        else:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self.port}: "
                f"{last_error}",
                status=503,
            )
        if not parse_json:
            if response.status >= 400:
                raise ServiceError(
                    raw.decode("utf-8", "replace")[:200],
                    status=response.status,
                )
            return response.status, raw.decode("utf-8", "replace")
        try:
            parsed = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            raise ServiceError(
                f"service returned non-JSON ({response.status}): "
                f"{raw[:200]!r}",
                status=502,
            )
        if response.status >= 400:
            message = (
                parsed.get("error", raw.decode("utf-8", "replace"))
                if isinstance(parsed, dict)
                else str(parsed)
            )
            raise ServiceError(message, status=response.status)
        return response.status, parsed

    # -- API -------------------------------------------------------------

    def healthz(self) -> dict:
        """The server's liveness payload."""
        return self._request("GET", "/healthz")[1]

    def metrics(self, format: str = "json", parse: bool = True) -> object:
        """The server's metrics, in either exposition format.

        ``format="json"`` (default) returns the legacy counter snapshot
        dict.  ``format="prometheus"`` fetches the text exposition and —
        with ``parse=True`` — runs it through the strict parser,
        returning the ``{family: {type, help, samples, ...}}`` mapping;
        ``parse=False`` returns the raw exposition text.
        """
        if format == "json":
            return self._request("GET", "/metrics")[1]
        if format != "prometheus":
            raise ServiceError(
                f"unknown metrics format {format!r} (use 'json' or "
                f"'prometheus')"
            )
        _, text = self._request(
            "GET", "/metrics?format=prometheus", parse_json=False
        )
        return parse_prometheus_text(text) if parse else text

    def experiments(self) -> dict:
        """The experiment catalog with each runner's knobs."""
        return self._request("GET", "/experiments")[1]

    def submit(
        self,
        experiment_id: str,
        seed: int = 0,
        fast: bool = True,
        params: Optional[Mapping[str, object]] = None,
        engine: str = "auto",
        n_jobs: int = 1,
        priority: int = 0,
        wait: bool = False,
    ) -> dict:
        """``POST /run``; returns the job payload (result record when done).

        With ``wait=True`` the server blocks the request until the job
        reaches a terminal state (coalesced requests all unblock on the
        shared computation).  Cache hits return immediately either way.
        """
        payload: Dict[str, object] = {
            "experiment_id": experiment_id,
            "seed": seed,
            "fast": fast,
            "engine": engine,
            "n_jobs": n_jobs,
            "priority": priority,
            "wait": wait,
        }
        if params:
            payload["params"] = dict(params)
        return self._request("POST", "/run", payload)[1]

    def run(
        self,
        experiment_id: str,
        seed: int = 0,
        fast: bool = True,
        params: Optional[Mapping[str, object]] = None,
        engine: str = "auto",
        n_jobs: int = 1,
        priority: int = 0,
        timeout: float = 600.0,
    ) -> dict:
        """Submit and block until terminal; raise unless the job completed.

        Returns the terminal job payload, whose ``record`` field is the
        store record (identity + ``result``) of the computed point.
        ``timeout`` bounds the *whole* call — the blocking submit plus any
        follow-up polling — with a 504 :class:`ServiceError` on expiry.
        """
        start = time.monotonic()
        job = self.submit(
            experiment_id,
            seed=seed,
            fast=fast,
            params=params,
            engine=engine,
            n_jobs=n_jobs,
            priority=priority,
            wait=True,
        )
        if job["state"] not in _TERMINAL:
            remaining = timeout - (time.monotonic() - start)
            if remaining <= 0:
                raise ServiceError(
                    f"timed out after {timeout}s waiting for job "
                    f"{job['id']} ({experiment_id}, state {job['state']})",
                    status=504,
                )
            job = self.wait(job["id"], timeout=remaining)
        if job["state"] != "done":
            raise ServiceError(
                f"job {job['id']} ({experiment_id}) ended {job['state']}: "
                f"{job.get('error') or 'no error detail'}",
                status=500,
            )
        return job

    def job(self, job_id: str) -> dict:
        """``GET /jobs/<id>``: status, progress, record when done."""
        return self._request("GET", f"/jobs/{job_id}")[1]

    def jobs(self) -> dict:
        """``GET /jobs``: recent job summaries, newest first."""
        return self._request("GET", "/jobs")[1]

    def wait(
        self, job_id: str, timeout: float = 600.0, poll: float = 0.05
    ) -> dict:
        """Poll ``GET /jobs/<id>`` until the job reaches a terminal state.

        Raises a 504 :class:`ServiceError` once ``timeout`` seconds have
        elapsed without the job going terminal, and a 410 if the accepted
        job id stops resolving server-side (a shard restarted or compacted
        its history away) — waiting longer can never succeed then, so the
        condition is surfaced immediately rather than polled against.
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                job = self.job(job_id)
            except ServiceError as error:
                if error.status == 404:
                    raise ServiceError(
                        f"job {job_id} was accepted but no longer exists "
                        "server-side (shard restart or history "
                        "compaction); resubmit the request",
                        status=410,
                    ) from error
                raise
            if job["state"] in _TERMINAL:
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout}s waiting for job {job_id} "
                    f"(state {job['state']})",
                    status=504,
                )
            time.sleep(min(poll, max(0.0, deadline - time.monotonic())))

    def cancel(self, job_id: str) -> dict:
        """``POST /jobs/<id>/cancel``; ``cancelled`` is False for running jobs."""
        return self._request("POST", f"/jobs/{job_id}/cancel")[1]
