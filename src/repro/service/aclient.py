"""Minimal async HTTP/1.1 client for router-to-shard calls.

The router lives on an event loop, so the blocking
:class:`~repro.service.client.ServiceClient` (stdlib ``http.client``)
is the wrong shape — one stalled shard would freeze every in-flight
request.  This is its asyncio twin: JSON-only, ``Content-Length``-only,
keep-alive, built directly on :func:`asyncio.open_connection`.  One
:class:`AsyncHttpClient` per shard; each holds a small pool of idle
connections so concurrent forwards to the same shard don't serialize.

Transport failures raise :class:`ShardUnreachable` — the router's signal
to mark the shard down and re-route along the ring's preference list.
HTTP-level errors do *not* raise: the router relays a shard's 4xx/5xx
(and its body) to the caller verbatim, so did-you-mean hints and
queue-full 429s survive the extra hop.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional, Tuple, Union

from ..obs import TRACE_HEADER, current_trace, format_trace_header
from .errors import ServiceError

__all__ = ["AsyncHttpClient", "ShardUnreachable"]

_MAX_IDLE = 8  # pooled keep-alive connections per shard


class ShardUnreachable(ServiceError):
    """Transport-level failure talking to a shard (connect/read/timeout)."""

    def __init__(self, message: str) -> None:
        super().__init__(message, status=503)


class AsyncHttpClient:
    """An asyncio JSON client with a keep-alive connection pool."""

    def __init__(
        self, host: str, port: int, timeout: float = 630.0
    ) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._idle: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []

    async def request(
        self, method: str, path: str, payload: Optional[object] = None,
        parse_json: bool = True,
    ) -> Tuple[int, Union[dict, str], Dict[str, str]]:
        """One round trip; returns ``(status, parsed_body, headers)``.

        Raises :class:`ShardUnreachable` on transport failure.  A pooled
        connection can be stale (shard restarted while it idled), so a
        failure on a *reused* connection retries once on a fresh one.
        The caller's ambient trace context (if any) rides along as the
        ``X-Repro-Trace`` header, so shard-side spans parent onto the
        router's relay span.  With ``parse_json=False`` the body comes
        back as decoded text (the Prometheus exposition path).
        """
        body = b""
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
        trace = current_trace()
        trace_line = (
            f"{TRACE_HEADER}: {format_trace_header(trace)}\r\n"
            if trace is not None
            else ""
        )
        request = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Accept: application/json\r\n"
            f"{trace_line}"
            f"\r\n"
        ).encode("latin-1") + body
        last_error: Optional[Exception] = None
        for _ in range(2):
            reused = bool(self._idle)
            if reused:
                reader, writer = self._idle.pop()
            else:
                try:
                    reader, writer = await asyncio.wait_for(
                        asyncio.open_connection(self.host, self.port),
                        timeout=min(self.timeout, 5.0),
                    )
                except (OSError, asyncio.TimeoutError) as error:
                    raise ShardUnreachable(
                        f"cannot connect to {self.host}:{self.port}: "
                        f"{error or type(error).__name__}"
                    )
            try:
                writer.write(request)
                await writer.drain()
                status, parsed, headers = await asyncio.wait_for(
                    self._read_response(reader, parse_json),
                    timeout=self.timeout,
                )
            except (
                OSError,
                ConnectionError,
                asyncio.IncompleteReadError,
                asyncio.TimeoutError,
            ) as error:
                writer.close()
                last_error = error
                if reused:
                    continue  # stale keep-alive; retry on a fresh socket
                raise ShardUnreachable(
                    f"request to {self.host}:{self.port} failed: "
                    f"{error or type(error).__name__}"
                )
            if headers.get("connection", "").lower() == "close":
                writer.close()
            elif len(self._idle) < _MAX_IDLE:
                self._idle.append((reader, writer))
            else:
                writer.close()
            return status, parsed, headers
        raise ShardUnreachable(
            f"request to {self.host}:{self.port} failed: "
            f"{last_error or 'unknown error'}"
        )

    async def _read_response(
        self, reader: asyncio.StreamReader, parse_json: bool = True
    ) -> Tuple[int, Union[dict, str], Dict[str, str]]:
        status_line = await reader.readline()
        if not status_line:
            raise ConnectionError("shard closed the connection")
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise ConnectionError(f"bad status line: {status_line!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        raw = await reader.readexactly(length) if length else b""
        if not parse_json:
            return status, raw.decode("utf-8", "replace"), headers
        try:
            parsed = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            parsed = {"error": raw.decode("utf-8", "replace")[:200]}
        if not isinstance(parsed, dict):
            parsed = {"value": parsed}
        return status, parsed, headers

    async def metrics(self, format: str = "json") -> Union[dict, str]:
        """Fetch ``GET /metrics`` in either exposition format.

        ``"json"`` returns the parsed legacy snapshot; ``"prometheus"``
        returns the strict-parsed ``{family: ...}`` mapping (use
        :func:`repro.obs.parse_prometheus_text` directly for raw text).
        """
        if format == "json":
            _, body, _ = await self.request("GET", "/metrics")
            return body
        if format != "prometheus":
            raise ServiceError(
                f"unknown metrics format {format!r} (use 'json' or "
                f"'prometheus')"
            )
        from ..obs import parse_prometheus_text

        _, text, _ = await self.request(
            "GET", "/metrics?format=prometheus", parse_json=False
        )
        return parse_prometheus_text(text)

    async def close(self) -> None:
        """Close every pooled connection."""
        while self._idle:
            _, writer = self._idle.pop()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
