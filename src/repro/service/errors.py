"""Service-layer errors.

All subclass :class:`~repro.errors.ModelError` so existing CLI error
handling (usage errors exit 2) covers service failures without special
cases, and carry the HTTP status the server responds with.
"""

from __future__ import annotations

from ..errors import ModelError

__all__ = ["QueueFullError", "ServiceError"]


class ServiceError(ModelError):
    """A service-level failure, carrying its HTTP status code."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = int(status)


class QueueFullError(ServiceError):
    """The scheduler's bounded queue rejected a submission (HTTP 429)."""

    def __init__(self, message: str) -> None:
        super().__init__(message, status=429)
