"""Service-layer errors.

All subclass :class:`~repro.errors.ModelError` so existing CLI error
handling (usage errors exit 2) covers service failures without special
cases, and carry the HTTP status the server responds with.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import ModelError

__all__ = ["QueueFullError", "ServiceError"]


class ServiceError(ModelError):
    """A service-level failure, carrying its HTTP status code.

    ``headers`` (optional) are extra response headers the server should
    attach — the router uses it for ``Retry-After`` on cluster-wide 503s.
    """

    def __init__(
        self,
        message: str,
        status: int = 400,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        super().__init__(message)
        self.status = int(status)
        self.headers = headers


class QueueFullError(ServiceError):
    """The scheduler's bounded queue rejected a submission (HTTP 429)."""

    def __init__(self, message: str) -> None:
        super().__init__(message, status=429)
