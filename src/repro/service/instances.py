"""Local shard-instance harness: real server subprocesses + a router.

The chaos tests and the bench harness need a *real* cluster — separate
OS processes with their own event loops, stores and worker pools — not
threads in one interpreter (you cannot SIGKILL a thread).  This module
spawns shard instances via the CLI (``python -m repro.experiments serve
--port 0 ...``), parses the startup banner for the bound port, and
fronts them with a :class:`~repro.service.router.ThreadedRouter`.

:class:`ShardProcess` wraps one instance with the lifecycle the chaos
test script needs: ``start`` / ``kill`` (SIGKILL, no shutdown courtesy)
/ ``restart`` — the restart re-binds the *same* port, so the router's
ring heals without reconfiguration once the health probe sees the
instance answer again.

:class:`LocalCluster` composes N shards (each with its own store
sub-directory, ``<store>/s0`` …) behind one router and is a context
manager, so a failing test still tears the subprocesses down.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from .errors import ServiceError
from .router import ThreadedRouter

__all__ = ["LocalCluster", "ShardProcess"]

_BANNER = re.compile(r"serving http://([\w.\-]+):(\d+)")


class ShardProcess:
    """One shard instance hosted in a real subprocess."""

    def __init__(
        self,
        name: str,
        store_path: str,
        procs: int = 0,
        queue_limit: int = 64,
        store_backend: str = "auto",
        port: int = 0,
        startup_timeout: float = 60.0,
        log_file: Optional[str] = None,
        log_level: str = "warning",
        log_format: str = "json",
    ) -> None:
        self.name = name
        self.store_path = store_path
        self.procs = procs
        self.queue_limit = queue_limit
        self.store_backend = store_backend
        self.port = port  # 0 until first start binds one
        self.startup_timeout = startup_timeout
        #: structured logs go to a file, not the stdout pipe — nobody
        #: drains the pipe after startup, so chatty logging through it
        #: would eventually block the shard on a full pipe buffer
        self.log_file = log_file
        self.log_level = log_level
        self.log_format = log_format
        self.host = "127.0.0.1"
        self._process: Optional[subprocess.Popen] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid if self._process is not None else None

    @property
    def alive(self) -> bool:
        return self._process is not None and self._process.poll() is None

    def start(self) -> "ShardProcess":
        """Spawn the serve subprocess and wait for its startup banner.

        First start binds a free port (``--port 0``); restarts reuse the
        recorded port so the router's shard table stays valid.
        """
        if self.alive:
            raise ServiceError(f"shard {self.name} is already running")
        command = [
            sys.executable,
            "-m",
            "repro.experiments",
            "serve",
            "--host",
            self.host,
            "--port",
            str(self.port),
            "--procs",
            str(self.procs),
            "--queue-limit",
            str(self.queue_limit),
            "--store",
            str(self.store_path),
            "--store-backend",
            self.store_backend,
            "--name",
            self.name,
        ]
        if self.log_file is not None:
            command += [
                "--log-file",
                str(self.log_file),
                "--log-level",
                self.log_level,
                "--log-format",
                self.log_format,
            ]
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        if src not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                f"{src}{os.pathsep}{existing}" if existing else src
            )
        self._process = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        deadline = time.monotonic() + self.startup_timeout
        while True:
            line = self._process.stdout.readline()
            if line:
                match = _BANNER.search(line)
                if match:
                    self.host, self.port = match.group(1), int(match.group(2))
                    break
            elif self._process.poll() is not None:
                raise ServiceError(
                    f"shard {self.name} exited during startup "
                    f"(code {self._process.returncode})",
                    status=500,
                )
            if time.monotonic() > deadline:
                self._process.kill()
                raise ServiceError(
                    f"shard {self.name} did not print its banner within "
                    f"{self.startup_timeout}s",
                    status=500,
                )
        return self

    def kill(self) -> None:
        """SIGKILL the instance — no drain, no goodbye (chaos mode)."""
        if self._process is None:
            return
        try:
            self._process.kill()
        except ProcessLookupError:
            pass
        self._process.wait(timeout=30.0)

    def terminate(self) -> None:
        """SIGTERM the instance and wait for its clean shutdown."""
        if self._process is None:
            return
        if self._process.poll() is None:
            try:
                self._process.send_signal(signal.SIGTERM)
            except ProcessLookupError:
                pass
            try:
                self._process.wait(timeout=60.0)
            except subprocess.TimeoutExpired:
                self._process.kill()
                self._process.wait(timeout=30.0)

    def restart(self) -> "ShardProcess":
        """Bring a killed instance back on the same port."""
        if self.alive:
            raise ServiceError(f"shard {self.name} is still running")
        if self.port == 0:
            raise ServiceError(f"shard {self.name} was never started")
        return self.start()


class LocalCluster:
    """N shard subprocesses behind one in-thread router."""

    def __init__(
        self,
        n_shards: int,
        store_root: str,
        procs: int = 0,
        queue_limit: int = 64,
        store_backend: str = "auto",
        retries: int = 1,
        backoff: float = 0.05,
        health_interval: float = 0.25,
        log_dir: Optional[str] = None,
        log_level: str = "warning",
    ) -> None:
        if n_shards < 1:
            raise ServiceError(f"n_shards must be >= 1, got {n_shards}")
        self.store_root = Path(store_root)
        log_root = Path(log_dir) if log_dir is not None else None
        if log_root is not None:
            log_root.mkdir(parents=True, exist_ok=True)
        self.shards: List[ShardProcess] = [
            ShardProcess(
                f"s{index}",
                store_path=str(self.store_root / f"s{index}"),
                procs=procs,
                queue_limit=queue_limit,
                store_backend=store_backend,
                log_file=(
                    str(log_root / f"s{index}.jsonl")
                    if log_root is not None
                    else None
                ),
                log_level=log_level,
            )
            for index in range(n_shards)
        ]
        self._retries = retries
        self._backoff = backoff
        self._health_interval = health_interval
        self.router: Optional[ThreadedRouter] = None

    @property
    def url(self) -> str:
        if self.router is None or self.router.url is None:
            raise ServiceError("cluster is not started")
        return self.router.url

    def shard(self, name: str) -> ShardProcess:
        for shard in self.shards:
            if shard.name == name:
                return shard
        raise ServiceError(f"no shard named {name!r}")

    def start(self) -> "LocalCluster":
        """Start every shard, then the router over their bound URLs."""
        try:
            for shard in self.shards:
                shard.start()
            self.router = ThreadedRouter(
                {shard.name: shard.url for shard in self.shards},
                retries=self._retries,
                backoff=self._backoff,
                health_interval=self._health_interval,
            )
        except BaseException:
            self.stop()
            raise
        return self

    def stop(self) -> None:
        """Tear down the router, then terminate every shard."""
        if self.router is not None:
            self.router.stop()
            self.router = None
        for shard in self.shards:
            shard.terminate()

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
