"""Simulation serving layer: async scheduler, two-tier cache, HTTP API.

The operational layer the ROADMAP's "serve heavy traffic" north star asks
for: instead of every caller paying full Monte-Carlo cost in a one-shot
CLI process, a long-lived server answers run requests along the cheapest
path — in-memory LRU hit, persistent-store hit, coalesced onto an
in-flight identical computation, or scheduled onto a bounded
priority-queue process pool.  Cache identity is the sweep layer's
content-hash key (:func:`repro.store.records.cache_key`), so the server,
offline sweeps and stored results all interoperate: a sweep warms the
server's cache and the server's store resumes a sweep.

Layers:

* :mod:`~repro.service.cache` — memory-LRU over a
  :class:`~repro.store.ResultStore`;
* :mod:`~repro.service.jobs` — the async scheduler (priorities,
  coalescing, cancellation, adaptive-progress streaming);
* :mod:`~repro.service.http` — the dependency-free asyncio JSON/HTTP
  front-end (``serve`` CLI subcommand hosts it);
* :mod:`~repro.service.client` — the blocking client used by tests, the
  load harness (``benchmarks/bench_service.py``) and ``sweep
  --via-service``.

See ``docs/service.md`` for the API reference and deployment notes.
"""

from .cache import TwoTierCache
from .client import ServiceClient
from .errors import QueueFullError, ServiceError
from .http import ServiceServer, ThreadedServer
from .jobs import Job, JobScheduler, JobSpec, ServiceMetrics

__all__ = [
    "Job",
    "JobScheduler",
    "JobSpec",
    "QueueFullError",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "ServiceServer",
    "ThreadedServer",
    "TwoTierCache",
]
