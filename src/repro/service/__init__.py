"""Simulation serving layer: async scheduler, two-tier cache, HTTP API.

The operational layer the ROADMAP's "serve heavy traffic" north star asks
for: instead of every caller paying full Monte-Carlo cost in a one-shot
CLI process, a long-lived server answers run requests along the cheapest
path — in-memory LRU hit, persistent-store hit, coalesced onto an
in-flight identical computation, or scheduled onto a bounded
priority-queue process pool.  Cache identity is the sweep layer's
content-hash key (:func:`repro.store.records.cache_key`), so the server,
offline sweeps and stored results all interoperate: a sweep warms the
server's cache and the server's store resumes a sweep.

Layers:

* :mod:`~repro.service.cache` — memory-LRU over a
  :class:`~repro.store.ResultStore`;
* :mod:`~repro.service.jobs` — the async scheduler (priorities,
  coalescing, cancellation, adaptive-progress streaming);
* :mod:`~repro.service.http` — the dependency-free asyncio JSON/HTTP
  front-end (``serve`` CLI subcommand hosts it);
* :mod:`~repro.service.client` — the blocking client used by tests, the
  load harness (``benchmarks/bench_service.py``) and ``sweep
  --via-service``;
* :mod:`~repro.service.shard` / :mod:`~repro.service.router` — the
  scale-out layer: a consistent-hash ring over N shard instances and a
  router front-end that forwards each request to its key's owner, so
  coalescing and caching hold cluster-wide (``router`` CLI subcommand
  hosts it);
* :mod:`~repro.service.instances` — subprocess shard + local-cluster
  harness for the chaos tests and the bench.

See ``docs/service.md`` for the API reference and deployment notes.
"""

from .cache import TwoTierCache
from .client import ServiceClient
from .errors import QueueFullError, ServiceError
from .http import BaseHttpServer, ServiceServer, ThreadedServer
from .instances import LocalCluster, ShardProcess
from .jobs import Job, JobScheduler, JobSpec, ServiceMetrics
from .router import Router, RouterServer, ThreadedRouter
from .shard import HashRing

__all__ = [
    "BaseHttpServer",
    "HashRing",
    "Job",
    "JobScheduler",
    "JobSpec",
    "LocalCluster",
    "QueueFullError",
    "Router",
    "RouterServer",
    "ServiceClient",
    "ServiceError",
    "ServiceMetrics",
    "ServiceServer",
    "ShardProcess",
    "ThreadedRouter",
    "ThreadedServer",
    "TwoTierCache",
]
