"""Cluster front-end: route each request to the shard that owns its key.

One router + N shard instances behave like one big service.  The router
computes every ``POST /run`` request's cache key (the sweep layer's
content hash) and forwards the request to the owning shard on the
:class:`~repro.service.shard.HashRing`.  Identical requests — no matter
which client sent them — therefore reach the *same* shard, whose
scheduler coalesces them onto one computation: coalescing and the
two-tier cache become cluster-wide without any shared state between
shards.

Failure handling, in order of escalation:

1. **bounded retry with backoff** — a transport failure against a shard
   retries on a fresh connection after a short exponential backoff
   (killed shards fail fast at connect, so this costs milliseconds);
2. **ring re-route** — a shard that stays unreachable is marked down and
   the request falls through to the next shard on the key's preference
   list; the cluster degrades (that key's cache/coalescing locality
   moves) but keeps answering;
3. **503 + Retry-After** — only when *no* shard on the list is
   reachable does the caller see an error, with a ``Retry-After`` hint.

A background health loop probes ``GET /healthz`` on each shard; a shard
that comes back is detected within one probe interval and resumes
owning its range (the ring itself never changes — membership is fixed
at construction, only health toggles).

Shard-level HTTP errors are **relayed verbatim** (status and body): a
429 queue-full or a did-you-mean 400 from a shard reaches the caller
unchanged, with a ``shard`` field added so callers can see placement.

``GET /jobs/<id>`` routes by the id itself: shards are named, and their
schedulers mint ids like ``s1-job-000042``, so the router peels the
shard name off the id.  Ids without a known prefix fall back to asking
every reachable shard.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..errors import ModelError
from ..obs import span, tracing_active
from ..obs.metrics import (
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
    render_prometheus,
)
from .aclient import AsyncHttpClient, ShardUnreachable
from .errors import ServiceError
from .http import (
    PROMETHEUS_CONTENT_TYPE,
    BaseHttpServer,
    RawResponse,
    _experiments_payload,
    _method_not_allowed,
    _null_context,
    _Request,
)
from .jobs import JobSpec
from .shard import HashRing

__all__ = ["Router", "RouterServer", "ShardState", "ThreadedRouter"]

#: counters summed across shards for the cluster /metrics view
_SUMMED_COUNTERS = (
    "submitted",
    "cache_served",
    "coalesced",
    "completed",
    "failed",
    "cancelled",
    "rejected",
    "queue_depth",
    "running",
    "slots",
)


class ShardState:
    """One shard's address, client and live health bookkeeping."""

    def __init__(self, name: str, host: str, port: int, timeout: float) -> None:
        self.name = name
        self.host = host
        self.port = int(port)
        self.client = AsyncHttpClient(host, port, timeout=timeout)
        self.healthy = True  # optimistic: first failure flips it
        self.consecutive_failures = 0
        self.last_error: Optional[str] = None
        self.last_change = time.time()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def mark_up(self) -> None:
        if not self.healthy:
            self.last_change = time.time()
        self.healthy = True
        self.consecutive_failures = 0
        self.last_error = None

    def mark_down(self, error: Exception) -> None:
        if self.healthy:
            self.last_change = time.time()
        self.healthy = False
        self.consecutive_failures += 1
        self.last_error = str(error)

    def to_payload(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "url": self.url,
            "healthy": self.healthy,
            "consecutive_failures": self.consecutive_failures,
            "last_error": self.last_error,
            "since": self.last_change,
        }


def _parse_shard_url(url: str) -> Tuple[str, int]:
    from urllib.parse import urlsplit

    parts = urlsplit(url if "//" in url else f"http://{url}")
    if parts.scheme not in ("", "http"):
        raise ModelError(f"only http:// shard URLs are supported: {url!r}")
    if not parts.hostname or not parts.port:
        raise ModelError(f"shard URL needs host:port, got {url!r}")
    return parts.hostname, parts.port


class Router:
    """Key-affinity request router over a fixed set of shard instances."""

    def __init__(
        self,
        shards: Dict[str, str],
        retries: int = 1,
        backoff: float = 0.05,
        health_interval: float = 1.0,
        timeout: float = 630.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if not shards:
            raise ModelError("router needs at least one shard (name -> url)")
        for name in shards:
            if not name or "/" in name or " " in name:
                raise ModelError(
                    f"shard name must be a non-empty token without '/' or "
                    f"spaces, got {name!r}"
                )
        if retries < 0:
            raise ModelError(f"retries must be >= 0, got {retries}")
        self.ring = HashRing(list(shards))
        self.retries = retries
        self.backoff = backoff
        self.health_interval = health_interval
        self._shards: Dict[str, ShardState] = {}
        for name, url in shards.items():
            host, port = _parse_shard_url(url)
            self._shards[name] = ShardState(name, host, port, timeout)
        self._health_task: Optional[asyncio.Task] = None
        self.started_at = time.time()
        if registry is None:
            from ..obs.metrics import default_registry

            registry = default_registry()
        self.registry = registry
        self._instrumented = not isinstance(registry, NullRegistry)
        self._relays = registry.counter(
            "repro_router_relays_total",
            "Requests relayed to shards, by shard and outcome.",
            ("shard", "outcome"),
        )
        self._scrapes = registry.counter(
            "repro_router_scrapes_total",
            "Per-shard metrics scrapes, by shard and outcome.",
            ("shard", "outcome"),
        )
        self._shards_healthy_gauge = registry.gauge(
            "repro_router_shards_healthy",
            "Shards currently passing health probes.",
        )
        self._shards_total_gauge = registry.gauge(
            "repro_router_shards_total", "Shards configured on the ring."
        )
        self._uptime_gauge = registry.gauge(
            "repro_uptime_seconds", "Seconds since the router started."
        )

    def _relay_span(self, path: str, shard_name: str):
        """A ``router.relay`` span, or a no-op when uninstrumented.

        The span installs itself as the current trace context, so the
        shard-bound request's ``X-Repro-Trace`` header (added by
        :class:`~repro.service.aclient.AsyncHttpClient`) parents the
        shard's own spans under the relay."""
        if not self._instrumented or not tracing_active():
            return _null_context()
        return span("router.relay", path=path, shard=shard_name)

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> "Router":
        """Probe every shard once, then keep probing in the background."""
        await self.check_health()
        self._health_task = asyncio.get_running_loop().create_task(
            self._health_loop()
        )
        return self

    async def close(self) -> None:
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                await self._health_task
            except asyncio.CancelledError:
                pass
            self._health_task = None
        for shard in self._shards.values():
            await shard.client.close()

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.health_interval)
            try:
                await self.check_health()
            except asyncio.CancelledError:
                raise
            except Exception:
                pass  # a probe hiccup must never kill the loop

    async def check_health(self) -> Dict[str, bool]:
        """Probe every shard's ``/healthz`` concurrently; update state."""

        async def probe(shard: ShardState) -> None:
            try:
                status, _, _ = await asyncio.wait_for(
                    shard.client.request("GET", "/healthz"),
                    timeout=max(self.health_interval, 1.0),
                )
            except (ShardUnreachable, asyncio.TimeoutError) as error:
                shard.mark_down(
                    error if str(error) else TimeoutError("health probe")
                )
                return
            if status == 200:
                shard.mark_up()
            else:
                shard.mark_down(RuntimeError(f"healthz returned {status}"))

        await asyncio.gather(
            *(probe(shard) for shard in self._shards.values())
        )
        return {name: s.healthy for name, s in self._shards.items()}

    # -- forwarding ------------------------------------------------------

    def owner(self, key: str) -> str:
        """The healthy-agnostic ring owner for a cache key."""
        return self.ring.owner(key)

    def _candidates(self, key: str) -> List[ShardState]:
        """Preference-ordered shards: healthy first, marked-down last.

        Down shards stay in the list — health state can be stale (the
        probe interval is finite), so a "down" shard still gets one shot
        after every healthy candidate failed rather than 503ing early.
        """
        order = [self._shards[name] for name in self.ring.preference(key)]
        healthy = [shard for shard in order if shard.healthy]
        down = [shard for shard in order if not shard.healthy]
        return healthy + down

    async def forward(
        self,
        method: str,
        path: str,
        payload: Optional[object],
        key: str,
    ) -> Tuple[int, dict, str]:
        """Send a request to the shard owning ``key``, with failover.

        Returns ``(status, body, shard_name)`` — including shard-level
        HTTP errors, which relay verbatim.  Raises :class:`ServiceError`
        503 (with ``Retry-After``) only when every candidate shard is
        unreachable after bounded retries.
        """
        last_error: Optional[Exception] = None
        for shard in self._candidates(key):
            with self._relay_span(path, shard.name) as handle:
                for attempt in range(self.retries + 1):
                    try:
                        status, body, _ = await shard.client.request(
                            method, path, payload
                        )
                    except ShardUnreachable as error:
                        last_error = error
                        if attempt < self.retries:
                            await asyncio.sleep(self.backoff * (2**attempt))
                            continue
                        shard.mark_down(error)
                        self._relays.inc(
                            shard=shard.name, outcome="unreachable"
                        )
                        if handle is not None:
                            handle.fields["outcome"] = "unreachable"
                        break  # fall through to the next preference entry
                    shard.mark_up()
                    self._relays.inc(shard=shard.name, outcome="ok")
                    if handle is not None:
                        handle.fields["status"] = status
                    return status, body, shard.name
        raise ServiceError(
            f"no shard reachable for this request "
            f"({len(self._shards)} configured, all down); last error: "
            f"{last_error}",
            status=503,
            headers={"Retry-After": "1"},
        )

    async def forward_run(self, body: object) -> Tuple[int, dict, str]:
        """Validate a ``POST /run`` body and forward it to the key's owner.

        Validation happens router-side first: malformed requests get
        their 400 (with did-you-mean hints) without consuming a shard
        round trip, and the router needs the spec anyway — its cache key
        is the routing key.
        """
        if not isinstance(body, dict):
            raise ServiceError("request body must be a JSON object")
        spec = JobSpec.from_request(body)
        return await self.forward("POST", "/run", body, spec.cache_key())

    def _shard_for_job(self, job_id: str) -> Optional[ShardState]:
        """The shard that minted ``job_id``, by its name prefix."""
        name, separator, _ = job_id.rpartition("-job-")
        if separator and name in self._shards:
            return self._shards[name]
        return None

    async def forward_job(
        self, method: str, path: str, job_id: str
    ) -> Tuple[int, dict, str]:
        """Route a ``/jobs/<id>...`` request to the shard that owns the id.

        Prefixed ids go straight to their shard (with ring-style 503
        semantics if it is down — job state lives only there, so no
        other shard can answer).  Unprefixed ids broadcast to every
        reachable shard and return the first non-404 answer.
        """
        shard = self._shard_for_job(job_id)
        if shard is not None:
            with self._relay_span(path, shard.name) as handle:
                for attempt in range(self.retries + 1):
                    try:
                        status, body, _ = await shard.client.request(
                            method, path
                        )
                    except ShardUnreachable as error:
                        if attempt < self.retries:
                            await asyncio.sleep(self.backoff * (2**attempt))
                            continue
                        shard.mark_down(error)
                        self._relays.inc(
                            shard=shard.name, outcome="unreachable"
                        )
                        if handle is not None:
                            handle.fields["outcome"] = "unreachable"
                        raise ServiceError(
                            f"shard {shard.name!r} (which owns job {job_id}) "
                            f"is unreachable: {error}",
                            status=503,
                            headers={"Retry-After": "1"},
                        )
                    shard.mark_up()
                    self._relays.inc(shard=shard.name, outcome="ok")
                    if handle is not None:
                        handle.fields["status"] = status
                    return status, body, shard.name
        # no recognizable prefix: ask everyone, first non-404 wins
        last: Tuple[int, dict, str] = (
            404,
            {"error": f"no such job: {job_id}"},
            "",
        )
        for state in self._shards.values():
            try:
                status, body, _ = await state.client.request(method, path)
            except ShardUnreachable as error:
                state.mark_down(error)
                continue
            state.mark_up()
            if status != 404:
                return status, body, state.name
        return last

    # -- cluster views ---------------------------------------------------

    def shards_payload(self) -> Dict[str, object]:
        """The ``GET /shards`` topology + health payload."""
        return {
            "ring": {
                "shards": list(self.ring.shards),
                "vnodes": self.ring.vnodes,
            },
            "shards": [
                self._shards[name].to_payload() for name in self.ring.shards
            ],
        }

    def healthz_payload(self) -> Tuple[int, Dict[str, object]]:
        """Router liveness: 200 while any shard is reachable, else 503."""
        reachable = sum(1 for s in self._shards.values() if s.healthy)
        payload = {
            "status": "ok" if reachable else "degraded",
            "role": "router",
            "shards_total": len(self._shards),
            "shards_healthy": reachable,
        }
        return (200 if reachable else 503), payload

    async def cluster_metrics(self) -> Dict[str, object]:
        """Aggregate ``GET /metrics`` across shards: sums + per-shard."""

        async def fetch(shard: ShardState):
            try:
                status, body, _ = await shard.client.request(
                    "GET", "/metrics"
                )
            except ShardUnreachable as error:
                shard.mark_down(error)
                self._scrapes.inc(shard=shard.name, outcome="unreachable")
                return shard.name, None
            shard.mark_up()
            if status == 200:
                self._scrapes.inc(shard=shard.name, outcome="ok")
                return shard.name, body
            self._scrapes.inc(shard=shard.name, outcome="error")
            return shard.name, None

        results = await asyncio.gather(
            *(fetch(s) for s in self._shards.values())
        )
        totals = {counter: 0 for counter in _SUMMED_COUNTERS}
        per_shard: Dict[str, object] = {}
        reachable = 0
        for name, body in sorted(results):
            per_shard[name] = body
            if body is None:
                continue
            reachable += 1
            jobs = body.get("jobs", {})
            for counter in _SUMMED_COUNTERS:
                value = jobs.get(counter)
                if isinstance(value, (int, float)):
                    totals[counter] += value
        return {
            "role": "router",
            "uptime_seconds": time.time() - self.started_at,
            "shards_total": len(self._shards),
            "shards_reachable": reachable,
            "jobs": totals,
            "per_shard": per_shard,
        }

    async def prometheus_text(self) -> str:
        """The router's ``/metrics`` in Prometheus text exposition.

        Router-local series (request latency, relay and scrape counters,
        health gauges) come from the router's own registry; cluster-wide
        job totals are re-scraped from the shards and rendered as gauges
        (a shard that misses a scrape makes the sum dip, so a counter
        type would lie about monotonicity).
        """
        cluster = await self.cluster_metrics()
        self._shards_healthy_gauge.set(
            sum(1 for s in self._shards.values() if s.healthy)
        )
        self._shards_total_gauge.set(len(self._shards))
        self._uptime_gauge.set(time.time() - self.started_at)
        local = render_prometheus(self.registry.snapshot())
        summary = MetricsRegistry()
        jobs_gauge = summary.gauge(
            "repro_cluster_jobs",
            "Cluster-wide job counters summed across reachable shards.",
            ("event",),
        )
        for counter, value in cluster["jobs"].items():
            jobs_gauge.set(value, event=counter)
        summary.gauge(
            "repro_cluster_shards_reachable",
            "Shards that answered the metrics scrape.",
        ).set(cluster["shards_reachable"])
        return local + render_prometheus(summary.snapshot())


class RouterServer(BaseHttpServer):
    """The router's HTTP front-end (same wire surface as a shard).

    Clients cannot tell a router from a single server: ``POST /run``,
    ``/jobs``, ``/healthz``, ``/metrics`` and ``/experiments`` all work,
    plus ``GET /shards`` for topology.  Shard responses gain a
    ``"shard"`` field naming the instance that answered.
    """

    def __init__(
        self,
        router: Router,
        host: str = "127.0.0.1",
        port: int = 8750,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(
            host=host,
            port=port,
            registry=registry if registry is not None else router.registry,
        )
        self.router = router

    async def _route(self, request: _Request):
        method, path = request.method, request.path
        segments = [part for part in path.split("/") if part]
        if path == "/healthz":
            if method != "GET":
                return _method_not_allowed(path, "GET")
            return self.router.healthz_payload()
        if path == "/metrics":
            if method != "GET":
                return _method_not_allowed(path, "GET")
            if request.wants_prometheus():
                text = await self.router.prometheus_text()
                return 200, RawResponse(
                    text.encode("utf-8"), PROMETHEUS_CONTENT_TYPE
                )
            return 200, await self.router.cluster_metrics()
        if path == "/shards":
            if method != "GET":
                return _method_not_allowed(path, "GET")
            return 200, self.router.shards_payload()
        if path == "/experiments":
            if method != "GET":
                return _method_not_allowed(path, "GET")
            return 200, _experiments_payload()  # registry is shared code
        if path == "/run":
            if method != "POST":
                return _method_not_allowed(path, "POST")
            status, body, shard = await self.router.forward_run(
                request.json()
            )
            if isinstance(body, dict):
                body.setdefault("shard", shard)
            return status, body
        if segments and segments[0] == "jobs":
            if len(segments) == 1:
                if method != "GET":
                    return _method_not_allowed("/jobs", "GET")
                return 200, await self._merged_jobs()
            job_id = segments[1]
            status, body, shard = await self.router.forward_job(
                method, path, job_id
            )
            if isinstance(body, dict) and shard:
                body.setdefault("shard", shard)
            return status, body
        return 404, {"error": f"no route for {method} {path}"}

    async def _merged_jobs(self) -> Dict[str, object]:
        """``GET /jobs`` cluster-wide: every reachable shard's list, merged
        newest-first (creation time orders across shards)."""
        router = self.router

        async def fetch(shard: ShardState):
            try:
                status, body, _ = await shard.client.request("GET", "/jobs")
            except ShardUnreachable as error:
                shard.mark_down(error)
                return []
            shard.mark_up()
            if status != 200 or not isinstance(body, dict):
                return []
            jobs = body.get("jobs", [])
            for job in jobs:
                if isinstance(job, dict):
                    job.setdefault("shard", shard.name)
            return jobs

        lists = await asyncio.gather(
            *(fetch(s) for s in router._shards.values())
        )
        merged = [job for jobs in lists for job in jobs]
        merged.sort(key=lambda job: job.get("created") or 0, reverse=True)
        return {"jobs": merged}


class ThreadedRouter:
    """A router + HTTP front-end hosted on a background thread.

    The in-process twin of :class:`~repro.service.http.ThreadedServer`,
    used by the cluster tests and the bench harness: hand it shard URLs,
    get a bound router URL back.
    """

    def __init__(
        self,
        shards: Dict[str, str],
        host: str = "127.0.0.1",
        port: int = 0,
        retries: int = 1,
        backoff: float = 0.05,
        health_interval: float = 0.25,
        instrument: bool = True,
    ) -> None:
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._startup_error: Optional[BaseException] = None
        self.url: Optional[str] = None
        self.router: Optional[Router] = None

        def _main() -> None:
            async def _run() -> None:
                # a fresh registry per hosted router keeps concurrently
                # hosted instances (tests, the bench) from mixing counters
                registry = MetricsRegistry() if instrument else NULL_REGISTRY
                router = Router(
                    shards,
                    retries=retries,
                    backoff=backoff,
                    health_interval=health_interval,
                    registry=registry,
                )
                await router.start()
                server = RouterServer(router, host=host, port=port)
                await server.start()
                self._loop = asyncio.get_running_loop()
                self._stop = asyncio.Event()
                self.url = server.url
                self.router = router
                self._ready.set()
                await self._stop.wait()
                await server.close()
                await router.close()

            try:
                asyncio.run(_run())
            except BaseException as error:  # surface startup failures
                self._startup_error = error
                self._ready.set()

        self._thread = threading.Thread(
            target=_main, name="repro-router", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=60.0)
        if self._startup_error is not None:
            raise ServiceError(
                f"router thread failed to start: {self._startup_error}",
                status=500,
            )
        if self.url is None:
            raise ServiceError("router thread did not come up", status=500)

    def check_health(self) -> Dict[str, bool]:
        """Force one synchronous health probe (tests use this to avoid
        sleeping through the probe interval)."""
        future = asyncio.run_coroutine_threadsafe(
            self.router.check_health(), self._loop
        )
        return future.result(timeout=30.0)

    def stop(self) -> None:
        """Shut the router down and join the hosting thread (idempotent)."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed: a previous stop() finished
        self._thread.join(timeout=60.0)

    def __enter__(self) -> "ThreadedRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
