"""Consistent-hash ring: which shard owns which cache key.

Sharding the service splits the cache-key space across N independent
instances so that every request for the *same* point — same experiment
id, knobs, seed, mode, engine, version — always lands on the *same*
shard.  That single property is what makes the cluster behave like one
big server: request coalescing (N identical in-flight requests cost one
computation) and the two-tier cache both key on the sweep layer's cache
key, so routing by that key makes them cluster-wide for free.

The ring is the classic consistent-hash construction (Karger et al.;
the same shape Dynamo-style stores use): each shard is hashed onto a
circle at ``vnodes`` pseudo-random points, and a key is owned by the
first shard point clockwise from the key's own hash.  Properties the
router relies on:

* **stability** — adding or removing one shard of N remaps ~1/N of the
  key space, not all of it (a warm cluster stays mostly warm through a
  topology change);
* **balance** — with enough virtual nodes per shard (default 64) the
  per-shard share of the key space concentrates near 1/N;
* **deterministic failover** — :meth:`HashRing.preference` yields the
  owner followed by the distinct next shards clockwise, so every router
  instance agrees on where a key goes when its owner is down, without
  any coordination.

Hashing uses ``sha256`` (already the cache-key hash) — stable across
processes, platforms and Python versions, unlike :func:`hash`.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterator, List, Sequence, Tuple

from ..errors import ModelError

__all__ = ["HashRing"]

#: virtual nodes per shard: enough that the max/min key-share ratio over
#: a handful of shards stays small, cheap enough to rebuild on the fly
DEFAULT_VNODES = 64


def _point(label: str) -> int:
    """A shard/key's position on the ring: the first 8 bytes of sha256."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """An immutable consistent-hash ring over named shards.

    Built from shard names (order-insensitive: two routers constructed
    with the same set agree point-for-point).  Rebuild to change
    membership — construction is O(shards * vnodes * log) and the router
    only rebuilds on topology changes, never per request.
    """

    def __init__(
        self, shards: Sequence[str], vnodes: int = DEFAULT_VNODES
    ) -> None:
        if not shards:
            raise ModelError("a hash ring needs at least one shard")
        if len(set(shards)) != len(shards):
            raise ModelError(f"duplicate shard names: {sorted(shards)}")
        if vnodes < 1:
            raise ModelError(f"vnodes must be >= 1, got {vnodes}")
        self.shards: Tuple[str, ...] = tuple(sorted(shards))
        self.vnodes = vnodes
        points: List[Tuple[int, str]] = []
        for shard in self.shards:
            for replica in range(vnodes):
                points.append((_point(f"{shard}#{replica}"), shard))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [shard for _, shard in points]

    def __len__(self) -> int:
        return len(self.shards)

    def __contains__(self, shard: str) -> bool:
        return shard in self.shards

    def owner(self, key: str) -> str:
        """The shard owning ``key``: first ring point clockwise of its hash."""
        index = bisect.bisect_right(self._points, _point(key))
        if index == len(self._points):
            index = 0  # wrap past twelve o'clock
        return self._owners[index]

    def preference(self, key: str) -> List[str]:
        """All shards in failover order for ``key``: owner first, then the
        distinct shards met walking clockwise.  Deterministic, so every
        router agrees on the fallback target when an owner is down."""
        start = bisect.bisect_right(self._points, _point(key))
        seen: Dict[str, None] = {}
        for step in range(len(self._points)):
            shard = self._owners[(start + step) % len(self._points)]
            seen.setdefault(shard, None)
            if len(seen) == len(self.shards):
                break
        return list(seen)

    def distribution(self, keys: Sequence[str]) -> Dict[str, int]:
        """How many of ``keys`` each shard owns (balance diagnostics)."""
        counts = {shard: 0 for shard in self.shards}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts

    def __iter__(self) -> Iterator[str]:
        return iter(self.shards)

    def __repr__(self) -> str:
        return (
            f"HashRing(shards={list(self.shards)}, vnodes={self.vnodes})"
        )
