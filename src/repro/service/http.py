"""Dependency-free asyncio JSON/HTTP API over the job scheduler.

A deliberately small HTTP/1.1 server (stdlib only — ``asyncio`` streams,
no frameworks) exposing the scheduler's whole surface:

========================  ==================================================
``GET /healthz``          liveness + queue/running gauges
``GET /metrics``          hit/miss/coalesce/queue-depth/latency counters
``GET /experiments``      the registry catalog with each runner's knobs
``POST /run``             submit a run (``wait: true`` blocks until done)
``GET /jobs``             recent jobs, newest first
``GET /jobs/<id>``        one job's status, progress and (when done) record
``POST /jobs/<id>/cancel``  cancel a queued job (running jobs finish)
========================  ==================================================

Connections are keep-alive (the load harness reuses one connection per
client); errors map :class:`~repro.service.errors.ServiceError` statuses
(400 usage, 429 queue full, 503 shutting down) onto JSON ``{"error": …}``
bodies, so the did-you-mean experiment-id hints and unknown-knob messages
reach HTTP clients verbatim.
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
import traceback
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ModelError
from ..experiments import all_experiment_ids, runner_params
from ..experiments.base import canonical_cell
from ..obs import (
    get_logger,
    parse_trace_header,
    set_trace_context,
    span,
    tracing_active,
)
from ..obs.metrics import MetricsRegistry, NULL_REGISTRY, NullRegistry
from .cache import TwoTierCache
from .errors import ServiceError
from .jobs import DONE, JobScheduler, JobSpec

__all__ = [
    "BaseHttpServer",
    "RawResponse",
    "ServiceServer",
    "ThreadedServer",
]

_MAX_BODY = 8 * 1024 * 1024
_MAX_HEADERS = 100

#: Prometheus text exposition content type (format 0.0.4)
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_log = get_logger("repro.service.http")

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class RawResponse:
    """A non-JSON route payload: raw bytes with an explicit content type.

    Routes return these for text formats (Prometheus exposition); the
    responder writes the body verbatim instead of JSON-encoding it.
    """

    body: bytes
    content_type: str = "text/plain; charset=utf-8"


@dataclass
class _Request:
    method: str
    path: str
    headers: Dict[str, str]
    body: bytes
    query: str = ""

    def wants_prometheus(self) -> bool:
        """Content negotiation for ``/metrics``.

        An explicit ``?format=prometheus`` (or ``format=json``) wins;
        otherwise an ``Accept`` header preferring ``text/plain`` over
        JSON selects the exposition format.  Default stays the legacy
        JSON shape.
        """
        params = dict(
            pair.partition("=")[::2]
            for pair in self.query.split("&")
            if pair
        )
        fmt = params.get("format", "").lower()
        if fmt == "prometheus":
            return True
        if fmt == "json":
            return False
        if fmt:
            raise ServiceError(
                f"unknown metrics format {fmt!r} (use 'json' or "
                f"'prometheus')",
                status=400,
            )
        accept = self.headers.get("accept", "")
        return "text/plain" in accept and "application/json" not in accept

    def json(self) -> object:
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            # UnicodeDecodeError: json.loads sniffs the encoding of bytes
            # input and non-UTF bodies fail *before* JSON parsing starts
            raise ServiceError(f"invalid JSON body: {error}", status=400)


from contextlib import contextmanager


@contextmanager
def _null_context():
    """Stand-in for :func:`repro.obs.span` on the uninstrumented path."""
    yield None


def _method_not_allowed(path: str, *allowed: str):
    """A spec-shaped 405: ``Allow`` lists the methods that would work.

    ``GET`` routes implicitly allow ``HEAD`` (the responder answers HEAD
    on any GET route with headers only), so the header advertises it.
    """
    methods = list(allowed)
    if "GET" in methods and "HEAD" not in methods:
        methods.insert(methods.index("GET") + 1, "HEAD")
    allow = ", ".join(methods)
    return (
        405,
        {"error": f"use {' or '.join(allowed)} {path}"},
        {"Allow": allow},
    )


def _knob_payload(default: object) -> object:
    """A runner knob's default as a JSON-safe value."""
    import inspect

    if default is inspect.Parameter.empty:
        return "<required>"
    try:
        return canonical_cell(default)
    except Exception:
        return repr(default)


def _experiments_payload() -> Dict[str, object]:
    experiments = []
    for experiment_id in all_experiment_ids():
        params = runner_params(experiment_id)
        experiments.append(
            {
                "id": experiment_id,
                "params": {
                    name: _knob_payload(default)
                    for name, default in sorted(params.items())
                },
                "precision": "precision" in params,
            }
        )
    return {"experiments": experiments}


class BaseHttpServer:
    """Shared asyncio HTTP/1.1 plumbing: accept loop, parser, responder.

    Subclasses implement :meth:`_route`, returning ``(status, payload)``
    or ``(status, payload, extra_headers)``.  Both the shard-facing
    :class:`ServiceServer` and the cluster-facing
    :class:`~repro.service.router.RouterServer` are built on it, so the
    parser hardening (header caps, length validation, oversized-line
    handling) is enforced once for every front-end.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8752,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        from ..obs.metrics import default_registry

        self.registry = registry if registry is not None else default_registry()
        #: the fully uninstrumented mode skips trace plumbing entirely
        #: (the bench's overhead baseline)
        self._instrumented = not isinstance(self.registry, NullRegistry)
        self._request_seconds = self.registry.histogram(
            "repro_http_request_seconds",
            "HTTP request handling latency by route.",
            ("method", "route", "status"),
        )
        #: memoised (method, route, status) -> bound (histogram, counter)
        #: children — label resolution off the per-request path
        self._request_children: Dict[tuple, tuple] = {}
        self._requests_total = self.registry.counter(
            "repro_http_requests_total",
            "HTTP requests handled by route.",
            ("method", "route", "status"),
        )

    @staticmethod
    def _route_label(path: str) -> str:
        """A bounded-cardinality route template for metric labels."""
        segments = [part for part in path.split("/") if part]
        if segments and segments[0] == "jobs" and len(segments) > 1:
            return (
                "/jobs/<id>/cancel"
                if len(segments) == 3 and segments[2] == "cancel"
                else "/jobs/<id>"
            )
        if path in ("/healthz", "/metrics", "/experiments", "/run", "/jobs",
                    "/shards"):
            return path
        return "<other>"

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> "BaseHttpServer":
        """Bind and start accepting; ``port=0`` picks a free port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def url(self) -> str:
        """The server's base URL."""
        return f"http://{self.host}:{self.port}"

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Serve until ``stop`` is set, then close the listener."""
        await stop.wait()
        await self.close()

    @property
    def open_connections(self) -> int:
        """Connection-handler tasks currently alive (leak detector hook)."""
        return len(self._connections)

    async def close(self) -> None:
        """Stop listening and drop open keep-alive connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()

    # -- connection handling --------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except ServiceError as error:
                    # malformed request: answer once, then drop the link
                    self._write_response(
                        writer, error.status, {"error": str(error)}, True
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                close_after = (
                    request.headers.get("connection", "").lower() == "close"
                )
                # HEAD answers exactly like GET minus the body (RFC 9110):
                # route as GET, remember to suppress the payload bytes
                head_request = request.method == "HEAD"
                if head_request:
                    request.method = "GET"
                status, payload, extra_headers = await self._dispatch(request)
                self._write_response(
                    writer,
                    status,
                    payload,
                    close_after,
                    extra_headers,
                    head=head_request,
                )
                await writer.drain()
                if close_after:
                    break
        except (asyncio.IncompleteReadError, ConnectionError):
            pass  # client went away mid-exchange
        except asyncio.CancelledError:
            pass  # server closing: drop the connection quietly
        finally:
            self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _dispatch(
        self, request: _Request
    ) -> Tuple[int, object, Optional[Dict[str, str]]]:
        """Route one request with error mapping, tracing and metrics."""
        import time as _time

        extra_headers: Optional[Dict[str, str]] = None
        instrumented = self._instrumented
        previous_trace = None
        if instrumented:
            previous_trace = set_trace_context(
                parse_trace_header(request.headers.get("x-repro-trace"))
            )
            start = _time.perf_counter()
        # a span that nothing would receive still costs ~10µs of ids and
        # clock reads — skip it unless a sink or debug logger is live
        trace_request = instrumented and tracing_active()
        try:
            with span(
                "http.request",
                method=request.method,
                path=request.path,
            ) if trace_request else _null_context() as handle:
                try:
                    outcome = await self._route(request)
                    if len(outcome) == 3:
                        status, payload, extra_headers = outcome
                    else:
                        status, payload = outcome
                except ServiceError as error:
                    status, payload = error.status, {"error": str(error)}
                    extra_headers = getattr(error, "headers", None)
                except ModelError as error:
                    status, payload = 400, {"error": str(error)}
                except asyncio.TimeoutError:
                    status, payload = 503, {
                        "error": "timed out waiting for the job; poll "
                        "GET /jobs/<id> instead"
                    }
                except Exception:
                    traceback.print_exc(file=sys.stderr)
                    status, payload = 500, {"error": "internal server error"}
                if handle is not None:
                    handle.fields["status"] = status
        finally:
            if instrumented:
                set_trace_context(previous_trace)
        if instrumented:
            elapsed = _time.perf_counter() - start
            route = self._route_label(request.path)
            key = (request.method, route, str(status))
            children = self._request_children.get(key)
            if children is None:
                labels = dict(zip(("method", "route", "status"), key))
                children = (
                    self._request_seconds.labels(**labels),
                    self._requests_total.labels(**labels),
                )
                self._request_children[key] = children
            children[0].observe(elapsed)
            children[1].inc()
            if status >= 500 and _log.enabled("info"):
                _log.info(
                    "http.error",
                    method=request.method,
                    path=request.path,
                    status=status,
                )
        return status, payload, extra_headers

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[_Request]:
        try:
            request_line = await reader.readline()
        except ValueError:
            # the stream limit tripped mid-line: a request line longer
            # than any legitimate client sends
            raise ServiceError("request line too long", status=400)
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise ServiceError("malformed request line", status=400)
        method, target, version = parts
        if not version.startswith("HTTP/"):
            raise ServiceError("malformed request line", status=400)
        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            try:
                line = await reader.readline()
            except ValueError:
                raise ServiceError("header line too long", status=400)
            if line in (b"\r\n", b"\n", b""):
                break
            name, separator, value = line.decode("latin-1").partition(":")
            if not separator or not name.strip():
                raise ServiceError("malformed header line", status=400)
            headers[name.strip().lower()] = value.strip()
        else:
            raise ServiceError("too many headers", status=400)
        if "transfer-encoding" in headers:
            # this server speaks Content-Length only; mis-framed chunked
            # bodies would desynchronise the keep-alive stream
            raise ServiceError(
                "transfer-encoding is not supported; send Content-Length",
                status=400,
            )
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise ServiceError("bad Content-Length", status=400)
        if length < 0:
            raise ServiceError("bad Content-Length", status=400)
        if length > _MAX_BODY:
            raise ServiceError("request body too large", status=413)
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        query = target.partition("?")[2]
        return _Request(
            method=method, path=path, headers=headers, body=body, query=query
        )

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: object,
        close_after: bool,
        extra_headers: Optional[Dict[str, str]] = None,
        head: bool = False,
    ) -> None:
        if isinstance(payload, RawResponse):
            body = payload.body
            content_type = payload.content_type
        else:
            try:
                body = json.dumps(payload, allow_nan=False).encode("utf-8")
            except (TypeError, ValueError):
                # a non-JSON-safe value leaked into a payload (e.g. a NaN in
                # free-form progress data): canonicalize and retry
                body = json.dumps(canonical_cell(payload)).encode("utf-8")
            content_type = "application/json"
        reason = _REASONS.get(status, "Unknown")
        header = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close_after else 'keep-alive'}\r\n"
        )
        for name, value in (extra_headers or {}).items():
            header += f"{name}: {value}\r\n"
        header += "\r\n"
        # HEAD: full headers (including Content-Length), no body bytes
        writer.write(header.encode("latin-1") + (b"" if head else body))

    # -- routing ---------------------------------------------------------

    async def _route(self, request: _Request) -> Tuple[int, object]:
        raise NotImplementedError  # pragma: no cover - subclass hook


class ServiceServer(BaseHttpServer):
    """The asyncio HTTP front-end bound to one :class:`JobScheduler`."""

    def __init__(
        self,
        scheduler: JobScheduler,
        host: str = "127.0.0.1",
        port: int = 8752,
        wait_timeout: float = 600.0,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(
            host=host,
            port=port,
            registry=registry if registry is not None else scheduler.registry,
        )
        self.scheduler = scheduler
        self.wait_timeout = wait_timeout

    async def _route(self, request: _Request) -> Tuple[int, object]:
        method, path = request.method, request.path
        segments = [part for part in path.split("/") if part]
        if path == "/healthz":
            if method != "GET":
                return _method_not_allowed(path, "GET")
            scheduler = self.scheduler
            return 200, {
                "status": "ok",
                "name": scheduler.name,
                "queue_depth": scheduler.queue_depth,
                "running": scheduler.running,
                "store": scheduler.cache.stats()["store_path"],
            }
        if path == "/metrics":
            if method != "GET":
                return _method_not_allowed(path, "GET")
            if request.wants_prometheus():
                return 200, RawResponse(
                    self.scheduler.prometheus_text().encode("utf-8"),
                    PROMETHEUS_CONTENT_TYPE,
                )
            return 200, self.scheduler.metrics_snapshot()
        if path == "/experiments":
            if method != "GET":
                return _method_not_allowed(path, "GET")
            return 200, _experiments_payload()
        if path == "/run":
            if method != "POST":
                return _method_not_allowed(path, "POST")
            return await self._handle_run(request)
        if segments and segments[0] == "jobs":
            return await self._handle_jobs(request, segments)
        return 404, {"error": f"no route for {method} {path}"}

    async def _handle_run(self, request: _Request) -> Tuple[int, object]:
        body = request.json()
        spec = JobSpec.from_request(body)
        priority = body.get("priority", 0)
        if isinstance(priority, bool) or not isinstance(priority, int):
            raise ServiceError(
                f"priority must be an integer, got {priority!r}", status=400
            )
        wait = body.get("wait", False)
        if not isinstance(wait, bool):
            raise ServiceError(
                f"wait must be a boolean, got {wait!r}", status=400
            )
        job = self.scheduler.submit(spec, priority=priority)
        if wait and not job.done:
            try:
                await job.wait(timeout=self.wait_timeout)
            except asyncio.TimeoutError:
                # hand the caller the job handle (202) instead of a
                # dead-end error: the job keeps running and can be polled
                pass
        status = 200 if job.done else 202
        return status, job.to_payload(include_record=job.state == DONE)

    async def _handle_jobs(
        self, request: _Request, segments: list
    ) -> Tuple[int, object]:
        if len(segments) == 1:
            if request.method != "GET":
                return _method_not_allowed("/jobs", "GET")
            return 200, {"jobs": self.scheduler.jobs_snapshot()}
        job = self.scheduler.get(segments[1])
        if job is None:
            return 404, {"error": f"no such job: {segments[1]}"}
        if len(segments) == 2:
            if request.method == "GET":
                return 200, job.to_payload(include_record=job.state == DONE)
            if request.method == "DELETE":
                cancelled = self.scheduler.cancel(job.id)
                return 200, {
                    "id": job.id,
                    "cancelled": cancelled,
                    "state": job.state,
                }
            return _method_not_allowed("/jobs/<id>", "GET", "DELETE")
        if len(segments) == 3 and segments[2] == "cancel":
            if request.method != "POST":
                return _method_not_allowed("/jobs/<id>/cancel", "POST")
            cancelled = self.scheduler.cancel(job.id)
            return 200, {
                "id": job.id,
                "cancelled": cancelled,
                "state": job.state,
            }
        return 404, {"error": f"no route for {request.method} {request.path}"}


class ThreadedServer:
    """A full service (scheduler + HTTP) hosted on a background thread.

    The in-process harness tests and the load generator use: the calling
    thread gets a bound URL back, the event loop runs elsewhere, and
    :meth:`stop` drains the scheduler cleanly.  For production-style
    hosting use the CLI's ``serve`` subcommand instead.
    """

    def __init__(
        self,
        store_path=None,
        procs: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_capacity: int = 1024,
        queue_limit: int = 64,
        store_backend: str = "auto",
        name: Optional[str] = None,
        instrument: bool = True,
    ) -> None:
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._startup_error: Optional[BaseException] = None
        self.url: Optional[str] = None
        self.scheduler: Optional[JobScheduler] = None
        self.server: Optional[ServiceServer] = None

        def _main() -> None:
            async def _run() -> None:
                from ..store import open_store

                store = (
                    open_store(store_path, backend=store_backend)
                    if store_path is not None
                    else None
                )
                # a fresh registry per hosted server keeps concurrently
                # hosted instances (tests, the bench) from mixing counters
                registry = MetricsRegistry() if instrument else NULL_REGISTRY
                cache = TwoTierCache(
                    store, capacity=cache_capacity, registry=registry
                )
                scheduler = JobScheduler(
                    cache,
                    procs=procs,
                    queue_limit=queue_limit,
                    name=name,
                    registry=registry,
                )
                await scheduler.start()
                server = ServiceServer(
                    scheduler, host=host, port=port, registry=registry
                )
                await server.start()
                self._loop = asyncio.get_running_loop()
                self._stop = asyncio.Event()
                self.url = server.url
                self.scheduler = scheduler
                self.server = server
                self._ready.set()
                await self._stop.wait()
                await server.close()
                await scheduler.close()

            try:
                asyncio.run(_run())
            except BaseException as error:  # surface startup failures
                self._startup_error = error
                self._ready.set()

        self._thread = threading.Thread(
            target=_main, name="repro-service", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=60.0)
        if self._startup_error is not None:
            raise ServiceError(
                f"service thread failed to start: {self._startup_error}",
                status=500,
            )
        if self.url is None:
            raise ServiceError("service thread did not come up", status=500)

    def stop(self) -> None:
        """Drain the scheduler and join the hosting thread (idempotent)."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed: a previous stop() finished
        self._thread.join(timeout=120.0)

    def __enter__(self) -> "ThreadedServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
