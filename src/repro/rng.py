"""Random-number management for reproducible stochastic experiments.

Every stochastic object in the library takes a :class:`numpy.random.Generator`
at the point of sampling, never at construction, so that model objects stay
immutable and a single seed threads deterministically through an entire
experiment.  The helpers here normalise user-supplied seeds and spawn
independent child streams for parallel or multi-component simulations.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from .types import SeedLike

__all__ = [
    "as_generator",
    "counter_generator",
    "counter_key",
    "counter_uniforms",
    "inverse_cdf_indices",
    "philox_uniform",
    "spawn",
    "spawn_many",
    "stream",
]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    Accepts ``None`` (fresh OS entropy), an ``int``, a
    :class:`numpy.random.SeedSequence`, or an existing generator (returned
    unchanged so callers can thread one stream through nested calls).
    ``default_rng`` handles every non-generator case natively, including
    ``SeedSequence`` instances.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def inverse_cdf_indices(cdf: np.ndarray, rng: SeedLike, size=None, uniforms=None):
    """Draw indices by inverse-CDF sampling, clamped into range.

    ``cdf`` is a cumulative-probability vector; returns a scalar int when
    ``size is None``, else an int64 array of the given (possibly tuple)
    shape.  The clamp matters: probability vectors in this library are
    validated to sum to one only within a tolerance, so ``cdf[-1]`` may sit
    a hair below 1.0 and an unlucky uniform draw would otherwise index one
    past the end.  Every inverse-CDF sampler (usage profiles, finite
    populations, enumerable suite generators) routes through here so the
    clamp cannot drift out of sync.

    ``uniforms`` supplies the uniform draws instead of consuming ``rng``
    (``size`` is then ignored) — how the antithetic variance-reduction
    kernel shares one uniform block between a ``u`` / ``1 − u`` pair while
    keeping this single definition of the search-and-clamp.
    """
    last = len(cdf) - 1
    if uniforms is not None:
        indices = np.searchsorted(cdf, np.asarray(uniforms), side="right")
        return np.minimum(indices, last).astype(np.int64)
    generator = as_generator(rng)
    if size is None:
        index = int(np.searchsorted(cdf, generator.random(), side="right"))
        return min(index, last)
    indices = np.searchsorted(cdf, generator.random(size), side="right")
    return np.minimum(indices, last).astype(np.int64)


def spawn(rng: np.random.Generator) -> np.random.Generator:
    """Spawn one statistically independent child generator from ``rng``.

    Uses the generator's underlying seed sequence spawning where available;
    falls back to seeding from the parent stream.  Child streams are
    independent of later draws from the parent.
    """
    children = spawn_many(rng, 1)
    return children[0]


def spawn_many(rng: np.random.Generator, count: int) -> List[np.random.Generator]:
    """Spawn ``count`` independent child generators from ``rng``.

    Independent streams matter in this library because the paper's regimes
    differ precisely in which random objects are shared: e.g. the
    independent-suites regime needs two suite draws that share nothing,
    while the same-suite regime reuses one draw.  Giving each stochastic
    component its own child stream keeps those couplings explicit.

    Children come from the generator's underlying
    :class:`~numpy.random.SeedSequence` via ``seed_seq.spawn(count)`` —
    the collision-resistant spawning protocol — so repeated calls yield
    fresh, mutually independent families without consuming the parent
    stream.  Bit generators constructed without a seed sequence (e.g.
    ``Philox(key=...)``) fall back to drawing 64-bit child seeds from the
    parent stream; that fallback consumes the parent and is
    birthday-collision-prone at very large family sizes, which is why the
    seed-sequence path is preferred whenever available.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    bit_generator = rng.bit_generator
    seed_seq = getattr(bit_generator, "seed_seq", None)
    if seed_seq is None:
        seed_seq = getattr(bit_generator, "_seed_seq", None)
    if isinstance(seed_seq, np.random.SeedSequence):
        return [np.random.default_rng(child) for child in seed_seq.spawn(count)]
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


# ---------------------------------------------------------------------------
# counter-based RNG (Philox4x32-10)
#
# A counter-based generator is a pure function ``(key, counter) -> bits``:
# there is no evolving state, so any parallel decomposition of the work —
# chunking, process sharding, resumption — reads exactly the same random
# numbers for replication ``r`` as a serial run would.  The compiled kernel
# backend (:mod:`repro.mc.kernels`) keys every draw by
# ``(root_key, stream, lane)`` where ``stream`` is the *global* replication
# index and ``lane`` enumerates the draw slots within one replication,
# which is what makes its results bit-identical regardless of
# ``chunk_size`` and ``n_jobs``.
#
# The block cipher is Philox4x32-10 (Salmon et al., SC'11) — the same
# round function behind ``numpy.random.Philox`` — implemented here twice
# with identical integer semantics: a scalar form (:func:`philox_uniform`)
# that numba can ``@njit``, and a vectorized form
# (:func:`counter_uniforms`) for the numpy fallback, so the compiled and
# fallback paths draw bit-identical uniforms.
# ---------------------------------------------------------------------------

_U64_MASK = (1 << 64) - 1
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15


def _splitmix64(value: int) -> int:
    """The splitmix64 finalizer — a strong 64-bit mix used to derive keys."""
    z = (value + _SPLITMIX_GAMMA) & _U64_MASK
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _U64_MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _U64_MASK
    return z ^ (z >> 31)


def counter_key(seed: SeedLike = None) -> int:
    """Derive the 64-bit root key of a counter-RNG run from any seed-like.

    Deterministic for deterministic inputs: an ``int`` seed is mixed
    through splitmix64 (so small seeds like 0, 1, 2 land far apart in key
    space), a :class:`~numpy.random.SeedSequence` contributes its entropy,
    and an existing :class:`~numpy.random.Generator` has one 64-bit value
    drawn from it (consuming the stream, exactly like seeding a child).
    ``None`` draws a fresh key from OS entropy.
    """
    if seed is None:
        return int(np.random.SeedSequence().generate_state(1, np.uint64)[0])
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, 2**64, dtype=np.uint64))
    if isinstance(seed, np.random.SeedSequence):
        return int(seed.generate_state(1, np.uint64)[0])
    return _splitmix64(int(seed) & _U64_MASK)


def philox_uniform(key: np.uint64, stream: np.uint64, lane: np.uint64) -> float:
    """One uniform in ``[0, 1)`` from Philox4x32-10 — scalar reference form.

    Pure function of ``(key, stream, lane)``: the 128-bit Philox counter is
    ``(lane, stream)`` and the 64-bit key is ``key``.  Every operation is
    explicit ``uint64`` arithmetic so numba ``@njit`` compiles this exact
    function to native code with bit-identical results; the vectorized
    twin is :func:`counter_uniforms`.
    """
    mask = np.uint64(0xFFFFFFFF)
    m0 = np.uint64(0xD2511F53)
    m1 = np.uint64(0xCD9E8D57)
    w0 = np.uint64(0x9E3779B9)
    w1 = np.uint64(0xBB67AE85)
    shift = np.uint64(32)
    c0 = np.uint64(lane) & mask
    c1 = (np.uint64(lane) >> shift) & mask
    c2 = np.uint64(stream) & mask
    c3 = (np.uint64(stream) >> shift) & mask
    k0 = np.uint64(key) & mask
    k1 = (np.uint64(key) >> shift) & mask
    for _round in range(10):
        p0 = m0 * c0
        p1 = m1 * c2
        n0 = (p1 >> shift) ^ c1 ^ k0
        n1 = p1 & mask
        n2 = (p0 >> shift) ^ c3 ^ k1
        n3 = p0 & mask
        c0, c1, c2, c3 = n0, n1, n2, n3
        k0 = (k0 + w0) & mask
        k1 = (k1 + w1) & mask
    bits = (c0 << shift) | c1
    return float(bits >> np.uint64(11)) * (1.0 / 9007199254740992.0)


def counter_uniforms(key: int, streams, lanes) -> np.ndarray:
    """Uniforms in ``[0, 1)`` keyed by ``(key, stream, lane)`` — vectorized.

    ``streams`` and ``lanes`` are broadcast against each other; entry
    ``(…)`` is exactly ``philox_uniform(key, streams[…], lanes[…])``.  The
    batch engines call this as
    ``counter_uniforms(key, replication_ids[:, None], lane_ids[None, :])``
    to materialise a whole ``(replications, lanes)`` block in one shot.
    """
    mask = np.uint64(0xFFFFFFFF)
    shift = np.uint64(32)
    streams_arr = np.asarray(streams, dtype=np.uint64)
    lanes_arr = np.asarray(lanes, dtype=np.uint64)
    lanes_b, streams_b = np.broadcast_arrays(lanes_arr, streams_arr)
    c0 = lanes_b & mask
    c1 = (lanes_b >> shift) & mask
    c2 = streams_b & mask
    c3 = (streams_b >> shift) & mask
    key64 = np.uint64(int(key) & _U64_MASK)
    k0 = key64 & mask
    k1 = (key64 >> shift) & mask
    m0 = np.uint64(0xD2511F53)
    m1 = np.uint64(0xCD9E8D57)
    w0 = np.uint64(0x9E3779B9)
    w1 = np.uint64(0xBB67AE85)
    for _round in range(10):
        p0 = m0 * c0
        p1 = m1 * c2
        n0 = (p1 >> shift) ^ c1 ^ k0
        n1 = p1 & mask
        n2 = (p0 >> shift) ^ c3 ^ k1
        n3 = p0 & mask
        c0, c1, c2, c3 = n0, n1, n2, n3
        k0 = (k0 + w0) & mask
        k1 = (k1 + w1) & mask
    bits = (c0 << shift) | c1
    return (bits >> np.uint64(11)).astype(np.float64) * (1.0 / 9007199254740992.0)


def counter_generator(seed: SeedLike, index: int) -> np.random.Generator:
    """A full :class:`~numpy.random.Generator` on the keyed Philox stream.

    The 128-bit Philox key is ``(counter_key(seed), index)``, so streams
    for different replication/shard indices are independent by
    construction — no serial spawning, no parent stream to consume, and no
    birthday-collision risk however many indices are in flight.  This is
    the coarse-grained companion of :func:`counter_uniforms` for code that
    needs arbitrary distributions rather than raw uniforms.
    """
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    key = np.array([counter_key(seed), index], dtype=np.uint64)
    return np.random.Generator(np.random.Philox(key=key))


def stream(seed: SeedLike = None) -> Iterator[np.random.Generator]:
    """Yield an unbounded sequence of independent generators.

    Convenient for experiment drivers that need one fresh stream per
    replication::

        gens = stream(seed=42)
        for replication in range(1000):
            rng = next(gens)
            ...
    """
    root = as_generator(seed)
    while True:
        yield spawn(root)
