"""Random-number management for reproducible stochastic experiments.

Every stochastic object in the library takes a :class:`numpy.random.Generator`
at the point of sampling, never at construction, so that model objects stay
immutable and a single seed threads deterministically through an entire
experiment.  The helpers here normalise user-supplied seeds and spawn
independent child streams for parallel or multi-component simulations.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from .types import SeedLike

__all__ = [
    "as_generator",
    "inverse_cdf_indices",
    "spawn",
    "spawn_many",
    "stream",
]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any seed-like input.

    Accepts ``None`` (fresh OS entropy), an ``int``, a
    :class:`numpy.random.SeedSequence`, or an existing generator (returned
    unchanged so callers can thread one stream through nested calls).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def inverse_cdf_indices(cdf: np.ndarray, rng: SeedLike, size=None, uniforms=None):
    """Draw indices by inverse-CDF sampling, clamped into range.

    ``cdf`` is a cumulative-probability vector; returns a scalar int when
    ``size is None``, else an int64 array of the given (possibly tuple)
    shape.  The clamp matters: probability vectors in this library are
    validated to sum to one only within a tolerance, so ``cdf[-1]`` may sit
    a hair below 1.0 and an unlucky uniform draw would otherwise index one
    past the end.  Every inverse-CDF sampler (usage profiles, finite
    populations, enumerable suite generators) routes through here so the
    clamp cannot drift out of sync.

    ``uniforms`` supplies the uniform draws instead of consuming ``rng``
    (``size`` is then ignored) — how the antithetic variance-reduction
    kernel shares one uniform block between a ``u`` / ``1 − u`` pair while
    keeping this single definition of the search-and-clamp.
    """
    last = len(cdf) - 1
    if uniforms is not None:
        indices = np.searchsorted(cdf, np.asarray(uniforms), side="right")
        return np.minimum(indices, last).astype(np.int64)
    generator = as_generator(rng)
    if size is None:
        index = int(np.searchsorted(cdf, generator.random(), side="right"))
        return min(index, last)
    indices = np.searchsorted(cdf, generator.random(size), side="right")
    return np.minimum(indices, last).astype(np.int64)


def spawn(rng: np.random.Generator) -> np.random.Generator:
    """Spawn one statistically independent child generator from ``rng``.

    Uses the generator's underlying seed sequence spawning where available;
    falls back to seeding from the parent stream.  Child streams are
    independent of later draws from the parent.
    """
    children = spawn_many(rng, 1)
    return children[0]


def spawn_many(rng: np.random.Generator, count: int) -> List[np.random.Generator]:
    """Spawn ``count`` independent child generators from ``rng``.

    Independent streams matter in this library because the paper's regimes
    differ precisely in which random objects are shared: e.g. the
    independent-suites regime needs two suite draws that share nothing,
    while the same-suite regime reuses one draw.  Giving each stochastic
    component its own child stream keeps those couplings explicit.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def stream(seed: SeedLike = None) -> Iterator[np.random.Generator]:
    """Yield an unbounded sequence of independent generators.

    Convenient for experiment drivers that need one fresh stream per
    replication::

        gens = stream(seed=42)
        for replication in range(1000):
            rng = next(gens)
            ...
    """
    root = as_generator(seed)
    while True:
        yield spawn(root)
