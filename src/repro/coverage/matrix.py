"""Coverage matrices: which components each test exercises.

A :class:`CoverageMatrix` is a boolean ``(n_tests, n_components)`` array —
row ``t`` marks the components test ``t`` covers.  Two constructors are
provided:

* :func:`synthetic_coverage` — a seeded generator with ``density``,
  ``bandwidth`` and ``overlap`` knobs, for sweeping coverage structure;
* :func:`empirical_coverage` — grounded in the committed mutation
  campaigns (:mod:`repro.mutation.measured`): mutants bucket into
  components by source line, and test ``t`` covers component ``k`` iff it
  killed at least one of ``k``'s mutants.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError
from ..rng import as_generator
from ..types import SeedLike
from .components import _line_buckets

__all__ = [
    "CoverageMatrix",
    "empirical_coverage",
    "measured_component_assignment",
    "synthetic_coverage",
]


class CoverageMatrix:
    """Boolean tests × components coverage.

    Parameters
    ----------
    covered:
        2-d boolean array-like of shape ``(n_tests, n_components)``.
        Both dimensions must be positive.
    """

    def __init__(self, covered: np.ndarray) -> None:
        matrix = np.asarray(covered, dtype=bool)
        if matrix.ndim != 2:
            raise ModelError(
                f"coverage matrix must be 2-d (tests x components), got "
                f"shape {matrix.shape}"
            )
        if matrix.shape[0] < 1 or matrix.shape[1] < 1:
            raise ModelError(
                f"coverage matrix needs at least one test and one "
                f"component, got shape {matrix.shape}"
            )
        self._covered = matrix.copy()
        self._covered.setflags(write=False)

    @property
    def covered(self) -> np.ndarray:
        """Read-only boolean ``(n_tests, n_components)`` array."""
        return self._covered

    @property
    def n_tests(self) -> int:
        return self._covered.shape[0]

    @property
    def n_components(self) -> int:
        return self._covered.shape[1]

    @property
    def density(self) -> float:
        """Fraction of (test, component) cells covered."""
        return float(self._covered.mean())

    def component_densities(self) -> np.ndarray:
        """Per-component fraction of tests covering it, length ``K``."""
        return self._covered.mean(axis=0)

    def describe(self) -> str:
        return (
            f"CoverageMatrix({self.n_tests} tests x {self.n_components} "
            f"components, density {self.density:.3f})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


def synthetic_coverage(
    n_tests: int,
    n_components: int,
    density: float = 0.5,
    bandwidth: int | None = None,
    overlap: float = 0.0,
    rng: SeedLike = None,
) -> CoverageMatrix:
    """A seeded banded random coverage matrix.

    Each test ``t`` has a *focus window* of ``bandwidth`` consecutive
    components centred (after clamping at the edges) on
    ``round(t * (K-1) / (T-1))``, modelling test locality.  Within the
    window every component is covered independently with probability
    ``density``; outside it with probability ``overlap * density``.  The
    focus component itself is always covered, so every test covers at
    least one component and — whenever ``n_tests >= n_components`` —
    every component is covered by at least one test.

    ``bandwidth=None`` (the default) spans all components: pure
    density-``density`` random coverage with a guaranteed diagonal.
    Deterministic for a given seed.
    """
    if n_tests < 1 or n_components < 1:
        raise ModelError(
            f"need n_tests >= 1 and n_components >= 1, got "
            f"{n_tests} x {n_components}"
        )
    if not 0.0 <= density <= 1.0:
        raise ModelError(f"density must be in [0, 1], got {density}")
    if not 0.0 <= overlap <= 1.0:
        raise ModelError(f"overlap must be in [0, 1], got {overlap}")
    if bandwidth is None:
        bandwidth = n_components
    if bandwidth < 1:
        raise ModelError(f"bandwidth must be >= 1, got {bandwidth}")
    bandwidth = min(bandwidth, n_components)
    generator = as_generator(rng)
    if n_tests == 1:
        centres = np.array([(n_components - 1) // 2], dtype=np.int64)
    else:
        centres = np.round(
            np.arange(n_tests) * (n_components - 1) / (n_tests - 1)
        ).astype(np.int64)
    starts = np.clip(
        centres - (bandwidth - 1) // 2, 0, n_components - bandwidth
    )
    columns = np.arange(n_components)[None, :]
    in_window = (columns >= starts[:, None]) & (
        columns < starts[:, None] + bandwidth
    )
    probs = np.where(in_window, density, overlap * density)
    covered = generator.random((n_tests, n_components)) < probs
    covered[np.arange(n_tests), centres] = True
    return CoverageMatrix(covered)


def _measured_entry(target: str):
    from ..mutation.measured import MEASURED, measured_target_names

    try:
        return MEASURED[target]
    except KeyError:
        known = ", ".join(measured_target_names()) or "<none>"
        raise ModelError(
            f"no committed measurement for target {target!r} (known: {known})"
        ) from None


def measured_component_assignment(
    target: str, n_components: int
) -> np.ndarray:
    """Per-mutant component ids for one bundled target.

    Mutants bucket into ``n_components`` contiguous source-line bands
    (the bucketing :func:`empirical_coverage` uses), in the committed
    mutant order — so index ``f`` here matches fault ``f`` of a universe
    built from the same target's fit.
    """
    if n_components < 1:
        raise ModelError(f"n_components must be >= 1, got {n_components}")
    entry = _measured_entry(target)
    lines = np.asarray([m["line"] for m in entry["mutants"]], dtype=np.int64)
    return _line_buckets(lines, n_components)


def empirical_coverage(target: str, n_components: int) -> CoverageMatrix:
    """Tests × components coverage from the committed kill records.

    Test ``t`` covers component ``k`` iff it killed at least one mutant
    whose source line falls in ``k``'s band — observed detection ability
    standing in for structural coverage.  Rows are the target's baseline
    tests in sorted-nodeid order; timeout/error mutants count as killed
    by every test, matching the campaign's ``detected`` tally.
    """
    entry = _measured_entry(target)
    assignment = measured_component_assignment(target, n_components)
    covered = np.zeros((int(entry["n_tests"]), n_components), dtype=bool)
    for mutant, component in zip(entry["mutants"], assignment):
        for test_index in mutant["kills"]:
            covered[test_index, component] = True
    return CoverageMatrix(covered)
