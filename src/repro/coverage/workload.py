"""The SBFL fault-localization workload: reliability growth under
localization-guided vs random fixing.

Each replication draws one version from a Bernoulli population over a
component-structured universe, then runs ``rounds`` of structural
debugging.  Per round every test of the coverage matrix executes one
usage-drawn demand; test ``t`` *fails* iff some present fault is hit by
its demand **and** lives in a component ``t`` covers (a test cannot see
failures outside its coverage).  The pass/fail spectrum is reduced to
SBFL suspiciousness (:mod:`repro.coverage.sbfl`) and the round ends with
one *successful repair*: the developer inspects components in policy
order — descending suspiciousness under ``policy="sbfl"``, uniformly
shuffled under ``policy="random"`` — until one with live detected faults
is found, and every fault of that component that contributed to a
failing test this round is removed.  (Modelling the inspection walk as
within-round matches how SBFL rankings are consumed in practice —
top-down until the fix lands — and keeps the effort unit a testing
round; a round with no detected failure repairs nothing.)  The tracked
outcome is the per-round mean pfd and the
*fix effort*: the replication-averaged number of rounds until pfd falls
to ``target_fraction`` of its initial value (censored runs count as
``rounds + 1``).

Randomness is **counter-based** (:func:`repro.rng.counter_uniforms`,
keyed by ``(seed, replication_index)`` with a fixed lane layout), and all
reductions use shape-stable pairwise sums, so results are bit-identical
for every ``chunk_size`` / ``n_jobs`` — the same guarantee the compiled
backend makes.  ``vectorized=False`` runs the identical draws through a
per-replication reference loop (the benchmark baseline and parity
witness).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Tuple

import numpy as np

from ..demand import UsageProfile
from ..errors import ModelError
from ..rng import counter_key, counter_uniforms, inverse_cdf_indices
from ..types import SeedLike
from .components import ComponentModel
from .matrix import CoverageMatrix
from .sbfl import SBFL_METRICS, spectrum_counts, suspiciousness

__all__ = ["LocalizedGrowthResult", "simulate_localized_growth"]

_POLICIES = ("sbfl", "random")
_DEFAULT_CHUNK = 4096


@dataclass(frozen=True)
class LocalizedGrowthResult:
    """Aggregated outcome of one localized-growth simulation."""

    policy: str
    metric: str
    rounds: int
    target_fraction: float
    n_replications: int
    #: mean pfd before testing and after each round, length ``rounds + 1``
    mean_pfd: Tuple[float, ...]
    #: replication-averaged rounds to reach the target pfd (the fix
    #: effort; censored replications count as ``rounds + 1``)
    mean_rounds_to_target: float
    #: fraction of replications that reached the target within ``rounds``
    reached_fraction: float

    @property
    def initial_pfd(self) -> float:
        return self.mean_pfd[0]

    @property
    def final_pfd(self) -> float:
        return self.mean_pfd[-1]


def _row_pfd(faults: np.ndarray, coverage: np.ndarray, probabilities):
    """Per-version pfd with a grouping-invariant pairwise reduction.

    ``(faults @ coverage) > 0`` would be the failure matrix; multiplying
    by ``Q`` and pairwise-summing each row keeps every row's float
    reduction a function of the demand count alone, so results cannot
    drift with the replication batch shape (chunk size).
    """
    failed = (
        faults.astype(np.float64) @ coverage.astype(np.float64) > 0.5
    )
    return (failed * probabilities[None, :]).sum(axis=1)


def one_hot(assignment: np.ndarray, n_components: int) -> np.ndarray:
    """``(F, K)`` float indicator of each fault's component."""
    return (
        assignment[:, None] == np.arange(n_components)[None, :]
    ).astype(np.float64)


def _select_random(candidates: np.ndarray, pick_u: np.ndarray) -> np.ndarray:
    """Uniform pick among candidate components, per row.

    Rows without any candidate select component 0, which is a no-op
    downstream (nothing was detected, so nothing is removed).
    """
    candidates = np.asarray(candidates, dtype=bool)
    n_candidates = candidates.sum(axis=1)
    pick = np.minimum(
        (pick_u * n_candidates).astype(np.int64),
        np.maximum(n_candidates - 1, 0),
    )
    order = np.cumsum(candidates, axis=1)
    return np.argmax(order == (pick + 1)[:, None], axis=1)


def _chunk_localized_growth(spec: dict, task: Tuple[int, int]):
    """One chunk of replications → per-replication outcome arrays.

    Returns ``(rounds_to_target, pfd_trajectories)`` for replication
    indices ``[start, start + count)``; every uniform is a pure function
    of ``(key, replication_index, lane)``, so the result is independent
    of how the replication range was chunked.
    """
    start, count = task
    key = spec["key"]
    presence = spec["presence_probs"]
    coverage = spec["coverage"]
    probabilities = spec["probabilities"]
    cdf = spec["cdf"]
    covered = spec["covered"]
    assignment = spec["assignment"]
    metric = spec["metric"]
    policy = spec["policy"]
    rounds = spec["rounds"]
    target_fraction = spec["target_fraction"]
    n_faults = presence.shape[0]
    n_tests = covered.shape[0]
    n_comp = covered.shape[1]
    streams = np.arange(start, start + count, dtype=np.uint64)[:, None]
    lane_stride = n_tests + 1  # per-round lanes: demands then policy pick

    fault_lanes = np.arange(n_faults, dtype=np.uint64)[None, :]
    faults = counter_uniforms(key, streams, fault_lanes) < presence[None, :]
    # test t can see fault f iff it covers f's component
    test_sees = covered[:, assignment]

    trajectories = np.zeros((count, rounds + 1), dtype=np.float64)
    trajectories[:, 0] = _row_pfd(faults, coverage, probabilities)
    threshold = target_fraction * trajectories[:, 0]
    rounds_to_target = np.full(count, rounds + 1, dtype=np.int64)
    rounds_to_target[trajectories[:, 0] <= threshold] = 0

    if spec["vectorized"]:
        for round_index in range(rounds):
            base = n_faults + round_index * lane_stride
            demand_lanes = base + np.arange(n_tests, dtype=np.uint64)[None, :]
            demand_u = counter_uniforms(key, streams, demand_lanes)
            demands = inverse_cdf_indices(cdf, None, uniforms=demand_u)
            # contrib[r, t, f]: fault f made test t fail this round
            hit = coverage[:, demands].transpose(1, 2, 0)
            contrib = faults[:, None, :] & hit & test_sees[None, :, :]
            failing = contrib.any(axis=2)
            detected = contrib.any(axis=1)
            # the inspection walk stops at the first component (in policy
            # order) holding a detected fault — the round's repair site
            repairable = (
                detected.astype(np.float64) @ one_hot(assignment, n_comp)
            ) > 0.5
            if policy == "sbfl":
                scores = suspiciousness(
                    metric, *spectrum_counts(failing, covered)
                )
                top = np.argmax(
                    np.where(repairable, scores, -np.inf), axis=1
                )
            else:
                pick_lane = np.uint64(base + n_tests)
                pick_u = counter_uniforms(key, streams, pick_lane)[:, 0]
                top = _select_random(repairable, pick_u)
            faults &= ~(detected & (assignment[None, :] == top[:, None]))
            pfd = _row_pfd(faults, coverage, probabilities)
            trajectories[:, round_index + 1] = pfd
            newly = (pfd <= threshold) & (rounds_to_target > rounds)
            rounds_to_target[newly] = round_index + 1
        return rounds_to_target, trajectories

    # reference path: identical draws, per-replication python loops
    for row in range(count):
        stream = streams[row, 0]
        current = faults[row].copy()
        for round_index in range(rounds):
            base = n_faults + round_index * lane_stride
            demand_u = counter_uniforms(
                key, stream, base + np.arange(n_tests, dtype=np.uint64)
            )
            demands = inverse_cdf_indices(cdf, None, uniforms=demand_u)
            failing = np.zeros(n_tests, dtype=bool)
            detected = np.zeros(n_faults, dtype=bool)
            for test in range(n_tests):
                contrib = (
                    current
                    & coverage[:, demands[test]]
                    & test_sees[test]
                )
                if contrib.any():
                    failing[test] = True
                    detected |= contrib
            repairable = (
                detected.astype(np.float64) @ one_hot(assignment, n_comp)
            ) > 0.5
            if policy == "sbfl":
                scores = suspiciousness(
                    metric, *spectrum_counts(failing, covered)
                )
                top = int(np.argmax(np.where(repairable, scores, -np.inf)))
            else:
                pick_u = counter_uniforms(
                    key, stream, np.uint64(base + n_tests)
                )
                top = int(
                    _select_random(
                        repairable[None, :], np.atleast_1d(pick_u)
                    )[0]
                )
            current &= ~(detected & (assignment == top))
            pfd = float(
                _row_pfd(current[None, :], coverage, probabilities)[0]
            )
            trajectories[row, round_index + 1] = pfd
            if pfd <= threshold[row] and rounds_to_target[row] > rounds:
                rounds_to_target[row] = round_index + 1
    return rounds_to_target, trajectories


def simulate_localized_growth(
    population,
    profile: UsageProfile,
    matrix: CoverageMatrix,
    model: ComponentModel,
    policy: str = "sbfl",
    metric: str = "ochiai",
    rounds: int = 8,
    target_fraction: float = 0.25,
    n_replications: int = 400,
    rng: SeedLike = None,
    chunk_size: int | None = None,
    n_jobs: int = 1,
    vectorized: bool = True,
) -> LocalizedGrowthResult:
    """Simulate reliability growth under a localization-driven fix policy.

    ``population`` must be a Bernoulli population (per-fault presence
    probabilities) over ``model.universe``'s demand space.  Results are
    bit-identical for every ``chunk_size`` / ``n_jobs`` and between the
    vectorized and reference paths up to float reduction order (the
    integer effort outcomes match exactly); pair two calls on the same
    seed with different ``policy`` values for a common-random-numbers
    comparison.
    """
    from ..mc.batch import run_tasks

    if policy not in _POLICIES:
        raise ModelError(
            f"policy must be one of {_POLICIES}, got {policy!r}"
        )
    if metric not in SBFL_METRICS:
        raise ModelError(
            f"metric must be one of {SBFL_METRICS}, got {metric!r}"
        )
    if rounds < 1:
        raise ModelError(f"rounds must be >= 1, got {rounds}")
    if not 0.0 < target_fraction <= 1.0:
        raise ModelError(
            f"target_fraction must be in (0, 1], got {target_fraction}"
        )
    if n_replications < 1:
        raise ModelError(
            f"n_replications must be >= 1, got {n_replications}"
        )
    presence = getattr(population, "presence_probs", None)
    if presence is None:
        raise ModelError(
            "the localized-growth workload models BernoulliFaultPopulation "
            f"versions only; got {type(population).__name__}"
        )
    universe = population.universe
    if len(model.universe) != len(universe) or (
        model.universe.space.size != universe.space.size
    ):
        raise ModelError(
            "component model and population disagree on the universe "
            f"({len(model.universe)} vs {len(universe)} faults)"
        )
    if matrix.n_components != model.n_components:
        raise ModelError(
            f"coverage matrix has {matrix.n_components} components but the "
            f"component model has {model.n_components}"
        )
    population.space.require_same(profile.space)
    if chunk_size is None:
        chunk_size = _DEFAULT_CHUNK
    if chunk_size < 1:
        raise ModelError(f"chunk_size must be >= 1, got {chunk_size}")

    spec = {
        "key": counter_key(rng),
        "presence_probs": np.asarray(presence, dtype=np.float64),
        "coverage": universe.coverage,
        "probabilities": np.asarray(profile.probabilities, dtype=np.float64),
        "cdf": np.cumsum(np.asarray(profile.probabilities, dtype=np.float64)),
        "covered": matrix.covered,
        "assignment": model.assignment,
        "metric": metric,
        "policy": policy,
        "rounds": int(rounds),
        "target_fraction": float(target_fraction),
        "vectorized": bool(vectorized),
    }
    tasks = [
        (start, min(chunk_size, n_replications - start))
        for start in range(0, n_replications, chunk_size)
    ]
    results = run_tasks(
        partial(_chunk_localized_growth, spec), tasks, n_jobs
    )
    rounds_to_target = np.concatenate([r for r, _t in results])
    trajectories = np.concatenate([t for _r, t in results], axis=0)
    reached = rounds_to_target <= rounds
    return LocalizedGrowthResult(
        policy=policy,
        metric=metric,
        rounds=int(rounds),
        target_fraction=float(target_fraction),
        n_replications=int(n_replications),
        mean_pfd=tuple(float(v) for v in trajectories.mean(axis=0)),
        mean_rounds_to_target=float(rounds_to_target.mean()),
        reached_fraction=float(reached.mean()),
    )
