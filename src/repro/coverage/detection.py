"""Coverage-derived detection: the matched oracle/fixing pair.

A test can only detect faults in components it covers.  Under a uniform
pick over the suite pool, the chance that the test exercising a demand
covers fault ``f``'s component is that component's *column density* in
the coverage matrix — :func:`fault_detection_probs` turns a
:class:`~repro.coverage.ComponentModel` plus a
:class:`~repro.coverage.CoverageMatrix` into that per-fault vector.

:class:`CoverageOracle` / :class:`CoverageFixing` package the vector as a
matched pair for the testing engine: failures are always *observed* (the
output is visibly wrong), but each causing fault is *diagnosed* — traced
to its component and repaired — only with its coverage-derived
probability, independently per fault and per execution.  Independence
across faults is a deliberate simplification (the same one §4.1 makes for
imperfect fixing): it keeps each fault's removal a geometric process,
which is exactly what the batch engine vectorizes
(:func:`repro.mc.batch.apply_coverage_testing_batch`) with scalar parity
in distribution.

The pair is recognised *structurally* by the batch planner — both
members expose the same ``fault_detection_probs`` tuple — so
:mod:`repro.mc.batch` never needs to import this package (the same
pattern as the blind-spot pairs of :mod:`repro.extensions.mistakes`).
Mismatched or half-supplied pairs fall back to the scalar path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import ProbabilityError
from ..rng import as_generator
from ..testing.fixing import FixingPolicy
from ..testing.oracle import Oracle
from ..versions import Version
from .components import ComponentModel
from .matrix import CoverageMatrix

__all__ = [
    "CoverageFixing",
    "CoverageOracle",
    "coverage_testing_pair",
    "fault_detection_probs",
]


def fault_detection_probs(
    model: ComponentModel, matrix: CoverageMatrix
) -> np.ndarray:
    """Per-fault detection probability from coverage, length ``F``.

    ``probs[f]`` is the fraction of tests covering fault ``f``'s
    component — the marginal chance that the test exercising a demand can
    see the fault at all.  Faults in never-covered components get 0 and
    are undetectable (hence unfixable) under the pair built from this
    vector.
    """
    from ..errors import ModelError

    if matrix.n_components != model.n_components:
        raise ModelError(
            f"coverage matrix has {matrix.n_components} components but the "
            f"component model has {model.n_components}"
        )
    return matrix.component_densities()[model.assignment]


def _coerce_probs(probs) -> Tuple[float, ...]:
    """Validate a probability vector and freeze it as a float tuple."""
    values = np.asarray(probs, dtype=np.float64)
    if values.ndim != 1:
        raise ProbabilityError(
            f"fault_detection_probs must be a flat sequence, got shape "
            f"{values.shape}"
        )
    if values.size and (
        np.any(values < 0.0)
        or np.any(values > 1.0)
        or np.any(~np.isfinite(values))
    ):
        raise ProbabilityError(
            "per-fault detection probabilities must lie in [0, 1]"
        )
    return tuple(float(p) for p in values)


@dataclass(frozen=True)
class CoverageOracle(Oracle):
    """Failure observation under coverage-limited diagnosis.

    Every failure is *observed* (``detects`` is always True — a wrong
    output is visibly wrong); which causing faults get *diagnosed* is the
    matched :class:`CoverageFixing`'s per-fault decision.  Splitting the
    model this way keeps the scalar engine's oracle-then-fixing contract
    intact while the pair jointly realises "each fault detected and
    fixed with its coverage probability".
    """

    fault_detection_probs: Tuple[float, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "fault_detection_probs",
            _coerce_probs(self.fault_detection_probs),
        )

    def detects(
        self, version: Version, demand: int, rng: np.random.Generator
    ) -> bool:
        return True


@dataclass(frozen=True)
class CoverageFixing(FixingPolicy):
    """Remove each causing fault with its coverage-derived probability.

    ``fault_detection_probs`` is indexed by *global* fault id, so it must
    span the full universe the tested versions live in.
    """

    fault_detection_probs: Tuple[float, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "fault_detection_probs",
            _coerce_probs(self.fault_detection_probs),
        )

    def faults_removed(
        self, version: Version, demand: int, rng: np.random.Generator
    ) -> np.ndarray:
        causes = version.faults_causing_failure(demand)
        if causes.size == 0:
            return causes
        probs = np.asarray(self.fault_detection_probs, dtype=np.float64)
        generator = as_generator(rng)
        keep = generator.random(causes.size) < probs[causes]
        return causes[keep]


def coverage_testing_pair(
    model: ComponentModel, matrix: CoverageMatrix
) -> Tuple[CoverageOracle, CoverageFixing]:
    """The matched (oracle, fixing) pair for one model + coverage matrix.

    Pass both to the testing engine together; the batch planner
    recognises the pair structurally and runs the vectorized closure.
    """
    probs = tuple(float(p) for p in fault_detection_probs(model, matrix))
    return CoverageOracle(probs), CoverageFixing(probs)
