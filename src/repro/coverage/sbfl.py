"""Spectrum-based fault localization (SBFL) suspiciousness metrics.

From a pass/fail *spectrum* — which tests failed, and which components
each test covers — SBFL scores every component by how strongly its
coverage correlates with failure.  The classic quadruple per component
``c``::

    n_cf  failing tests that cover c      n_uf  failing tests that miss c
    n_cs  passing tests that cover c      n_us  passing tests that miss c

All metrics here are pure functions of that quadruple (hence invariant
under any permutation of the tests), vectorized over arbitrary leading
batch dimensions, and guaranteed **finite** on degenerate spectra
(all-pass, all-fail, never-covered).  Ranking ties break deterministically
toward the lowest component id.

Formulas (D* uses the standard exponent 2):

* Ochiai:    ``n_cf / sqrt((n_cf + n_uf) * (n_cf + n_cs))``
* Tarantula: ``(n_cf/F) / (n_cf/F + n_cs/P)`` with ``F``/``P`` the
  failing/passing totals
* DStar:     ``n_cf**2 / (n_cs + n_uf)``, with a zero denominator (no
  counter-evidence at all) scored as ``n_cf**2`` — maximal yet finite.
"""

from __future__ import annotations

import numpy as np

from ..errors import ModelError

__all__ = [
    "SBFL_METRICS",
    "dstar",
    "ochiai",
    "rank_components",
    "spectrum_counts",
    "suspiciousness",
    "tarantula",
    "top_component",
]

#: metric names accepted by :func:`suspiciousness` (and the ``c*`` knobs)
SBFL_METRICS = ("ochiai", "tarantula", "dstar")


def spectrum_counts(failing: np.ndarray, covered: np.ndarray):
    """Reduce a spectrum to the per-component SBFL quadruple.

    ``failing`` is boolean with tests on the last axis (leading axes are
    batch dimensions); ``covered`` is the boolean
    ``(n_tests, n_components)`` coverage.  Returns float64 arrays
    ``(n_cf, n_cs, n_uf, n_us)`` shaped ``failing.shape[:-1] + (K,)``.
    """
    failing = np.asarray(failing, dtype=bool)
    covered = np.asarray(covered, dtype=bool)
    if covered.ndim != 2:
        raise ModelError(
            f"coverage must be 2-d (tests x components), got shape "
            f"{covered.shape}"
        )
    if failing.shape[-1] != covered.shape[0]:
        raise ModelError(
            f"spectrum has {failing.shape[-1]} tests but coverage has "
            f"{covered.shape[0]} rows"
        )
    cover = covered.astype(np.float64)
    fails = failing.astype(np.float64)
    n_cf = fails @ cover
    n_cs = (1.0 - fails) @ cover
    total_f = fails.sum(axis=-1, keepdims=True)
    total_p = fails.shape[-1] - total_f
    return n_cf, n_cs, total_f - n_cf, total_p - n_cs


def ochiai(n_cf, n_cs, n_uf, n_us) -> np.ndarray:
    """Ochiai suspiciousness; 0 wherever the denominator vanishes."""
    n_cf = np.asarray(n_cf, dtype=np.float64)
    denom = np.sqrt(
        (n_cf + np.asarray(n_uf, dtype=np.float64))
        * (n_cf + np.asarray(n_cs, dtype=np.float64))
    )
    return np.divide(
        n_cf, denom, out=np.zeros_like(n_cf), where=denom > 0.0
    )


def tarantula(n_cf, n_cs, n_uf, n_us) -> np.ndarray:
    """Tarantula suspiciousness; degenerate spectra score 0 or 1, never NaN."""
    n_cf = np.asarray(n_cf, dtype=np.float64)
    n_cs = np.asarray(n_cs, dtype=np.float64)
    total_f = n_cf + np.asarray(n_uf, dtype=np.float64)
    total_p = n_cs + np.asarray(n_us, dtype=np.float64)
    fail_frac = np.divide(
        n_cf, total_f, out=np.zeros_like(n_cf), where=total_f > 0.0
    )
    pass_frac = np.divide(
        n_cs, total_p, out=np.zeros_like(n_cs), where=total_p > 0.0
    )
    denom = fail_frac + pass_frac
    return np.divide(
        fail_frac, denom, out=np.zeros_like(fail_frac), where=denom > 0.0
    )


def dstar(n_cf, n_cs, n_uf, n_us) -> np.ndarray:
    """DStar (exponent 2); a zero denominator scores ``n_cf**2`` — finite."""
    n_cf = np.asarray(n_cf, dtype=np.float64)
    denom = np.asarray(n_cs, dtype=np.float64) + np.asarray(
        n_uf, dtype=np.float64
    )
    squared = np.square(n_cf)
    return np.divide(squared, denom, out=squared, where=denom > 0.0)


_METRIC_FUNCTIONS = {
    "ochiai": ochiai,
    "tarantula": tarantula,
    "dstar": dstar,
}


def suspiciousness(metric: str, n_cf, n_cs, n_uf, n_us) -> np.ndarray:
    """Dispatch one metric by name over a (batched) quadruple."""
    try:
        function = _METRIC_FUNCTIONS[metric]
    except KeyError:
        raise ModelError(
            f"metric must be one of {SBFL_METRICS}, got {metric!r}"
        ) from None
    return function(n_cf, n_cs, n_uf, n_us)


def rank_components(scores: np.ndarray) -> np.ndarray:
    """Component ids, most suspicious first; ties break to the lowest id.

    1-d input only (rank one spectrum at a time); use
    :func:`top_component` for the batched winner.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1:
        raise ModelError(
            f"rank_components expects a 1-d score vector, got shape "
            f"{scores.shape}"
        )
    return np.lexsort((np.arange(scores.shape[0]), -scores))


def top_component(scores: np.ndarray) -> np.ndarray:
    """Most-suspicious component per batch row (lowest id on ties)."""
    scores = np.asarray(scores, dtype=np.float64)
    return np.argmax(scores, axis=-1)
