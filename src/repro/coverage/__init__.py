"""Component-structured programs, coverage matrices and fault localization.

The paper's testing regimes pick demands blindly and repair whichever
fault was hit.  Real debugging is structural: programs decompose into
*components*, test suites cover subsets of them, and fix effort goes to
the most-suspicious component first.  This package layers that structure
on the existing fault-population machinery:

* :mod:`repro.coverage.components` — K components over a fault universe
  (per-fault component assignment, per-component contribution to the
  demand-space fault regions);
* :mod:`repro.coverage.matrix` — tests × components coverage matrices:
  seeded synthetic generators (density / bandwidth / overlap knobs) and
  an empirical constructor grounded in the committed mutation-campaign
  kill records;
* :mod:`repro.coverage.detection` — per-fault detection probability
  derived from coverage (a test can only detect faults in components it
  covers), packaged as a matched oracle/fixing pair the batch engine
  (:mod:`repro.mc.batch`) vectorizes;
* :mod:`repro.coverage.sbfl` — spectrum-based fault localization
  (Ochiai / Tarantula / DStar suspiciousness with deterministic
  tie-breaking);
* :mod:`repro.coverage.workload` — the reliability-growth workload under
  SBFL-guided vs random fixing that the ``c*`` experiments run.

See ``docs/localization.md`` for the model and the experiment family.
"""

from .components import ComponentModel
from .detection import (
    CoverageFixing,
    CoverageOracle,
    coverage_testing_pair,
    fault_detection_probs,
)
from .matrix import (
    CoverageMatrix,
    empirical_coverage,
    measured_component_assignment,
    synthetic_coverage,
)
from .sbfl import (
    SBFL_METRICS,
    dstar,
    ochiai,
    rank_components,
    spectrum_counts,
    suspiciousness,
    tarantula,
    top_component,
)
from .workload import LocalizedGrowthResult, simulate_localized_growth

__all__ = [
    "ComponentModel",
    "CoverageFixing",
    "CoverageMatrix",
    "CoverageOracle",
    "LocalizedGrowthResult",
    "SBFL_METRICS",
    "coverage_testing_pair",
    "dstar",
    "empirical_coverage",
    "fault_detection_probs",
    "measured_component_assignment",
    "ochiai",
    "rank_components",
    "simulate_localized_growth",
    "spectrum_counts",
    "suspiciousness",
    "synthetic_coverage",
    "tarantula",
    "top_component",
]
