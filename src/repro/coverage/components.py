"""Component-structured programs over a fault universe.

A :class:`ComponentModel` partitions the faults of a
:class:`~repro.faults.FaultUniverse` into ``K`` components — the units a
coverage matrix covers and a localization policy repairs.  The demand
space is untouched: a component's *failure footprint* is simply the union
of its faults' regions, so every analytic and Monte-Carlo quantity of the
reproduction keeps its meaning when read per component.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ModelError
from ..faults import FaultUniverse

__all__ = ["ComponentModel"]


def _line_buckets(lines: np.ndarray, n_components: int) -> np.ndarray:
    """Bucket source lines into contiguous components.

    Unique lines are sorted and split into ``n_components`` nearly-equal
    contiguous groups (later groups may be empty when there are fewer
    distinct lines than components); each item maps to its line's group.
    """
    unique = np.unique(lines)
    groups = np.array_split(unique, n_components)
    line_to_component = {}
    for component, group in enumerate(groups):
        for line in group:
            line_to_component[int(line)] = component
    return np.asarray(
        [line_to_component[int(line)] for line in lines], dtype=np.int64
    )


class ComponentModel:
    """``K`` components over a fault universe, as a per-fault assignment.

    Parameters
    ----------
    universe:
        The fault universe being structured.
    assignment:
        Length-``len(universe)`` integer vector; ``assignment[f]`` is the
        component (in ``0 .. n_components-1``) fault ``f`` lives in.
    n_components:
        Number of components.  Defaults to ``max(assignment) + 1``;
        passing it explicitly allows trailing empty components.
    """

    def __init__(
        self,
        universe: FaultUniverse,
        assignment: Sequence[int] | np.ndarray,
        n_components: int | None = None,
    ) -> None:
        ids = np.asarray(assignment, dtype=np.int64)
        if ids.shape != (len(universe),):
            raise ModelError(
                f"component assignment of shape {ids.shape} does not match "
                f"universe size {len(universe)}"
            )
        if n_components is None:
            n_components = int(ids.max()) + 1 if ids.size else 1
        if n_components < 1:
            raise ModelError(
                f"n_components must be >= 1, got {n_components}"
            )
        if ids.size and (ids.min() < 0 or ids.max() >= n_components):
            raise ModelError(
                f"component ids must lie in [0, {n_components}), got range "
                f"[{ids.min()}, {ids.max()}]"
            )
        self._universe = universe
        self._assignment = ids
        self._assignment.setflags(write=False)
        self._n_components = int(n_components)

    # -- constructors ----------------------------------------------------

    @classmethod
    def round_robin(
        cls, universe: FaultUniverse, n_components: int
    ) -> "ComponentModel":
        """Fault ``f`` in component ``f % n_components`` — maximal mixing."""
        if n_components < 1:
            raise ModelError(f"n_components must be >= 1, got {n_components}")
        assignment = np.arange(len(universe), dtype=np.int64) % n_components
        return cls(universe, assignment, n_components)

    @classmethod
    def blocked(
        cls, universe: FaultUniverse, n_components: int
    ) -> "ComponentModel":
        """Contiguous fault-id blocks of near-equal size — maximal locality."""
        if n_components < 1:
            raise ModelError(f"n_components must be >= 1, got {n_components}")
        assignment = np.zeros(len(universe), dtype=np.int64)
        for component, block in enumerate(
            np.array_split(np.arange(len(universe)), n_components)
        ):
            assignment[block] = component
        return cls(universe, assignment, n_components)

    @classmethod
    def from_lines(
        cls,
        universe: FaultUniverse,
        lines: Sequence[int] | np.ndarray,
        n_components: int,
    ) -> "ComponentModel":
        """Components as contiguous source-line bands.

        ``lines[f]`` is the source line fault ``f`` was seeded at (for
        measured universes: the mutated line of mutant ``f``); unique
        lines are split into ``n_components`` contiguous bands, so faults
        on nearby lines share a component — the structure an empirical
        coverage matrix (same bucketing) localizes against.
        """
        if n_components < 1:
            raise ModelError(f"n_components must be >= 1, got {n_components}")
        lines = np.asarray(lines, dtype=np.int64)
        if lines.shape != (len(universe),):
            raise ModelError(
                f"line vector of shape {lines.shape} does not match "
                f"universe size {len(universe)}"
            )
        return cls(universe, _line_buckets(lines, n_components), n_components)

    # -- structure -------------------------------------------------------

    @property
    def universe(self) -> FaultUniverse:
        return self._universe

    @property
    def assignment(self) -> np.ndarray:
        """Read-only per-fault component ids, length ``len(universe)``."""
        return self._assignment

    @property
    def n_components(self) -> int:
        return self._n_components

    def faults_in(self, component: int) -> np.ndarray:
        """Fault ids assigned to ``component``, ascending."""
        if not 0 <= component < self._n_components:
            raise ModelError(
                f"component {component} outside [0, {self._n_components})"
            )
        return np.flatnonzero(self._assignment == component)

    def component_sizes(self) -> np.ndarray:
        """Number of faults per component, length ``n_components``."""
        return np.bincount(self._assignment, minlength=self._n_components)

    # -- demand-space footprint ------------------------------------------

    def component_masses(self, probabilities: np.ndarray) -> np.ndarray:
        """Summed per-fault region masses per component.

        The additive (multiplicity-counting) footprint: a demand covered
        by two of a component's faults contributes twice.  This is the
        natural size-bias a localization policy exploits — components
        holding large faults accumulate failing evidence fastest.
        """
        masses = self._universe.region_masses(np.asarray(probabilities))
        return np.bincount(
            self._assignment, weights=masses, minlength=self._n_components
        )

    def union_masses(self, probabilities: np.ndarray) -> np.ndarray:
        """Usage mass of each component's union failure region."""
        probabilities = np.asarray(probabilities, dtype=np.float64)
        out = np.zeros(self._n_components, dtype=np.float64)
        for component in range(self._n_components):
            mask = self._universe.union_mask(self.faults_in(component))
            out[component] = float(probabilities[mask].sum())
        return out

    def describe(self) -> str:
        sizes = self.component_sizes()
        return (
            f"ComponentModel({self._n_components} components over "
            f"{len(self._universe)} faults, sizes "
            f"{int(sizes.min())}..{int(sizes.max())})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()
