"""M1 — reliability growth on measured versus assumed fault sizes.

The headline experiment of the mutation bridge: take the committed
mutation-campaign measurements for one corpus target, fit the
size-biased multinomial detection model, and build two Bernoulli fault
populations that differ **only** in their region-size profile — one
using the measured per-mutant detection probabilities, one forcing the
classical equal-size assumption at the same aggregate detection rate.
Exact reliability-growth curves on the two populations then show what
the equal-size simplification costs: measured (heterogeneous) fault
sizes bend the growth curve — big faults die early, the measured tail
of small faults keeps residual pfd alive long after the equal-size
model predicts it gone.
"""

from __future__ import annotations

import numpy as np

from ..demand import DemandSpace, uniform_profile
from ..growth import system_growth_curves, version_growth_curve
# submodule imports (not the repro.mutation package) keep the import
# graph acyclic: repro.mutation.campaign pulls in the store, which pulls
# in this experiments package
from ..mutation.bridge import (
    assumed_population,
    measured_population,
    region_sizes_from_fit,
)
from ..mutation.estimators import fit_size_biased_multinomial
from ..mutation.measured import measured_detection_data
from .base import Claim, ExperimentResult
from .registry import register


def _subsample(data, max_faults: int, seed: int):
    """A deterministic mutant subsample bounding the exact-engine cost.

    The closed-form engine's inclusion–exclusion walk is exponential in
    the number of faults covering one demand, so campaigns with many
    mutants (leap has 46) must be thinned before becoming a fault
    universe.  The subsample is uniform over mutants — size-unbiased —
    and a pure function of ``(campaign, max_faults, seed)``.
    """
    from ..mutation.estimators import DetectionData

    if data.n_mutants <= max_faults:
        return data
    rng = np.random.default_rng(seed + 77_003)
    chosen = sorted(
        int(i)
        for i in rng.choice(data.n_mutants, size=max_faults, replace=False)
    )
    return DetectionData(
        counts=tuple(data.counts[i] for i in chosen),
        n_tests=data.n_tests,
        labels=tuple(data.labels[i] for i in chosen),
    )


@register("m1")
def run(
    seed: int = 0,
    fast: bool = True,
    target: str = "triangle",
    presence_prob: float = 0.35,
    max_faults: int = 16,
) -> ExperimentResult:
    """Run M1 and return its result table and claims."""
    data = _subsample(measured_detection_data(target), max_faults, seed)
    fit = fit_size_biased_multinomial(data)
    space = DemandSpace(120)
    profile = uniform_profile(space)
    sizes = [0, 5, 10, 20, 40, 80, 160]

    measured = measured_population(fit, space, presence_prob, seed=seed)
    assumed = assumed_population(fit, space, presence_prob, seed=seed)

    measured_version = version_growth_curve(measured, profile, sizes)
    assumed_version = version_growth_curve(assumed, profile, sizes)
    measured_system = system_growth_curves(measured, profile, sizes)[
        "independent suites"
    ]
    assumed_system = system_growth_curves(assumed, profile, sizes)[
        "independent suites"
    ]

    rows = []
    for index, n in enumerate(sizes):
        measured_pfd = float(measured_version.values[index])
        assumed_pfd = float(assumed_version.values[index])
        rows.append(
            [
                n,
                measured_pfd,
                assumed_pfd,
                measured_pfd - assumed_pfd,
                float(measured_system.values[index]),
                float(assumed_system.values[index]),
            ]
        )

    region_sizes = region_sizes_from_fit(fit, space)
    gaps = np.abs(
        np.asarray(measured_version.values)
        - np.asarray(assumed_version.values)
    )
    divergence = float(np.max(gaps))
    untested_gap = float(gaps[0])
    tested_divergence = float(np.max(gaps[1:]))
    claims = [
        Claim(
            "both growth curves decrease monotonically with testing effort",
            measured_version.is_nonincreasing()
            and assumed_version.is_nonincreasing(),
        ),
        Claim(
            "measured fault sizes are heterogeneous (the equal-size "
            "assumption is counterfactual for this campaign)",
            len(set(region_sizes)) > 1,
            f"region sizes span [{min(region_sizes)}, {max(region_sizes)}]",
        ),
        Claim(
            "the measured and assumed growth curves demonstrably diverge",
            divergence > 1e-3,
            f"max |measured - assumed| version pfd = {divergence:.6f}",
        ),
        Claim(
            "testing widens the measured-vs-assumed gap beyond the "
            "untested mismatch (the divergence is a *growth* effect, not "
            "just a size-budget artefact)",
            tested_divergence > untested_gap + 1e-12,
            f"untested gap {untested_gap:.6f} vs max tested divergence "
            f"{tested_divergence:.6f}",
        ),
        Claim(
            "the 1-out-of-2 system is at least as reliable as one version "
            "under both size models",
            bool(
                np.all(
                    np.asarray(measured_system.values)
                    <= np.asarray(measured_version.values) + 1e-12
                )
                and np.all(
                    np.asarray(assumed_system.values)
                    <= np.asarray(assumed_version.values) + 1e-12
                )
            ),
        ),
    ]
    return ExperimentResult(
        experiment_id="m1",
        title="Reliability growth under measured vs assumed fault sizes",
        paper_reference=(
            "section 2 fault-size assumptions, grounded by mutation "
            "measurement (arXiv:2406.04360)"
        ),
        columns=[
            "suite size",
            "version pfd (measured)",
            "version pfd (assumed)",
            "pfd difference",
            "system pfd (measured)",
            "system pfd (assumed)",
        ],
        rows=rows,
        claims=claims,
        notes=(
            f"target {target!r}: {data.n_mutants} mutants x "
            f"{data.n_tests} tests, alpha = {fit.alpha:.3f}, mutation "
            f"score {fit.mutation_score:.2f}; exact curves on a "
            f"{space.size}-demand space, presence prob {presence_prob}; "
            "identical placement streams, only the size profile differs"
        ),
        extra={
            "alpha": fit.alpha,
            "mutation_score": fit.mutation_score,
            "region_sizes": region_sizes,
        },
    )
