"""Experiment registry.

Experiment modules register a runner ``(seed, fast) -> ExperimentResult``
under their id at import time; the CLI, the benchmark suite and the test
suite all look experiments up here, so there is exactly one definition of
each experiment in the codebase.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import ModelError
from .base import ExperimentResult

__all__ = ["register", "get_runner", "run_experiment", "all_experiment_ids"]

Runner = Callable[[int, bool], ExperimentResult]

_REGISTRY: Dict[str, Runner] = {}


def register(experiment_id: str) -> Callable[[Runner], Runner]:
    """Class/function decorator registering a runner under ``experiment_id``."""

    def decorator(runner: Runner) -> Runner:
        if experiment_id in _REGISTRY:
            raise ModelError(f"experiment {experiment_id!r} already registered")
        _REGISTRY[experiment_id] = runner
        return runner

    return decorator


def get_runner(experiment_id: str) -> Runner:
    """Look up a registered runner.

    Raises
    ------
    ModelError
        For unknown ids (listing the known ones).
    """
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ModelError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def run_experiment(
    experiment_id: str, seed: int = 0, fast: bool = True
) -> ExperimentResult:
    """Run one experiment by id.

    Parameters
    ----------
    experiment_id:
        Registry id (``"e01"`` … ``"e14"``, ``"a1"`` … ``"a5"``).
    seed:
        Root seed; the same seed reproduces the same tables exactly.
    fast:
        True keeps replication counts small (seconds); False runs the
        larger counts used for EXPERIMENTS.md.
    """
    return get_runner(experiment_id)(seed, fast)


def all_experiment_ids() -> List[str]:
    """All registered ids, e-experiments first, each group in order."""
    ids = sorted(_REGISTRY)
    e_ids = [i for i in ids if i.startswith("e")]
    a_ids = [i for i in ids if i.startswith("a")]
    other = [i for i in ids if not (i.startswith("e") or i.startswith("a"))]
    return e_ids + a_ids + other
