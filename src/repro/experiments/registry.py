"""Experiment registry.

Experiment modules register a runner ``(seed, fast) -> ExperimentResult``
under their id at import time; the CLI, the benchmark suite, the sweep
layer and the test suite all look experiments up here, so there is exactly
one definition of each experiment in the codebase.

Runners may accept extra keyword-only *knobs* beyond ``(seed, fast)``
(e.g. ``presence_prob`` on ``a2``, ``suite_size`` on ``x3``); the sweep
layer discovers them via :func:`runner_params` and passes them through
:func:`run_experiment`'s ``params`` mapping, validated up front so an
unknown knob fails before any replication budget is spent.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, List, Mapping, Optional

from ..errors import ModelError
from .base import ExperimentResult

__all__ = [
    "register",
    "get_runner",
    "run_experiment",
    "runner_params",
    "validate_params",
    "all_experiment_ids",
]

Runner = Callable[[int, bool], ExperimentResult]

_REGISTRY: Dict[str, Runner] = {}

# positional run contract shared by every runner; anything else is a knob
_BASE_PARAMS = ("seed", "fast")


def register(experiment_id: str) -> Callable[[Runner], Runner]:
    """Class/function decorator registering a runner under ``experiment_id``."""

    def decorator(runner: Runner) -> Runner:
        if experiment_id in _REGISTRY:
            raise ModelError(f"experiment {experiment_id!r} already registered")
        _REGISTRY[experiment_id] = runner
        return runner

    return decorator


def get_runner(experiment_id: str) -> Runner:
    """Look up a registered runner.

    Raises
    ------
    ModelError
        For unknown ids (listing the known ones).
    """
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ModelError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def runner_params(experiment_id: str) -> Dict[str, object]:
    """The extra knobs a runner accepts beyond ``(seed, fast)``.

    Returns a mapping of parameter name to its default value
    (:data:`inspect.Parameter.empty` for required knobs — none of the
    built-in experiments have any).  The sweep layer uses this to validate
    grid axes before running anything.
    """
    signature = inspect.signature(get_runner(experiment_id))
    return {
        name: parameter.default
        for name, parameter in signature.parameters.items()
        if name not in _BASE_PARAMS
        and parameter.kind
        in (
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
            inspect.Parameter.KEYWORD_ONLY,
        )
    }


def validate_params(
    experiment_id: str, params: Optional[Mapping[str, object]]
) -> None:
    """Reject knob names the runner does not accept, listing the known ones.

    Raises
    ------
    ModelError
        Naming every unknown knob and the knobs the runner does support.
    """
    if not params:
        return
    supported = runner_params(experiment_id)
    unknown = sorted(name for name in params if name not in supported)
    if unknown:
        known = ", ".join(sorted(supported)) if supported else "none"
        raise ModelError(
            f"experiment {experiment_id!r} does not accept param(s) "
            f"{', '.join(repr(name) for name in unknown)}; supported knobs: "
            f"{known}"
        )


def run_experiment(
    experiment_id: str,
    seed: int = 0,
    fast: bool = True,
    params: Optional[Mapping[str, object]] = None,
) -> ExperimentResult:
    """Run one experiment by id.

    Parameters
    ----------
    experiment_id:
        Registry id (``"e01"`` … ``"e14"``, ``"a1"`` … ``"a5"``).
    seed:
        Root seed; the same seed reproduces the same tables exactly.
    fast:
        True keeps replication counts small (seconds); False runs the
        larger counts used for EXPERIMENTS.md.
    params:
        Extra keyword knobs for runners that accept them (see
        :func:`runner_params`); unknown names raise :class:`ModelError`
        before the runner starts.
    """
    runner = get_runner(experiment_id)
    validate_params(experiment_id, params)
    if params:
        result = runner(seed, fast, **dict(params))
    else:
        result = runner(seed, fast)
    _note_fastest_engine(result)
    return result


def _note_fastest_engine(result: ExperimentResult) -> None:
    """Record what ``--engine fastest`` actually ran, in the result.

    The alias trades cross-machine bit-stability for speed, so the
    payload must say which backend produced the numbers; under any
    concrete engine name this is a no-op and payloads stay unchanged.
    """
    from .base import engine_config

    if engine_config().engine != "fastest":
        return
    from ..mc.experiments import resolve_fastest
    from ..mc.kernels import HAVE_NUMBA

    result.extra["engine_provenance"] = (
        f"engine='fastest' resolved to {resolve_fastest()!r} "
        f"(numba {'importable' if HAVE_NUMBA else 'not importable'})"
    )


def all_experiment_ids() -> List[str]:
    """All registered ids, e-experiments first, each group in order."""
    ids = sorted(_REGISTRY)
    e_ids = [i for i in ids if i.startswith("e")]
    a_ids = [i for i in ids if i.startswith("a")]
    other = [i for i in ids if not (i.startswith("e") or i.startswith("a"))]
    return e_ids + a_ids + other
