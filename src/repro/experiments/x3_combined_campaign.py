"""X3 — extension: combined development activities (§5, closing paragraph).

Runs two realistic end-to-end campaigns over the same population and
budget and compares the delivered systems:

* a **diversity-preserving** campaign — independent testing stages, each
  team resolving its own ambiguities;
* a **commonality-heavy** campaign — the same testing effort as shared
  stages, a broadcast clarification, and a back-to-back session;
* the commonality-heavy campaign **with a common mistake** injected midway
  — the only activity that can make the system *worse*, visible as the
  unique degrading step of the trajectory.

Catalog entry: ``x3`` in docs/experiments.md.  The campaign averages run
on the batch engine — every built-in activity transforms whole
fault-matrix blocks (:meth:`repro.extensions.Activity.apply_batch`) —
under ``--engine auto``/``batch``; the single illustrative trajectory
stays scalar.
"""

from __future__ import annotations

import numpy as np

from ..extensions import (
    BackToBackActivity,
    ClarificationActivity,
    ClarificationProcess,
    DevelopmentCampaign,
    IndependentTestingActivity,
    MistakeActivity,
    PerTeamClarificationActivity,
    SharedTestingActivity,
    SpecificationMistake,
)
from ..testing import BackToBackComparator, OperationalSuiteGenerator
from ..versions import shared_fault_outputs
from .base import Claim, ExperimentResult, engine_kwargs, require_batch_engine
from .models import standard_scenario
from .registry import register


@register("x3")
def run(
    seed: int = 0,
    fast: bool = True,
    suite_size: int = 25,
    n_replications: int | None = None,
    precision=None,
) -> ExperimentResult:
    """Run X3 and return its result table and claims.

    Sweepable campaign knobs: ``suite_size`` scales every testing stage's
    effort (shared, independent and back-to-back stages alike, keeping the
    budgets matched), and ``n_replications`` overrides the fast/full
    version-pair count — the axes a sweep varies to study how campaign
    composition effects move with testing effort.

    ``precision`` (a :class:`repro.adaptive.PrecisionTarget` or a mapping
    of its fields) replaces the fixed version-pair count with the adaptive
    precision engine.  A delivered campaign's pfd sits near zero, so a
    *relative* target is anchored to the scale the campaigns are compared
    against — the exact untested system pfd: ``rel_hw=0.05`` reads "the
    campaign means are resolved to 5% of the untested baseline".  With
    both knobs set, ``n_replications`` is the adaptive run's budget.  The
    per-campaign convergence reports land in ``result.extra["adaptive"]``.
    """
    from ..adaptive import PrecisionTarget

    target = PrecisionTarget.coerce(precision)
    if target is not None:
        require_batch_engine("precision-targeted x3")
    # an explicit n_replications is the user's budget; otherwise adaptive
    # runs may escalate up to the full-mode count
    adaptive_budget = n_replications if n_replications is not None else 1500
    if n_replications is None:
        n_replications = 150 if fast else 1500
    scenario = standard_scenario(seed)
    generator = OperationalSuiteGenerator(scenario.profile, suite_size)
    process = ClarificationProcess(
        scenario.space,
        [list(range(0, 15)), list(range(40, 55))],
        [0.5, 0.5],
    )
    comparator = BackToBackComparator(shared_fault_outputs())
    mistake = SpecificationMistake((0,))

    diverse = DevelopmentCampaign(
        [
            IndependentTestingActivity(generator),
            PerTeamClarificationActivity(process),
            IndependentTestingActivity(generator),
        ]
    )
    common = DevelopmentCampaign(
        [
            SharedTestingActivity(generator),
            ClarificationActivity(process),
            BackToBackActivity(generator, comparator),
        ]
    )
    common_with_mistake = DevelopmentCampaign(
        [
            SharedTestingActivity(generator),
            MistakeActivity(mistake),
            BackToBackActivity(generator, comparator),
        ]
    )

    results = {}
    rows = []
    extra = {}
    for label, campaign in (
        ("diversity-preserving", diverse),
        ("commonality-heavy", common),
        ("commonality-heavy + mistake", common_with_mistake),
    ):
        if target is not None:
            from ..adaptive import adaptive_campaign_pfd

            config = engine_kwargs()
            theta = scenario.population.difficulty()
            report = adaptive_campaign_pfd(
                campaign,
                scenario.population,
                scenario.profile,
                target,
                rng=seed + 3000,
                n_jobs=config["n_jobs"],
                default_budget=adaptive_budget,
                scale=float(scenario.profile.expectation(theta * theta)),
            )
            estimator = report.only.as_estimator()
            extra[label] = report.to_payload()
        else:
            estimator = campaign.mean_final_system_pfd_estimator(
                scenario.population,
                scenario.profile,
                n_replications=n_replications,
                rng=seed + 3000,
                **engine_kwargs(),
            )
        results[label] = estimator.mean
        rows.append([label, estimator.mean, estimator.std_error()])

    # one concrete trajectory with the mistake, to expose the degrading step
    rng = np.random.default_rng(seed + 3100)
    version_a = scenario.population.sample(rng)
    version_b = scenario.population.sample(rng)
    trajectory = common_with_mistake.run(
        version_a, version_b, scenario.profile, rng=seed + 3200
    )
    degrading = trajectory.degrading_steps()
    for step in trajectory.steps:
        rows.append(
            [f"trajectory step {step.step} ({step.kind})", step.system_pfd, ""]
        )

    claims = [
        Claim(
            "mixing in common activities delivers a less reliable system "
            "than the diversity-preserving campaign at the same effort",
            results["commonality-heavy"]
            >= results["diversity-preserving"] - 1e-12,
            f"{results['commonality-heavy']:.6f} vs "
            f"{results['diversity-preserving']:.6f}",
        ),
        Claim(
            "a common mistake makes the combined campaign strictly worse",
            results["commonality-heavy + mistake"]
            > results["commonality-heavy"],
            f"{results['commonality-heavy + mistake']:.6f} vs "
            f"{results['commonality-heavy']:.6f}",
        ),
        Claim(
            "in the trajectory, only the mistake step degrades the system",
            len(degrading) <= 1
            and all(step.kind == "common mistake" for step in degrading),
            f"degrading steps: {[step.kind for step in degrading]}",
        ),
        Claim(
            "every testing-type activity keeps or improves the system",
            all(
                current.system_pfd <= previous.system_pfd + 1e-15
                for previous, current in zip(
                    trajectory.steps, trajectory.steps[1:]
                )
                if current.kind != "common mistake"
            ),
        ),
    ]
    return ExperimentResult(
        experiment_id="x3",
        title="Combined development activities: commonality accumulates "
        "across the campaign",
        paper_reference="section 5 (conclusion), combined-activities "
        "paragraph",
        columns=[
            "campaign / step",
            "mean final (or step) system pfd",
            "std error",
        ],
        rows=rows,
        claims=claims,
        notes=(
            (
                "adaptive precision-targeted version-pair replications "
                "per campaign (see extra['adaptive'])"
                if target is not None
                else f"{n_replications} version-pair replications per campaign"
            )
            + f"; budgets matched at two {suite_size}-test stages plus one "
            "clarification/cross-check step"
        ),
        extra={"adaptive": extra} if extra else {},
    )
