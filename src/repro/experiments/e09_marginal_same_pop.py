"""E9 — marginal system pfd, same population: eqs. (22)–(23).

On a random operational demand, the 1-out-of-2 system built from two
versions of one population is *less* reliable when both were tested on a
common suite than when tested on independent suites, by exactly
``E_Q[Var_T(ξ(X,T))]``:

    P(fail | same suite) = E[Θ_T]² + Var(Θ_T) + E_Q[Var_T(ξ(X,T))]
                         ≥ P(fail | independent suites)
"""

from __future__ import annotations

from ..core import IndependentSuites, SameSuite, marginal_system_pfd
from ..mc import simulate_marginal_system_pfd
from ..rng import as_generator, spawn
from .base import Claim, ExperimentResult, engine_kwargs
from .models import standard_scenario
from .registry import register


@register("e09")
def run(seed: int = 0, fast: bool = True) -> ExperimentResult:
    """Run E9 and return its result table and claims."""
    n_replications = 1500 if fast else 15000
    n_suites = 1500 if fast else 8000
    scenario = standard_scenario(seed)
    rng = as_generator(seed + 900)

    rows = []
    claims = []
    results = {}
    for regime in (
        IndependentSuites(scenario.generator),
        SameSuite(scenario.generator),
    ):
        analytic = marginal_system_pfd(
            regime,
            scenario.population,
            scenario.profile,
            n_suites=n_suites,
            rng=spawn(rng),
        )
        estimator = simulate_marginal_system_pfd(
            regime,
            scenario.population,
            scenario.profile,
            n_replications=n_replications,
            rng=spawn(rng),
            **engine_kwargs(),
        )
        results[regime.label] = (analytic, estimator)
        ok = estimator.contains(analytic.system_pfd, confidence=0.999)
        rows.append(
            [
                regime.label,
                analytic.pfd_a,
                analytic.system_pfd,
                analytic.independence_product,
                analytic.difficulty_covariance,
                analytic.suite_dependence,
                estimator.mean,
                ok,
            ]
        )
        claims.append(
            Claim(
                f"MC confirms the {regime.label} system pfd (99.9% CI)",
                ok,
                f"analytic {analytic.system_pfd:.6f}, "
                f"MC {estimator.mean:.6f} +/- "
                f"{3.29 * estimator.std_error():.6f}",
            )
        )

    independent_analytic = results["independent suites"][0]
    same_analytic = results["same suite"][0]
    claims.append(
        Claim(
            "same-suite testing degrades the system: eq. (23) >= eq. (22)",
            same_analytic.system_pfd
            >= independent_analytic.system_pfd - 1e-12,
            f"same {same_analytic.system_pfd:.6f} vs independent "
            f"{independent_analytic.system_pfd:.6f}",
        )
    )
    claims.append(
        Claim(
            "the gap equals E_Q[Var_T(xi(X,T))] (the eq. (23) excess term)",
            abs(
                (same_analytic.system_pfd - same_analytic.suite_dependence)
                - same_analytic.conditional_independence_pfd
            )
            <= 1e-9,
            f"suite-dependence term = {same_analytic.suite_dependence:.6f}",
        )
    )
    claims.append(
        Claim(
            "even with independent suites the system is worse than the "
            "naive product of channel pfds (Var(Theta_T) > 0, eq. (22))",
            independent_analytic.difficulty_covariance > 0,
            f"Var(Theta_T) = {independent_analytic.difficulty_covariance:.6f}",
        )
    )
    claims.append(
        Claim(
            "decomposition reconstructs the system pfd exactly",
            abs(same_analytic.reconstructed() - same_analytic.system_pfd)
            <= 1e-9
            and abs(
                independent_analytic.reconstructed()
                - independent_analytic.system_pfd
            )
            <= 1e-9,
        )
    )
    return ExperimentResult(
        experiment_id="e09",
        title="Marginal system pfd: common suite costs "
        "E_Q[Var_T(xi(X,T))] of reliability",
        paper_reference="eqs. (22), (23), section 3.4.1",
        columns=[
            "regime",
            "channel pfd",
            "system pfd",
            "E[T_A]E[T_B]",
            "Var(Theta_T)",
            "E_Q[Var_T xi]",
            "system pfd MC",
            "MC in CI",
        ],
        rows=rows,
        claims=claims,
        notes=(
            f"{n_replications} full-pipeline replications "
            "(Rao-Blackwellised over the demand draw)"
        ),
    )
