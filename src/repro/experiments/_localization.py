"""Shared model-building helpers for the coverage/localization c-family.

The three experiments compare testing regimes whose *diagnosis* is
coverage-limited: ``c1`` races SBFL-guided against random fixing on every
measured corpus target, ``c2`` sweeps synthetic coverage structure, and
``c3`` swaps a measured kill matrix for a density-matched synthetic one.
They share the measured-target setup (mutation fit → Bernoulli population,
mutant lines → component model, kill records → coverage matrix) and the
mapping from the run-wide engine configuration onto the workload's
``vectorized`` / ``n_jobs`` switches.
"""

from __future__ import annotations

from ..coverage.components import ComponentModel
from ..coverage.matrix import empirical_coverage
from ..coverage.workload import simulate_localized_growth
from ..demand import DemandSpace, uniform_profile
from ..errors import ModelError
# submodule imports (not the repro.mutation package) keep the import
# graph acyclic, as in m1
from ..mutation.bridge import measured_population
from ..mutation.estimators import fit_size_biased_multinomial
from ..mutation.measured import MEASURED, measured_detection_data
from .base import engine_kwargs

#: demand-space size shared with the m-family measured experiments
SPACE_SIZE = 120


def workload_engine_kwargs() -> dict:
    """The run-wide engine configuration as workload arguments.

    ``--engine scalar`` selects the workload's per-replication reference
    path (identical draws, so integer outcomes match the vectorized path
    exactly); the compiled backend has no localization kernels and is
    rejected loudly rather than silently substituted.
    """
    config = engine_kwargs()
    if config["engine"] == "compiled":
        raise ModelError(
            "the localization workload has no compiled kernels; run the "
            "c-family with --engine auto, batch, or scalar"
        )
    return {
        "vectorized": config["engine"] != "scalar",
        "n_jobs": config["n_jobs"],
    }


def measured_setup(
    target: str, n_components: int, presence_prob: float, seed: int
):
    """(population, profile, component model, coverage matrix) for a target.

    Fault ``f`` of the population is mutant ``f`` of the committed
    campaign, so the line-band component model and the kill-record
    coverage matrix line up with the population by construction.
    """
    data = measured_detection_data(target)
    fit = fit_size_biased_multinomial(data)
    space = DemandSpace(SPACE_SIZE)
    population = measured_population(fit, space, presence_prob, seed=seed)
    lines = [mutant["line"] for mutant in MEASURED[target]["mutants"]]
    model = ComponentModel.from_lines(
        population.universe, lines, n_components
    )
    matrix = empirical_coverage(target, n_components)
    return population, uniform_profile(space), model, matrix


def run_policy_pair(
    population, profile, matrix, model, seed: int, **workload_knobs
):
    """The (sbfl, random) result pair under common random numbers.

    Both runs share one counter-RNG key, so they see identical version
    draws and demand sequences; only the policy-pick lane differs — a
    paired comparison of the fix policies alone.
    """
    common = dict(workload_knobs)
    common.update(workload_engine_kwargs())
    sbfl = simulate_localized_growth(
        population, profile, matrix, model,
        policy="sbfl", rng=seed, **common,
    )
    random = simulate_localized_growth(
        population, profile, matrix, model,
        policy="random", rng=seed, **common,
    )
    return sbfl, random
