"""E4 — independent suites, forced design diversity: eq. (17).

Two methodologies, each version tested on its own independently generated
suite: ``P(both fail on x) = ζ_A(x) ζ_B(x)`` — conditional independence
again survives testing.
"""

from __future__ import annotations

import numpy as np

from ..core import IndependentSuites
from ..populations import FinitePopulation
from ..versions import Version
from .base import Claim, ExperimentResult
from .models import forced_design_scenario, tiny_enumerable_scenario
from .registry import register
from ._jointcheck import enumeration_claim, mc_rows_and_claims


def _tiny_population_b(tiny):
    """A second, different finite population over the tiny universe."""
    universe = tiny.universe
    versions = [
        Version.correct(universe),
        Version(universe, np.array([2])),
        Version(universe, np.array([0, 2])),
    ]
    return FinitePopulation(universe, versions, [0.5, 0.3, 0.2])


@register("e04")
def run(seed: int = 0, fast: bool = True) -> ExperimentResult:
    """Run E4 and return its result table and claims."""
    n_replications = 3000 if fast else 30000
    tiny = tiny_enumerable_scenario(seed)
    claims = [
        enumeration_claim(
            IndependentSuites(tiny.generator),
            tiny.population,
            _tiny_population_b(tiny),
            "tiny enumerable model, two populations",
        )
    ]
    scenario = forced_design_scenario(seed)
    regime = IndependentSuites(scenario.generator)
    rows, mc_claims, decomposition = mc_rows_and_claims(
        regime,
        scenario.population_a,
        scenario.population_b,
        n_replications=n_replications,
        n_suites=800 if fast else 4000,
        seed=seed + 400,
    )
    claims.extend(mc_claims)
    claims.append(
        Claim(
            "conditional independence preserved: joint = zeta_A zeta_B",
            decomposition.conditional_independence_holds,
            f"max |excess| = {float(np.abs(decomposition.excess).max()):.2e}",
        )
    )
    return ExperimentResult(
        experiment_id="e04",
        title="Independent suites, forced design: joint = zeta_A(x) zeta_B(x)",
        paper_reference="eq. (17), section 3.1.2",
        columns=[
            "demand",
            "joint analytic",
            "zeta_A zeta_B",
            "excess",
            "joint MC",
            "MC in CI",
        ],
        rows=rows,
        claims=claims,
        notes=f"{n_replications} full-pipeline replications per demand",
    )
