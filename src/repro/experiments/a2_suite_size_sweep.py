"""A2 — ablation: the suite-dependence penalty over testing effort.

The same-suite excess ``E_Q[Var_T(ξ(X,T))]`` is zero at zero effort (no
testing — nothing to share), zero in the exhaustive limit (every suite
removes everything), and positive in between: shared testing hurts most at
intermediate effort.  The sweep also tracks the *relative* penalty — excess
as a fraction of the independent-suite system pfd — which keeps growing
with effort, showing that dependence matters more, not less, for
well-tested systems.
"""

from __future__ import annotations

import numpy as np

from ..analytic import BernoulliExactEngine
from .base import Claim, ExperimentResult
from .models import standard_scenario
from .registry import register


@register("a2")
def run(
    seed: int = 0, fast: bool = True, presence_prob: float = 0.3
) -> ExperimentResult:
    """Run A2 and return its result table and claims.

    ``presence_prob`` is a sweepable knob: the per-fault presence
    probability of the underlying Bernoulli population, i.e. how buggy the
    development process is.  Sweeping it shows how the dependence penalty's
    peak moves with initial fault density.
    """
    scenario = standard_scenario(seed, presence_prob=presence_prob)
    engine = BernoulliExactEngine(scenario.universe, scenario.profile)
    population = scenario.population
    sizes = [0, 2, 5, 10, 20, 40, 80, 200, 500]

    rows = []
    excesses = []
    ratios = []
    for n in sizes:
        independent = engine.system_pfd_independent_suites(population, n)
        same = engine.system_pfd_same_suite(population, n)
        excess = same - independent
        excesses.append(excess)
        ratio = excess / independent if independent > 0 else 0.0
        ratios.append(ratio)
        rows.append([n, independent, same, excess, ratio])

    peak_index = int(np.argmax(excesses))
    claims = [
        Claim(
            "no excess without testing (n=0)",
            abs(excesses[0]) <= 1e-15,
        ),
        Claim(
            "the absolute excess vanishes again at large effort",
            excesses[-1] < excesses[peak_index] / 10.0,
            f"peak {excesses[peak_index]:.6f} at n={sizes[peak_index]}, "
            f"final {excesses[-1]:.2e}",
        ),
        Claim(
            "the excess peaks at intermediate effort",
            0 < peak_index < len(sizes) - 1,
            f"peak at n={sizes[peak_index]}",
        ),
        Claim(
            "excess is non-negative at every effort level (eq. (23))",
            all(excess >= -1e-15 for excess in excesses),
        ),
        Claim(
            "the relative penalty grows with effort: dependence dominates "
            "the failure probability of well-tested pairs",
            ratios[-1] > ratios[1],
            f"ratio at n={sizes[1]}: {ratios[1]:.3f}; at n={sizes[-1]}: "
            f"{ratios[-1]:.3f}",
        ),
    ]
    return ExperimentResult(
        experiment_id="a2",
        title="Same-suite dependence excess across testing effort",
        paper_reference="eqs. (22)-(23); section 3.4.1",
        columns=[
            "suite size",
            "system (indep)",
            "system (same)",
            "absolute excess",
            "relative excess",
        ],
        rows=rows,
        claims=claims,
        notes=(
            "all values exact (inclusion-exclusion closed forms); "
            f"presence prob {presence_prob}"
        ),
    )
