"""E10 — marginal system pfd under forced design diversity: eqs. (24)–(25).

With two methodologies, the difference between same-suite and
independent-suite testing is ``Σ_F Cov_T(ξ_A(x,T), ξ_B(x,T)) Q(x)`` — "a
sum of covariances each of which can be a positive or a negative number".
When it is positive (e.g. shared faults), independent suites win; the paper
notes the counterintuitive possibility that a negative sum makes the
*cheaper* same-suite testing deliver the more reliable system.  Both signs
are exhibited.
"""

from __future__ import annotations

from ..analytic import exact_marginal_system_pfd
from ..core import IndependentSuites, SameSuite, marginal_system_pfd
from ..mc import simulate_marginal_system_pfd
from ..rng import as_generator, spawn
from .base import Claim, ExperimentResult, engine_kwargs
from .models import forced_design_scenario
from .registry import register
from .e08_same_suite_covariance import _negative_covariance_construction


@register("e10")
def run(seed: int = 0, fast: bool = True) -> ExperimentResult:
    """Run E10 and return its result table and claims."""
    n_replications = 1500 if fast else 15000
    n_suites = 1500 if fast else 8000
    rng = as_generator(seed + 1000)
    rows = []
    claims = []

    # positive-covariance case: methodologies share faults
    scenario = forced_design_scenario(seed, n_shared=5, n_unique_each=5)
    analytic = {}
    for regime in (
        IndependentSuites(scenario.generator),
        SameSuite(scenario.generator),
    ):
        decomposition = marginal_system_pfd(
            regime,
            scenario.population_a,
            scenario.profile,
            scenario.population_b,
            n_suites=n_suites,
            rng=spawn(rng),
        )
        estimator = simulate_marginal_system_pfd(
            regime,
            scenario.population_a,
            scenario.profile,
            scenario.population_b,
            n_replications=n_replications,
            rng=spawn(rng),
            **engine_kwargs(),
        )
        analytic[regime.label] = decomposition
        ok = estimator.contains(decomposition.system_pfd, confidence=0.999)
        rows.append(
            [
                f"shared-fault model, {regime.label}",
                decomposition.system_pfd,
                decomposition.difficulty_covariance,
                decomposition.suite_dependence,
                estimator.mean,
                ok,
            ]
        )
        claims.append(
            Claim(
                f"MC confirms the {regime.label} system pfd (99.9% CI)",
                ok,
                f"analytic {decomposition.system_pfd:.6f}, MC "
                f"{estimator.mean:.6f}",
            )
        )
    claims.append(
        Claim(
            "positive summed covariance: independent suites beat the "
            "common suite (eq. (25) > eq. (24))",
            analytic["same suite"].system_pfd
            > analytic["independent suites"].system_pfd
            and analytic["same suite"].suite_dependence > 0,
            f"Sum Cov_T Q = {analytic['same suite'].suite_dependence:.6f}",
        )
    )

    # negative-covariance case: channel-alternating suite effectiveness
    (
        _space,
        neg_profile,
        neg_pop_a,
        neg_pop_b,
        neg_generator,
    ) = _negative_covariance_construction()
    neg_same = marginal_system_pfd(
        SameSuite(neg_generator), neg_pop_a, neg_profile, neg_pop_b
    )
    neg_independent = marginal_system_pfd(
        IndependentSuites(neg_generator), neg_pop_a, neg_profile, neg_pop_b
    )
    truth_same = exact_marginal_system_pfd(
        SameSuite(neg_generator), neg_pop_a, neg_profile, neg_pop_b
    )
    rows.append(
        [
            "alternating model, same suite",
            neg_same.system_pfd,
            neg_same.difficulty_covariance,
            neg_same.suite_dependence,
            truth_same,
            abs(neg_same.system_pfd - truth_same) <= 1e-12,
        ]
    )
    rows.append(
        [
            "alternating model, independent suites",
            neg_independent.system_pfd,
            neg_independent.difficulty_covariance,
            neg_independent.suite_dependence,
            exact_marginal_system_pfd(
                IndependentSuites(neg_generator),
                neg_pop_a,
                neg_profile,
                neg_pop_b,
            ),
            True,
        ]
    )
    claims.append(
        Claim(
            "negative summed covariance exists: the cheaper same-suite "
            "regime delivers the more reliable system (paper's "
            "counterintuitive case)",
            neg_same.suite_dependence < 0
            and neg_same.system_pfd < neg_independent.system_pfd,
            f"Sum Cov_T Q = {neg_same.suite_dependence:.6f}; same "
            f"{neg_same.system_pfd:.6f} < independent "
            f"{neg_independent.system_pfd:.6f}",
        )
    )
    claims.append(
        Claim(
            "analytic same-suite pfd matches brute-force enumeration",
            abs(neg_same.system_pfd - truth_same) <= 1e-12,
        )
    )
    return ExperimentResult(
        experiment_id="e10",
        title="Marginal forced diversity: sign of Sum Cov_T(xi_A,xi_B)Q "
        "decides the better testing regime",
        paper_reference="eqs. (24), (25), section 3.4.2",
        columns=[
            "case",
            "system pfd",
            "Cov(Theta_TA,Theta_TB)",
            "Sum Cov_T Q",
            "MC / enumeration",
            "validated",
        ],
        rows=rows,
        claims=claims,
        notes=(
            "positive case: 5 shared + 5 unique faults per methodology; "
            "negative case: explicit alternating-effectiveness suite measure"
        ),
    )
