"""Plain-text reporting for experiment results.

The paper contains no numeric tables, so the report format is ours: one
aligned table per experiment with the analytic prediction, the independent
validation (enumeration / Monte Carlo), and the claim verdicts.
"""

from __future__ import annotations

from typing import List, Sequence

from .base import ExperimentResult

__all__ = ["format_result", "format_summary"]


def _format_cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) < 1e-3 or abs(value) >= 1e5:
            return f"{value:.4e}"
        return f"{value:.6f}"
    return str(value)


def _format_table(columns: Sequence[str], rows: List[Sequence[object]]) -> str:
    header = [str(column) for column in columns]
    body = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(column) for column in header]
    for row in body:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def _adaptive_totals(extra: dict) -> tuple:
    """``(replications, converged, total)`` over nested adaptive payloads."""
    from ..adaptive.controller import iter_adaptive_runs

    replications = 0
    converged = 0
    total = 0
    for run in iter_adaptive_runs(extra):
        replications += int(run["replications"])
        metrics = run["metrics"].values()
        total += len(run["metrics"])
        converged += sum(bool(metric["converged"]) for metric in metrics)
    return replications, converged, total


def format_result(result: ExperimentResult) -> str:
    """Render one experiment as a plain-text block."""
    lines = []
    status = "PASS" if result.passed else "FAIL"
    lines.append(f"[{result.experiment_id.upper()}] {result.title}  ({status})")
    lines.append(f"paper: {result.paper_reference}")
    if result.notes:
        lines.append(f"notes: {result.notes}")
    adaptive = result.extra.get("adaptive") if result.extra else None
    if isinstance(adaptive, dict):
        replications, converged, total = _adaptive_totals(adaptive)
        lines.append(
            f"adaptive: {replications} replications, {converged}/{total} "
            "metrics converged to target"
        )
    timings = result.extra.get("timings") if result.extra else None
    if isinstance(timings, dict):
        phases = timings.get("phases", {})
        parts = [
            f"{name} {float(seconds):.3f}s"
            for name, seconds in phases.items()
            if isinstance(seconds, (int, float))
        ]
        profile = f"profile: {float(timings.get('total_seconds', 0.0)):.3f}s"
        if parts:
            profile += f" ({', '.join(parts)})"
        chunks = timings.get("chunks", 0)
        if chunks:
            profile += f", {chunks} chunk(s)"
        engine = timings.get("engine")
        if engine:
            profile += f", engine={engine}"
        lines.append(profile)
    lines.append("")
    lines.append(_format_table(result.columns, result.rows))
    lines.append("")
    for claim in result.claims:
        mark = "ok " if claim.holds else "FAIL"
        detail = f"  [{claim.detail}]" if claim.detail else ""
        lines.append(f"  {mark} {claim.description}{detail}")
    return "\n".join(lines)


def format_summary(results: Sequence[ExperimentResult]) -> str:
    """One-line-per-experiment overview."""
    lines = ["experiment  claims  status  title"]
    lines.append("-" * 72)
    for result in results:
        held = sum(claim.holds for claim in result.claims)
        total = len(result.claims)
        status = "PASS" if result.passed else "FAIL"
        lines.append(
            f"{result.experiment_id:<11} {held}/{total:<6} {status:<7} "
            f"{result.title}"
        )
    return "\n".join(lines)
