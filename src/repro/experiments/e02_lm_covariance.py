"""E2 — the Littlewood–Miller covariance result (paper eqs. (9)–(10)).

Sweeps the fault overlap between two methodologies from complete (identical
measures) through partial to none-with-complementary-placement, showing the
difficulty covariance move from positive to negative, and that a negative
covariance makes the two-methodology pair *more* reliable than the
independence prediction — the LM headline.
"""

from __future__ import annotations

from ..core import LMModel
from ..mc.estimator import MeanEstimator
from ..rng import as_generator, spawn_many
from .base import Claim, ExperimentResult
from .models import forced_design_scenario
from .registry import register


def _marginal_joint_mc(scenario, n_replications, rng) -> MeanEstimator:
    estimator = MeanEstimator()
    for replication in spawn_many(as_generator(rng), n_replications):
        stream_a, stream_b = spawn_many(replication, 2)
        version_a = scenario.population_a.sample(stream_a)
        version_b = scenario.population_b.sample(stream_b)
        joint = version_a.failure_mask & version_b.failure_mask
        estimator.add(float(scenario.profile.probabilities[joint].sum()))
    return estimator


@register("e02")
def run(seed: int = 0, fast: bool = True) -> ExperimentResult:
    """Run E2 and return its result table and claims."""
    n_replications = 2000 if fast else 20000
    cases = [
        ("full overlap", dict(n_shared=8, n_unique_each=0)),
        ("half overlap", dict(n_shared=4, n_unique_each=4)),
        ("no overlap, scattered", dict(n_shared=0, n_unique_each=8)),
        (
            "no overlap, complementary",
            dict(n_shared=0, n_unique_each=8, disjoint_unique_regions=True,
                 usage_zipf_exponent=1.2),
        ),
    ]
    rows = []
    claims = []
    rng = as_generator(seed + 200)
    covariances = {}
    for label, kwargs in cases:
        scenario = forced_design_scenario(seed=seed, **kwargs)
        model = LMModel.from_difficulties(
            scenario.population_a.difficulty(),
            scenario.population_b.difficulty(),
            scenario.profile,
        )
        analytic = model.prob_both_fail()
        covariance = model.covariance()
        covariances[label] = covariance
        estimator = _marginal_joint_mc(scenario, n_replications, rng)
        rows.append(
            [
                label,
                model.prob_fail_a(),
                model.prob_fail_b(),
                analytic,
                model.independence_prediction(),
                covariance,
                estimator.mean,
                estimator.contains(analytic, confidence=0.999),
            ]
        )
        claims.append(
            Claim(
                f"[{label}] MC confirms E[Theta_A Theta_B] (99.9% CI)",
                estimator.contains(analytic, confidence=0.999),
                f"MC {estimator.mean:.6f} vs analytic {analytic:.6f}",
            )
        )
    claims.append(
        Claim(
            "shared faults induce positive difficulty covariance",
            covariances["full overlap"] > 0,
            f"Cov = {covariances['full overlap']:.6f}",
        )
    )
    claims.append(
        Claim(
            "covariance shrinks as methodology overlap is removed",
            covariances["full overlap"] > covariances["half overlap"]
            > covariances["no overlap, scattered"],
            f"{covariances['full overlap']:.5f} > "
            f"{covariances['half overlap']:.5f} > "
            f"{covariances['no overlap, scattered']:.5f}",
        )
    )
    claims.append(
        Claim(
            "complementary placement achieves negative covariance "
            "(better than independence)",
            covariances["no overlap, complementary"] < 0,
            f"Cov = {covariances['no overlap, complementary']:.6f}",
        )
    )
    return ExperimentResult(
        experiment_id="e02",
        title="Littlewood-Miller: covariance decides forced-diversity payoff",
        paper_reference="eqs. (8), (9), (10)",
        columns=[
            "overlap",
            "E[Theta_A]",
            "E[Theta_B]",
            "P(both fail) analytic",
            "independence",
            "Cov(Theta_A,Theta_B)",
            "P(both fail) MC",
            "MC in CI",
        ],
        rows=rows,
        claims=claims,
        notes=f"{n_replications} version-pair replications per case",
    )
