"""E8 — same suite, forced design diversity: eq. (21).

With different development methodologies sharing one test suite,

    P(both fail on x) = ζ_A(x) ζ_B(x) + Cov_T(ξ_A(x,T), ξ_B(x,T))

and, unlike the same-population variance, the covariance term *can be
negative* — the paper notes it is "unclear how realistic in practice" that
is.  We exhibit both signs: shared faults give a positive covariance;
an explicitly constructed suite measure that alternates between
channel-specific effectiveness gives a negative one.
"""

from __future__ import annotations

import numpy as np

from ..analytic import BernoulliExactEngine, exact_joint_per_demand
from ..core import SameSuite, joint_failure_probability
from ..demand import DemandSpace, uniform_profile
from ..faults import FaultUniverse
from ..populations import BernoulliFaultPopulation
from ..testing import EnumerableSuiteGenerator, TestSuite
from .base import Claim, ExperimentResult
from .models import forced_design_scenario, tiny_enumerable_scenario
from .registry import register
from ._jointcheck import enumeration_claim, mc_rows_and_claims


def _negative_covariance_construction():
    """A model where Cov_T(xi_A, xi_B) < 0 on a demand.

    Methodology A only ever has fault 0 (region {0, 1}); methodology B only
    fault 1 (region {2, 3}).  The suite measure alternates between a suite
    hitting A's region only and one hitting B's region only.  On demand 4
    (covered by both channels' second faults) the suite that fixes A leaves
    B broken and vice versa: effectiveness anti-correlates across channels.
    """
    space = DemandSpace(6)
    profile = uniform_profile(space)
    universe = FaultUniverse.from_regions(
        space, [[0, 1, 4], [2, 3, 4], [5]]
    )
    population_a = BernoulliFaultPopulation(universe, [0.9, 0.0, 0.2])
    population_b = BernoulliFaultPopulation(universe, [0.0, 0.9, 0.2])
    suites = [
        TestSuite.of(space, [0]),  # fixes A's fault 0, misses B's fault 1
        TestSuite.of(space, [2]),  # fixes B's fault 1, misses A's fault 0
    ]
    generator = EnumerableSuiteGenerator(space, suites, [0.5, 0.5])
    return space, profile, population_a, population_b, generator


@register("e08")
def run(seed: int = 0, fast: bool = True) -> ExperimentResult:
    """Run E8 and return its result table and claims."""
    n_replications = 3000 if fast else 30000
    tiny = tiny_enumerable_scenario(seed)
    from .e04_indep_suites_forced_design import _tiny_population_b

    claims = [
        enumeration_claim(
            SameSuite(tiny.generator),
            tiny.population,
            _tiny_population_b(tiny),
            "tiny enumerable model, two populations",
        )
    ]
    scenario = forced_design_scenario(seed, n_shared=5, n_unique_each=5)
    regime = SameSuite(scenario.generator)
    rows, mc_claims, decomposition = mc_rows_and_claims(
        regime,
        scenario.population_a,
        scenario.population_b,
        n_replications=n_replications,
        n_suites=1500 if fast else 8000,
        seed=seed + 800,
    )
    claims.extend(mc_claims)

    engine = BernoulliExactEngine(scenario.universe, scenario.profile)
    exact_cov = engine.xi_covariance(
        scenario.population_a,
        scenario.population_b,
        scenario.generator.size,
    )
    claims.append(
        Claim(
            "shared faults make the suite covariance positive somewhere",
            float(exact_cov.max()) > 1e-6,
            f"max Cov_T(xi_A, xi_B) = {float(exact_cov.max()):.6f}",
        )
    )

    # negative-covariance construction, validated by enumeration
    (
        neg_space,
        neg_profile,
        neg_pop_a,
        neg_pop_b,
        neg_generator,
    ) = _negative_covariance_construction()
    neg_regime = SameSuite(neg_generator)
    neg_dec = joint_failure_probability(neg_regime, neg_pop_a, neg_pop_b)
    neg_truth = exact_joint_per_demand(neg_regime, neg_pop_a, neg_pop_b)
    demand = 4
    claims.append(
        Claim(
            "a suite measure with channel-alternating effectiveness yields "
            "Cov_T(xi_A, xi_B) < 0 (same-suite testing beats conditional "
            "independence there)",
            float(neg_dec.excess[demand]) < -1e-6,
            f"Cov on demand {demand} = {float(neg_dec.excess[demand]):.6f}",
        )
    )
    claims.append(
        Claim(
            "negative-covariance construction matches brute-force "
            "enumeration",
            float(np.abs(neg_dec.joint - neg_truth).max()) <= 1e-12,
        )
    )
    rows.append(
        [
            f"neg-construction d{demand}",
            float(neg_dec.joint[demand]),
            float(neg_dec.independence_part[demand]),
            float(neg_dec.excess[demand]),
            float(neg_truth[demand]),
            True,
        ]
    )
    return ExperimentResult(
        experiment_id="e08",
        title="Same suite, forced design: joint = zeta_A zeta_B + "
        "Cov_T(xi_A, xi_B), either sign",
        paper_reference="eq. (21), section 3.3",
        columns=[
            "demand",
            "joint analytic",
            "zeta_A zeta_B",
            "Cov_T excess",
            "joint MC / enum",
            "validated",
        ],
        rows=rows,
        claims=claims,
        notes=(
            "positive covariance from 5 shared faults; negative covariance "
            "from an explicit two-suite measure with channel-alternating "
            "effectiveness"
        ),
    )
