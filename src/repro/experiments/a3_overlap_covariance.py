"""A3 — ablation: methodology fault overlap drives every covariance.

Sweeping the number of faults shared by methodologies A and B (at constant
total fault count per methodology) moves both the LM difficulty covariance
``Cov(Θ_A, Θ_B)`` and the same-suite testing covariance
``Σ Cov_T(ξ_A, ξ_B) Q(x)`` from (near) zero to strongly positive — the
mechanism behind "using the same test suite means introducing a 'channel'
of dependence".
"""

from __future__ import annotations

import numpy as np

from ..analytic import BernoulliExactEngine
from ..core import LMModel
from .base import Claim, ExperimentResult
from .models import forced_design_scenario
from .registry import register


@register("a3")
def run(seed: int = 0, fast: bool = True) -> ExperimentResult:
    """Run A3 and return its result table and claims."""
    total_per_methodology = 8
    overlaps = [0, 2, 4, 6, 8]
    suite_size = 30
    rows = []
    difficulty_covs = []
    testing_covs = []
    for n_shared in overlaps:
        scenario = forced_design_scenario(
            seed=seed,
            n_shared=n_shared,
            n_unique_each=total_per_methodology - n_shared,
            suite_size=suite_size,
        )
        model = LMModel.from_difficulties(
            scenario.population_a.difficulty(),
            scenario.population_b.difficulty(),
            scenario.profile,
        )
        engine = BernoulliExactEngine(scenario.universe, scenario.profile)
        testing_cov = scenario.profile.expectation(
            engine.xi_covariance(
                scenario.population_a, scenario.population_b, suite_size
            )
        )
        difficulty_covs.append(model.covariance())
        testing_covs.append(testing_cov)
        rows.append(
            [
                n_shared,
                model.prob_fail_a(),
                model.covariance(),
                model.prob_both_fail(),
                testing_cov,
            ]
        )
    claims = [
        Claim(
            "difficulty covariance increases with fault overlap "
            "(endpoints)",
            difficulty_covs[-1] > difficulty_covs[0] + 1e-9,
            f"{difficulty_covs[0]:.6f} -> {difficulty_covs[-1]:.6f}",
        ),
        Claim(
            "same-suite testing covariance increases with fault overlap "
            "(endpoints)",
            testing_covs[-1] > testing_covs[0] + 1e-9,
            f"{testing_covs[0]:.6f} -> {testing_covs[-1]:.6f}",
        ),
        Claim(
            "full overlap recovers the same-population (EL) behaviour: "
            "difficulty covariance equals Var(Theta)",
            abs(
                difficulty_covs[-1]
                - LMModel.from_difficulties(
                    forced_design_scenario(
                        seed=seed, n_shared=8, n_unique_each=0
                    ).population_a.difficulty(),
                    forced_design_scenario(
                        seed=seed, n_shared=8, n_unique_each=0
                    ).population_a.difficulty(),
                    forced_design_scenario(
                        seed=seed, n_shared=8, n_unique_each=0
                    ).profile,
                ).covariance()
            )
            <= 1e-12,
        ),
        Claim(
            "zero-overlap covariances are negligible next to full-overlap "
            "ones (scattered unique faults carry no systematic dependence)",
            abs(difficulty_covs[0]) < 0.2 * abs(difficulty_covs[-1])
            and abs(testing_covs[0]) < 0.2 * abs(testing_covs[-1]),
            f"|{difficulty_covs[0]:.6f}| << |{difficulty_covs[-1]:.6f}|; "
            f"|{testing_covs[0]:.6f}| << |{testing_covs[-1]:.6f}|",
        ),
    ]
    return ExperimentResult(
        experiment_id="a3",
        title="Fault overlap between methodologies vs difficulty and "
        "testing covariances",
        paper_reference="eqs. (9), (21), (25)",
        columns=[
            "shared faults",
            "E[Theta_A]",
            "Cov(Theta_A,Theta_B)",
            "P(both fail) untested",
            "Sum Cov_T(xi_A,xi_B) Q",
        ],
        rows=rows,
        claims=claims,
        notes=(
            f"8 faults per methodology, suite size {suite_size}; overlap "
            "varies from disjoint to identical fault sets"
        ),
    )
