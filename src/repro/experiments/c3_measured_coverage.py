"""C3 — measured kill-record coverage versus a density-matched synthetic.

Does the *structure* of real coverage matter, or only its density?  For
one measured target, the localized-growth race (SBFL vs random fixing)
runs twice on the same population and component model: once with the
empirical tests × components matrix from the committed mutation
campaign's kill records, once with a synthetic matrix of the same shape
whose cell probability is corrected so the realised densities match.
SBFL guidance survives the swap — it beats random fixing under both
matrices — and the measured matrix's fix effort stays close to the
synthetic stand-in's, validating synthetic coverage as a sweep proxy
(``c2``) while the direction of the residual gap is the target's own
coverage-structure signature.
"""

from __future__ import annotations

from ..coverage.matrix import synthetic_coverage
from ._localization import measured_setup, run_policy_pair
from .base import Claim, ExperimentResult
from .registry import register


@register("c3")
def run(
    seed: int = 0,
    fast: bool = True,
    target: str = "triangle",
    n_components: int = 5,
    rounds: int = 10,
    target_fraction: float = 0.5,
    presence_prob: float = 0.35,
    metric: str = "ochiai",
) -> ExperimentResult:
    """Run C3 and return its result table and claims."""
    n_replications = 200 if fast else 800
    population, profile, model, empirical = measured_setup(
        target, n_components, presence_prob, seed
    )
    # the generator guarantees one focus cell per test, so its realised
    # density is cell_prob + (1 - cell_prob)/K; invert that to match the
    # empirical density
    cell_prob = max(
        0.0,
        (empirical.density - 1.0 / n_components)
        / (1.0 - 1.0 / n_components),
    )
    synthetic = synthetic_coverage(
        empirical.n_tests, n_components, density=cell_prob, rng=seed
    )

    rows = []
    results = {}
    for kind, matrix in (("empirical", empirical), ("synthetic", synthetic)):
        sbfl, random = run_policy_pair(
            population,
            profile,
            matrix,
            model,
            seed,
            metric=metric,
            rounds=rounds,
            target_fraction=target_fraction,
            n_replications=n_replications,
        )
        results[kind] = {"sbfl": sbfl, "random": random}
        for policy, result in (("sbfl", sbfl), ("random", random)):
            rows.append(
                [
                    kind,
                    policy,
                    matrix.density,
                    result.initial_pfd,
                    result.final_pfd,
                    result.mean_rounds_to_target,
                    result.reached_fraction,
                ]
            )

    density_gap = abs(empirical.density - synthetic.density)
    empirical_effort = results["empirical"]["sbfl"].mean_rounds_to_target
    synthetic_effort = results["synthetic"]["sbfl"].mean_rounds_to_target
    relative_gap = abs(empirical_effort - synthetic_effort) / max(
        empirical_effort, synthetic_effort
    )
    claims = [
        Claim(
            "the synthetic matrix is density-matched to the measured one",
            density_gap < 0.05,
            f"empirical {empirical.density:.3f} vs synthetic "
            f"{synthetic.density:.3f}",
        ),
        Claim(
            "SBFL guidance beats random fixing under the measured "
            "kill-record coverage",
            results["empirical"]["sbfl"].mean_rounds_to_target
            < results["empirical"]["random"].mean_rounds_to_target,
        ),
        Claim(
            "SBFL guidance also beats random fixing under the "
            "density-matched synthetic coverage",
            results["synthetic"]["sbfl"].mean_rounds_to_target
            < results["synthetic"]["random"].mean_rounds_to_target,
        ),
        Claim(
            "at matched density, the synthetic stand-in's guided fix "
            "effort lands within 25% of the measured matrix's",
            relative_gap < 0.25,
            f"empirical {empirical_effort:.3f} vs synthetic "
            f"{synthetic_effort:.3f} ({relative_gap:.1%} apart)",
        ),
    ]
    return ExperimentResult(
        experiment_id="c3",
        title="Measured vs density-matched synthetic coverage",
        paper_reference=(
            "empirical grounding of coverage structure (mutation "
            "campaigns, arXiv:2406.04360) against the synthetic sweep "
            "models of c2"
        ),
        columns=[
            "matrix",
            "policy",
            "density",
            "initial pfd",
            "final pfd",
            "fix effort",
            "reached fraction",
        ],
        rows=rows,
        claims=claims,
        notes=(
            f"target {target!r}: {len(population.universe)} mutants x "
            f"{empirical.n_tests} tests, {n_components} line-band "
            f"components; {rounds} rounds to reach "
            f"{target_fraction:.0%} of initial pfd, metric {metric!r}, "
            f"{n_replications} replications, presence prob "
            f"{presence_prob}; same population and components under both "
            "matrices"
        ),
        extra={
            "empirical_density": empirical.density,
            "synthetic_density": synthetic.density,
        },
    )
