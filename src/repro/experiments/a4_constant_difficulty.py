"""A4 — special cases where the penalties vanish.

Two constructions the paper flags as the (unrealistic) boundary cases:

* ``θ(x) = const`` — eq. (7) holds with equality: independently developed
  versions fail *unconditionally* independently.  Built from disjoint
  equal-size regions tiling the demand space with equal presence
  probability.
* ``ξ(x, t) = const over t`` — the same-suite excess of eq. (20) vanishes:
  "for the independence of version failures to remain true after testing,
  it would be sufficient to have a constant efficiency for each test
  suite".  Built from a degenerate suite measure (a single suite has zero
  variance trivially).
"""

from __future__ import annotations

import numpy as np

from ..core import ELModel, SameSuite, joint_failure_probability
from ..demand import DemandSpace, uniform_profile
from ..faults import FaultUniverse
from ..populations import BernoulliFaultPopulation
from ..testing import EnumerableSuiteGenerator, TestSuite
from .base import Claim, ExperimentResult
from .registry import register


@register("a4")
def run(seed: int = 0, fast: bool = True) -> ExperimentResult:
    """Run A4 and return its result table and claims."""
    space = DemandSpace(60)
    profile = uniform_profile(space)
    # 12 disjoint contiguous regions of 5 demands tile all 60 demands:
    # every demand is covered by exactly one fault, so theta is exactly
    # constant, and each region lies wholly inside one half of the space
    # (which lets the contrast construction below build suites of genuinely
    # different effectiveness).
    universe = FaultUniverse.from_regions(
        space, [list(range(5 * k, 5 * k + 5)) for k in range(12)]
    )
    population = BernoulliFaultPopulation.uniform(universe, 0.3)
    model = ELModel.from_population(population, profile)

    rows = [
        [
            "constant theta",
            model.prob_fail(),
            model.variance(),
            model.prob_both_fail(),
            model.independence_prediction(),
        ]
    ]
    claims = [
        Claim(
            "a disjoint tiling with equal presence probabilities gives "
            "exactly constant difficulty",
            model.is_constant_difficulty(),
            f"theta = {model.prob_fail():.6f} everywhere",
        ),
        Claim(
            "eq. (7) equality branch: P(both fail) equals the independence "
            "prediction when theta is constant",
            abs(model.prob_both_fail() - model.independence_prediction())
            <= 1e-15,
        ),
    ]

    # degenerate suite measure: one suite with probability 1
    single_suite = TestSuite.of(space, list(range(0, 30)))
    generator = EnumerableSuiteGenerator(space, [single_suite], [1.0])
    decomposition = joint_failure_probability(
        SameSuite(generator), population
    )
    rows.append(
        [
            "degenerate suite measure",
            float(decomposition.zeta_a.mean()),
            float(np.abs(decomposition.excess).max()),
            float(profile.expectation(decomposition.joint)),
            float(profile.expectation(decomposition.independence_part)),
        ]
    )
    claims.append(
        Claim(
            "constant xi over the suite measure removes the same-suite "
            "excess entirely (Var_T = 0)",
            decomposition.conditional_independence_holds,
            f"max |excess| = {float(np.abs(decomposition.excess).max()):.2e}",
        )
    )
    # contrast: a non-degenerate measure on the same model has excess
    varied = EnumerableSuiteGenerator(
        space,
        [TestSuite.of(space, list(range(0, 30))),
         TestSuite.of(space, list(range(30, 60)))],
        [0.5, 0.5],
    )
    contrast = joint_failure_probability(SameSuite(varied), population)
    claims.append(
        Claim(
            "a varied suite measure on the same model re-introduces the "
            "excess (the special case is fragile, as the paper argues)",
            float(contrast.excess.max()) > 1e-6,
            f"max excess = {float(contrast.excess.max()):.6f}",
        )
    )
    return ExperimentResult(
        experiment_id="a4",
        title="Vanishing-penalty special cases: constant theta, constant xi",
        paper_reference="eq. (7) equality; section 3.3 'constant "
        "efficiency' remark",
        columns=[
            "construction",
            "mean level",
            "variance/excess",
            "P(both fail)",
            "independence",
        ],
        rows=rows,
        claims=claims,
        notes="60 demands tiled by 12 disjoint 5-demand fault regions",
    )
