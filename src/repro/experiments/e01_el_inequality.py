"""E1 — the Eckhardt–Lee inequality (paper eqs. (6)–(7)).

Checks, for several difficulty-function shapes, that the probability of
coincident failure of two independently developed versions equals
``E[Θ²] = E[Θ]² + Var(Θ)`` and therefore exceeds the independence
prediction whenever the difficulty varies — with a full-pipeline
Monte-Carlo estimate confirming the analytic value.
"""

from __future__ import annotations

import numpy as np

from ..core import ELModel
from ..demand import DemandSpace, uniform_profile
from ..faults import clustered_universe, disjoint_universe, uniform_random_universe
from ..mc.estimator import MeanEstimator
from ..populations import BernoulliFaultPopulation
from ..rng import as_generator, spawn, spawn_many
from .base import Claim, ExperimentResult, require_batch_engine
from .registry import register


def _marginal_joint_mc(population, profile, n_replications, rng) -> MeanEstimator:
    """Rao-Blackwellised MC of P(both untested versions fail on X).

    Vectorized through the batch engine's kernels: both channels'
    replication blocks are fault matrices, the joint failure mask is one
    boolean conjunction, and the usage integration is a matrix-vector
    product against ``Q``.
    """
    stream_a, stream_b = spawn_many(as_generator(rng), 2)
    universe = population.universe
    joint = universe.failure_matrix(
        population.sample_fault_matrix(n_replications, stream_a)
    ) & universe.failure_matrix(
        population.sample_fault_matrix(n_replications, stream_b)
    )
    estimator = MeanEstimator()
    estimator.add_many(joint @ profile.probabilities)
    return estimator


@register("e01")
def run(
    seed: int = 0, fast: bool = True, precision=None
) -> ExperimentResult:
    """Run E1 and return its result table and claims.

    ``precision`` (a :class:`repro.adaptive.PrecisionTarget` or a mapping
    of its fields — the sweepable knob form) switches the Monte-Carlo
    confirmation from the fixed replication count to the adaptive
    precision engine: each shape's joint-pfd estimate escalates until the
    target half-width is met (budget-capped at the full-mode count), with
    variance reduction per the target's ``vr`` knob.  The convergence
    report lands in ``result.extra["adaptive"]``.
    """
    from ..adaptive import PrecisionTarget

    target = PrecisionTarget.coerce(precision)
    if target is not None:
        require_batch_engine("precision-targeted e01")
    n_replications = 2000 if fast else 20000
    space = DemandSpace(80)
    profile = uniform_profile(space)
    shapes = {
        "constant (disjoint cover)": disjoint_universe(
            space, n_faults=16, region_size=5, rng=seed
        ),
        "scattered": uniform_random_universe(
            space, n_faults=16, region_size=5, rng=seed + 1
        ),
        "clustered (high variance)": clustered_universe(
            space, n_faults=16, region_size=5, concentration=8.0, rng=seed + 2
        ),
    }
    rows = []
    claims = []
    extra = {}
    rng = as_generator(seed + 100)
    for label, universe in shapes.items():
        population = BernoulliFaultPopulation.uniform(universe, 0.25)
        model = ELModel.from_population(population, profile)
        analytic = model.prob_both_fail()
        independence = model.independence_prediction()
        if target is not None:
            from ..adaptive import adaptive_untested_joint_pfd

            report = adaptive_untested_joint_pfd(
                population,
                profile,
                target,
                rng=spawn(rng),
                default_budget=20000,
            )
            estimator = report.only.as_estimator()
            extra[label] = report.to_payload()
        else:
            estimator = _marginal_joint_mc(
                population, profile, n_replications, rng
            )
        rows.append(
            [
                label,
                model.prob_fail(),
                analytic,
                independence,
                model.variance(),
                estimator.mean,
                estimator.contains(analytic, confidence=0.999),
            ]
        )
        claims.append(
            Claim(
                f"[{label}] P(both fail) >= independence prediction",
                analytic >= independence - 1e-15,
                f"{analytic:.6f} vs {independence:.6f}",
            )
        )
        claims.append(
            Claim(
                f"[{label}] MC confirms E[Theta^2] (99.9% CI)",
                estimator.contains(analytic, confidence=0.999),
                f"MC {estimator.mean:.6f} +/- {2.58 * estimator.std_error():.6f}",
            )
        )

    constant_model = ELModel.from_population(
        BernoulliFaultPopulation.uniform(shapes["constant (disjoint cover)"], 0.25),
        profile,
    )
    # disjoint equal-size regions covering each demand at most once do not
    # guarantee a constant theta unless every demand is covered; check the
    # equality branch explicitly on the exactly-constant sub-case instead.
    covered = shapes["constant (disjoint cover)"].coverage_counts() > 0
    clustered_model = ELModel.from_population(
        BernoulliFaultPopulation.uniform(shapes["clustered (high variance)"], 0.25),
        profile,
    )
    claims.append(
        Claim(
            "variance term grows with difficulty clustering",
            clustered_model.variance() > constant_model.variance(),
            f"clustered {clustered_model.variance():.6f} vs "
            f"disjoint {constant_model.variance():.6f}",
        )
    )
    return ExperimentResult(
        experiment_id="e01",
        title="Eckhardt-Lee inequality: E[Theta^2] = E[Theta]^2 + Var(Theta)",
        paper_reference="eqs. (4), (6), (7)",
        columns=[
            "difficulty shape",
            "E[Theta]",
            "P(both fail) analytic",
            "independence",
            "Var(Theta)",
            "P(both fail) MC",
            "MC in CI",
        ],
        rows=rows,
        claims=claims,
        notes=(
            "80 demands, 16 faults, presence prob 0.25, "
            + (
                "adaptive precision-targeted replications "
                "(see extra['adaptive'])"
                if target is not None
                else f"{n_replications} version-pair replications"
            )
            + f"; {int(np.count_nonzero(covered))}/80 demands covered in "
            "the disjoint shape"
        ),
        extra={"adaptive": extra} if extra else {},
    )
