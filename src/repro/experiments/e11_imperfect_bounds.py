"""E11 — imperfect oracle and imperfect fixing: §4.1 bounds.

"The results from the previous section can be used as lower bounds on the
probability of system failure.  Equally, the scores will be no worse than
the scores of the untested version which thus forms a natural upper bound."
Swept over detection and fix probabilities, both the version-level and the
system-level pfds must stay inside the [perfect-testing, untested] envelope,
and should degrade monotonically as the testing process gets worse.

Catalog entry: ``e11`` in docs/experiments.md.  The imperfect-testing
measurements run on the batch engine's §4.1 binomial-detection kernel
(:mod:`repro.mc.batch`) under the CLI's ``--engine auto``/``batch``.
"""

from __future__ import annotations

from ..core import SameSuite
from ..core.bounds import imperfect_system_bounds, imperfect_testing_bounds
from ..testing import ImperfectFixing, ImperfectOracle
from ..rng import as_generator, spawn
from .base import Claim, ExperimentResult, engine_kwargs
from .models import standard_scenario
from .registry import register


@register("e11")
def run(seed: int = 0, fast: bool = True) -> ExperimentResult:
    """Run E11 and return its result table and claims."""
    n_replications = 300 if fast else 3000
    scenario = standard_scenario(seed)
    rng = as_generator(seed + 1100)
    regime = SameSuite(scenario.generator)

    grid = [
        (1.0, 1.0),
        (0.75, 1.0),
        (0.5, 1.0),
        (1.0, 0.5),
        (0.5, 0.5),
        (0.25, 0.25),
        (0.0, 1.0),
    ]
    rows = []
    claims = []
    version_means = []
    for detection, fix in grid:
        oracle = ImperfectOracle(detection)
        fixing = ImperfectFixing(fix)
        version_report = imperfect_testing_bounds(
            scenario.population,
            scenario.generator,
            scenario.profile,
            oracle,
            fixing,
            n_replications=n_replications,
            rng=spawn(rng),
            **engine_kwargs(),
        )
        system_report = imperfect_system_bounds(
            regime,
            scenario.population,
            scenario.profile,
            oracle,
            fixing,
            n_replications=n_replications,
            rng=spawn(rng),
            **engine_kwargs(),
        )
        version_means.append(version_report.measured)
        rows.append(
            [
                f"d={detection}, f={fix}",
                version_report.lower,
                version_report.measured,
                version_report.upper,
                system_report.lower,
                system_report.measured,
                system_report.upper,
            ]
        )
        slack = 0.01 if fast else 0.003
        claims.append(
            Claim(
                f"version pfd within [perfect, untested] at d={detection}, "
                f"f={fix}",
                version_report.holds(slack=slack),
                f"{version_report.lower:.5f} <= "
                f"{version_report.measured:.5f} <= "
                f"{version_report.upper:.5f}",
            )
        )
        claims.append(
            Claim(
                f"system pfd within [perfect, untested] at d={detection}, "
                f"f={fix}",
                system_report.holds(slack=slack),
                f"{system_report.lower:.5f} <= "
                f"{system_report.measured:.5f} <= "
                f"{system_report.upper:.5f}",
            )
        )
    # deterministic check: a dead oracle can never change a version
    from ..testing import apply_testing

    probe_version = scenario.population.sample(spawn(rng))
    probe_suite = scenario.generator.sample(spawn(rng))
    probe_outcome = apply_testing(
        probe_version,
        probe_suite,
        ImperfectOracle(0.0),
        ImperfectFixing(1.0),
        rng=spawn(rng),
    )
    claims.append(
        Claim(
            "a dead oracle (d=0) leaves the version exactly unchanged",
            probe_outcome.after == probe_version
            and probe_outcome.detected_failures == 0,
            f"faults before/after: {probe_version.n_faults}/"
            f"{probe_outcome.after.n_faults}",
        )
    )
    claims.append(
        Claim(
            "worse detection yields worse (or equal) version reliability",
            version_means[0] <= version_means[1] + 5e-3
            and version_means[1] <= version_means[2] + 5e-3,
            "means at d=1.0/0.75/0.5: "
            + ", ".join(f"{m:.5f}" for m in version_means[:3]),
        )
    )
    return ExperimentResult(
        experiment_id="e11",
        title="Imperfect oracle/fixing: perfect-testing and untested pfds "
        "bracket the truth",
        paper_reference="section 4.1",
        columns=[
            "oracle/fixing",
            "version lower",
            "version measured",
            "version upper",
            "system lower",
            "system measured",
            "system upper",
        ],
        rows=rows,
        claims=claims,
        notes=(
            f"{n_replications} replications per grid point; same-suite "
            "regime for the system-level check; slack absorbs MC noise"
        ),
    )
