"""E11 — imperfect oracle and imperfect fixing: §4.1 bounds.

"The results from the previous section can be used as lower bounds on the
probability of system failure.  Equally, the scores will be no worse than
the scores of the untested version which thus forms a natural upper bound."
Swept over detection and fix probabilities, both the version-level and the
system-level pfds must stay inside the [perfect-testing, untested] envelope,
and should degrade monotonically as the testing process gets worse.

Catalog entry: ``e11`` in docs/experiments.md.  The imperfect-testing
measurements run on the batch engine's §4.1 binomial-detection kernel
(:mod:`repro.mc.batch`) under the CLI's ``--engine auto``/``batch``.
"""

from __future__ import annotations

from ..core import SameSuite
from ..core.bounds import (
    BoundsReport,
    imperfect_system_bounds,
    imperfect_system_envelope,
    imperfect_testing_bounds,
    imperfect_version_envelope,
)
from ..testing import ImperfectFixing, ImperfectOracle
from ..rng import as_generator, spawn, spawn_many
from .base import Claim, ExperimentResult, engine_kwargs, require_batch_engine
from .models import standard_scenario
from .registry import register


@register("e11")
def run(
    seed: int = 0, fast: bool = True, precision=None
) -> ExperimentResult:
    """Run E11 and return its result table and claims.

    ``precision`` (a :class:`repro.adaptive.PrecisionTarget` or a mapping
    of its fields) replaces the fixed per-grid-point replication count
    with the adaptive precision engine: each point's version-level and
    system-level measurements escalate independently until the target
    half-width is met (budget-capped at the full-mode count), so tight
    grid points stop early and the noisy low-detection tail gets the
    replications it actually needs.  Per-point convergence reports land
    in ``result.extra["adaptive"]``.
    """
    from ..adaptive import PrecisionTarget

    target = PrecisionTarget.coerce(precision)
    if target is not None:
        require_batch_engine("precision-targeted e11")
    n_replications = 300 if fast else 3000
    scenario = standard_scenario(seed)
    rng = as_generator(seed + 1100)
    regime = SameSuite(scenario.generator)
    envelopes = None
    if target is not None:
        # the §4.1 envelopes do not depend on the grid's (detection, fix)
        # pair; compute them once instead of seven times
        version_env_stream, system_env_stream = spawn_many(spawn(rng), 2)
        envelopes = (
            imperfect_version_envelope(
                scenario.population,
                scenario.generator,
                scenario.profile,
                rng=version_env_stream,
            ),
            imperfect_system_envelope(
                regime,
                scenario.population,
                scenario.profile,
                rng=system_env_stream,
            ),
        )

    grid = [
        (1.0, 1.0),
        (0.75, 1.0),
        (0.5, 1.0),
        (1.0, 0.5),
        (0.5, 0.5),
        (0.25, 0.25),
        (0.0, 1.0),
    ]
    rows = []
    claims = []
    version_means = []
    extra = {}
    for detection, fix in grid:
        oracle = ImperfectOracle(detection)
        fixing = ImperfectFixing(fix)
        if target is not None:
            version_report, system_report, payload, point_hw = _adaptive_point(
                scenario, regime, oracle, fixing, target, rng, envelopes
            )
            extra[f"d={detection}, f={fix}"] = payload
        else:
            point_hw = 0.0
            version_report = imperfect_testing_bounds(
                scenario.population,
                scenario.generator,
                scenario.profile,
                oracle,
                fixing,
                n_replications=n_replications,
                rng=spawn(rng),
                **engine_kwargs(),
            )
            system_report = imperfect_system_bounds(
                regime,
                scenario.population,
                scenario.profile,
                oracle,
                fixing,
                n_replications=n_replications,
                rng=spawn(rng),
                **engine_kwargs(),
            )
        version_means.append(version_report.measured)
        rows.append(
            [
                f"d={detection}, f={fix}",
                version_report.lower,
                version_report.measured,
                version_report.upper,
                system_report.lower,
                system_report.measured,
                system_report.upper,
            ]
        )
        # under adaptive control the target half-width, not the fixed
        # count, sets the measurement noise the envelope check must absorb
        slack = max(0.01 if fast else 0.003, point_hw)
        claims.append(
            Claim(
                f"version pfd within [perfect, untested] at d={detection}, "
                f"f={fix}",
                version_report.holds(slack=slack),
                f"{version_report.lower:.5f} <= "
                f"{version_report.measured:.5f} <= "
                f"{version_report.upper:.5f}",
            )
        )
        claims.append(
            Claim(
                f"system pfd within [perfect, untested] at d={detection}, "
                f"f={fix}",
                system_report.holds(slack=slack),
                f"{system_report.lower:.5f} <= "
                f"{system_report.measured:.5f} <= "
                f"{system_report.upper:.5f}",
            )
        )
    # deterministic check: a dead oracle can never change a version
    from ..testing import apply_testing

    probe_version = scenario.population.sample(spawn(rng))
    probe_suite = scenario.generator.sample(spawn(rng))
    probe_outcome = apply_testing(
        probe_version,
        probe_suite,
        ImperfectOracle(0.0),
        ImperfectFixing(1.0),
        rng=spawn(rng),
    )
    claims.append(
        Claim(
            "a dead oracle (d=0) leaves the version exactly unchanged",
            probe_outcome.after == probe_version
            and probe_outcome.detected_failures == 0,
            f"faults before/after: {probe_version.n_faults}/"
            f"{probe_outcome.after.n_faults}",
        )
    )
    claims.append(
        Claim(
            "worse detection yields worse (or equal) version reliability",
            version_means[0] <= version_means[1] + 5e-3
            and version_means[1] <= version_means[2] + 5e-3,
            "means at d=1.0/0.75/0.5: "
            + ", ".join(f"{m:.5f}" for m in version_means[:3]),
        )
    )
    return ExperimentResult(
        experiment_id="e11",
        title="Imperfect oracle/fixing: perfect-testing and untested pfds "
        "bracket the truth",
        paper_reference="section 4.1",
        columns=[
            "oracle/fixing",
            "version lower",
            "version measured",
            "version upper",
            "system lower",
            "system measured",
            "system upper",
        ],
        rows=rows,
        claims=claims,
        notes=(
            (
                "adaptive precision-targeted replications per grid point "
                "(see extra['adaptive'])"
                if target is not None
                else f"{n_replications} replications per grid point"
            )
            + "; same-suite regime for the system-level check; slack "
            "absorbs MC noise"
        ),
        extra={"adaptive": extra} if extra else {},
    )


def _adaptive_point(scenario, regime, oracle, fixing, target, rng, envelopes):
    """Adaptively measure one (detection, fix) grid point of e11.

    The analytic envelopes are shared across the grid (``envelopes`` is
    the pre-computed ``(version, system)`` pair); each point runs only its
    version-level and system-level measurements through the adaptive
    controller (budget-capped at the full-mode count).  Returns the two
    :class:`BoundsReport`\\ s, the convergence payload for ``extra``, and
    the larger achieved half-width (folded into the claim slack).
    """
    from ..adaptive import adaptive_marginal_system_pfd, adaptive_version_pfd

    config = engine_kwargs()
    full_budget = 3000
    (version_envelope, system_envelope) = envelopes
    version_run = adaptive_version_pfd(
        scenario.population,
        scenario.generator,
        scenario.profile,
        target,
        oracle=oracle,
        fixing=fixing,
        rng=spawn(rng),
        n_jobs=config["n_jobs"],
        default_budget=full_budget,
    )
    version_metric = version_run.only
    lower, upper = version_envelope
    version_report = BoundsReport(
        lower=lower,
        upper=upper,
        measured=version_metric.estimate.mean,
        n_replications=version_metric.replications,
        label="version pfd under imperfect testing",
    )
    system_run = adaptive_marginal_system_pfd(
        regime,
        scenario.population,
        scenario.profile,
        target,
        oracle=oracle,
        fixing=fixing,
        rng=spawn(rng),
        n_jobs=config["n_jobs"],
        default_budget=full_budget,
    )
    lower, upper = system_envelope
    system_metric = system_run.only
    system_report = BoundsReport(
        lower=lower,
        upper=upper,
        measured=system_metric.estimate.mean,
        n_replications=system_metric.replications,
        label=f"system pfd under imperfect testing ({regime.label})",
    )
    payload = {
        "version": version_run.to_payload(),
        "system": system_run.to_payload(),
    }
    point_hw = max(
        version_metric.estimate.half_width, system_metric.estimate.half_width
    )
    return version_report, system_report, payload, point_hw
