"""X2 — extension: common specification mistakes (§5).

The paper's dual of the clarification: a wrong instruction broadcast to all
teams "will result in setting the scores of all demands affected to 1".
Modelled as a fault forced into every channel, with the oracle optionally
sharing the misconception (blind to the mandated behaviour).  Checks:

* the mistake adds common-mode failure: the post-mistake system pfd rises
  by at least the mistake region's usage mass;
* with a *correct* oracle, testing can remove the mistake like any fault;
* with a *blind* oracle (and blind fixing), no amount of testing pushes the
  system pfd below the ``Q(R_m)`` floor.

Catalog entry: ``x2`` in docs/experiments.md.  The blind-oracle estimate
runs on the batch engine's blind-spot closure
(:func:`repro.mc.apply_blind_testing_batch`) under ``--engine
auto``/``batch``.
"""

from __future__ import annotations

import numpy as np

from ..extensions import SpecificationMistake, mistake_effect
from ..analytic import BernoulliExactEngine
from .base import Claim, ExperimentResult, engine_kwargs
from .models import standard_scenario
from .registry import register


@register("x2")
def run(seed: int = 0, fast: bool = True) -> ExperimentResult:
    """Run X2 and return its result table and claims."""
    n_replications = 200 if fast else 2000
    scenario = standard_scenario(seed)
    # the mistake: every team mis-implements fault 0's behaviour
    mistake = SpecificationMistake((0,))
    effect = mistake_effect(
        mistake,
        scenario.population,
        scenario.generator,
        scenario.profile,
        n_replications=n_replications,
        rng=seed + 2000,
        **engine_kwargs(),
    )

    engine = BernoulliExactEngine(scenario.universe, scenario.profile)
    mistaken = mistake.apply_to(scenario.population)
    untested_clean = scenario.profile.expectation(
        scenario.population.difficulty() ** 2
    )
    untested_mistaken = scenario.profile.expectation(
        mistaken.difficulty() ** 2
    )

    rows = [
        ["untested, clean", untested_clean],
        ["untested, with mistake", untested_mistaken],
        ["tested (shared suite), clean", effect.clean_pfd],
        ["tested, mistake + correct oracle", effect.mistaken_correct_oracle_pfd],
        ["tested, mistake + blind oracle (MC)", effect.mistaken_blind_oracle_pfd],
        ["mistake region mass Q(R_m)", effect.mistake_region_mass],
    ]
    claims = [
        Claim(
            "the common mistake raises the untested system pfd by at least "
            "its region mass",
            untested_mistaken
            >= untested_clean + effect.mistake_region_mass * 0.5,
            f"{untested_mistaken:.5f} vs {untested_clean:.5f} "
            f"(region mass {effect.mistake_region_mass:.5f})",
        ),
        Claim(
            "a correct oracle can test the mistake away: tested pfd with "
            "mistake approaches the clean tested pfd",
            effect.mistaken_correct_oracle_pfd
            <= effect.clean_pfd + effect.mistake_region_mass,
            f"{effect.mistaken_correct_oracle_pfd:.6f} vs clean "
            f"{effect.clean_pfd:.6f}",
        ),
        Claim(
            "a blind oracle cannot: the system pfd never drops below the "
            "Q(R_m) common-mode floor",
            effect.floor_respected,
            f"blind {effect.mistaken_blind_oracle_pfd:.5f} >= floor "
            f"{effect.mistake_region_mass:.5f}",
        ),
        Claim(
            "the blind-oracle system is strictly worse than the "
            "correct-oracle system",
            effect.mistaken_blind_oracle_pfd
            > effect.mistaken_correct_oracle_pfd,
            f"{effect.mistaken_blind_oracle_pfd:.5f} > "
            f"{effect.mistaken_correct_oracle_pfd:.5f}",
        ),
    ]
    return ExperimentResult(
        experiment_id="x2",
        title="Common specification mistakes: forced shared faults and "
        "blind oracles",
        paper_reference="section 5 (conclusion), common-mistake sketch",
        columns=["configuration", "system pfd"],
        rows=rows,
        claims=claims,
        notes=(
            f"mistake = fault 0 forced into both channels; "
            f"{n_replications} replications for the blind-oracle estimate"
        ),
    )
