"""E5 — forced testing diversity, same population: eq. (18).

The two channels are tested with suites from *different generation
procedures* (operational profile vs a debug-biased profile).  Because the
draws are independent, conditional independence still holds:
``P(both fail on x) = ζ_TA(x) ζ_TB(x)``.
"""

from __future__ import annotations

import numpy as np

from ..core import ForcedTestingDiversity
from ..testing import EnumerableSuiteGenerator, TestSuite, WeightedDebugGenerator
from .base import Claim, ExperimentResult
from .models import standard_scenario, tiny_enumerable_scenario
from .registry import register
from ._jointcheck import enumeration_claim, mc_rows_and_claims


def _tiny_second_generator(tiny) -> EnumerableSuiteGenerator:
    """A second enumerable suite measure over the tiny demand space."""
    space = tiny.space
    suites = [
        TestSuite.of(space, [1, 3]),
        TestSuite.of(space, [5]),
    ]
    return EnumerableSuiteGenerator(space, suites, [0.6, 0.4])


@register("e05")
def run(seed: int = 0, fast: bool = True) -> ExperimentResult:
    """Run E5 and return its result table and claims."""
    n_replications = 3000 if fast else 30000
    tiny = tiny_enumerable_scenario(seed)
    claims = [
        enumeration_claim(
            ForcedTestingDiversity(tiny.generator, _tiny_second_generator(tiny)),
            tiny.population,
            None,
            "tiny enumerable model, two suite measures",
        )
    ]
    scenario = standard_scenario(seed)
    hot_demands = np.flatnonzero(scenario.population.difficulty() > 0.2)
    debug_generator = WeightedDebugGenerator.biased_towards(
        scenario.profile,
        hot_demands,
        boost=4.0,
        size=scenario.generator.size,
    )
    regime = ForcedTestingDiversity(scenario.generator, debug_generator)
    rows, mc_claims, decomposition = mc_rows_and_claims(
        regime,
        scenario.population,
        None,
        n_replications=n_replications,
        n_suites=800 if fast else 4000,
        seed=seed + 500,
    )
    claims.extend(mc_claims)
    claims.append(
        Claim(
            "conditional independence preserved under forced testing "
            "diversity",
            decomposition.conditional_independence_holds,
            f"max |excess| = {float(np.abs(decomposition.excess).max()):.2e}",
        )
    )
    claims.append(
        Claim(
            "the debug-biased procedure is more efficient on its target "
            "demands (zeta_TB < zeta_TA there)",
            bool(
                np.mean(decomposition.zeta_b[hot_demands])
                < np.mean(decomposition.zeta_a[hot_demands])
            ),
            f"mean zeta on hot demands: debug "
            f"{float(np.mean(decomposition.zeta_b[hot_demands])):.6f} vs "
            f"operational {float(np.mean(decomposition.zeta_a[hot_demands])):.6f}",
        )
    )
    return ExperimentResult(
        experiment_id="e05",
        title="Forced testing diversity, same population: joint = "
        "zeta_TA(x) zeta_TB(x)",
        paper_reference="eq. (18), section 3.2.1",
        columns=[
            "demand",
            "joint analytic",
            "zeta_TA zeta_TB",
            "excess",
            "joint MC",
            "MC in CI",
        ],
        rows=rows,
        claims=claims,
        notes=(
            "channel A: operational suites; channel B: debug suites biased "
            f"4x towards high-difficulty demands; {n_replications} "
            "replications per demand"
        ),
    )
