"""C1 — SBFL-guided versus random fixing on every measured target.

The headline localization experiment: for each corpus target of the
committed mutation campaigns, build the measured Bernoulli fault
population, the line-band component model, and the kill-record coverage
matrix, then race two debugging policies under common random numbers —
fix the top SBFL-ranked repairable component each round, or a uniformly
random repairable one.  The *fix effort* (replication-averaged rounds
until pfd halves) quantifies what spectrum-based localization buys: on
every target the guided policy needs no more effort than the random
baseline, and strictly less on most.
"""

from __future__ import annotations

import numpy as np

from ..mutation.measured import measured_target_names
from ._localization import measured_setup, run_policy_pair
from .base import Claim, ExperimentResult
from .registry import register


@register("c1")
def run(
    seed: int = 0,
    fast: bool = True,
    n_components: int = 5,
    rounds: int = 10,
    target_fraction: float = 0.5,
    presence_prob: float = 0.35,
    metric: str = "ochiai",
) -> ExperimentResult:
    """Run C1 and return its result table and claims."""
    n_replications = 200 if fast else 800
    targets = measured_target_names()
    rows = []
    efforts = {}
    paired_starts = True
    monotone = True
    for target in targets:
        population, profile, model, matrix = measured_setup(
            target, n_components, presence_prob, seed
        )
        sbfl, random = run_policy_pair(
            population,
            profile,
            matrix,
            model,
            seed,
            metric=metric,
            rounds=rounds,
            target_fraction=target_fraction,
            n_replications=n_replications,
        )
        paired_starts &= sbfl.initial_pfd == random.initial_pfd
        monotone &= bool(
            np.all(np.diff(sbfl.mean_pfd) <= 1e-12)
            and np.all(np.diff(random.mean_pfd) <= 1e-12)
        )
        efforts[target] = {
            "sbfl": sbfl.mean_rounds_to_target,
            "random": random.mean_rounds_to_target,
        }
        rows.append(
            [
                target,
                len(population.universe),
                matrix.n_tests,
                sbfl.initial_pfd,
                sbfl.mean_rounds_to_target,
                random.mean_rounds_to_target,
                random.mean_rounds_to_target - sbfl.mean_rounds_to_target,
                sbfl.reached_fraction,
                random.reached_fraction,
            ]
        )

    gaps = {
        target: pair["random"] - pair["sbfl"]
        for target, pair in efforts.items()
    }
    never_worse = all(gap >= 0.0 for gap in gaps.values())
    strictly_better = [target for target, gap in gaps.items() if gap > 0.0]
    claims = [
        Claim(
            "the policy comparison is paired: identical version draws, so "
            "both policies start from the same mean pfd on every target",
            paired_starts,
        ),
        Claim(
            "fixing never adds faults: mean pfd is non-increasing round "
            "over round under both policies on every target",
            monotone,
        ),
        Claim(
            "SBFL-guided fixing reaches the target reliability with no "
            "more fix effort than random fixing on every measured target",
            never_worse,
            "; ".join(
                f"{target}: sbfl {pair['sbfl']:.3f} vs random "
                f"{pair['random']:.3f}"
                for target, pair in efforts.items()
            ),
        ),
        Claim(
            "on at least one target the guided policy needs strictly "
            "less effort",
            len(strictly_better) > 0,
            f"strictly better on: {', '.join(strictly_better) or 'none'}",
        ),
    ]
    return ExperimentResult(
        experiment_id="c1",
        title="SBFL-guided vs random fixing on measured targets",
        paper_reference=(
            "testing-regime effectiveness (section 3), extended to "
            "coverage-limited diagnosis with SBFL localization "
            "(Ochiai/Tarantula/DStar)"
        ),
        columns=[
            "target",
            "faults",
            "tests",
            "initial pfd",
            "effort (sbfl)",
            "effort (random)",
            "effort saved",
            "reached (sbfl)",
            "reached (random)",
        ],
        rows=rows,
        claims=claims,
        notes=(
            f"{len(targets)} measured targets, {n_components} line-band "
            f"components, kill-record coverage; {rounds} rounds to reach "
            f"{target_fraction:.0%} of initial pfd, metric {metric!r}, "
            f"{n_replications} replications, presence prob {presence_prob}; "
            "common random numbers across policies (counter-RNG)"
        ),
        extra={"efforts": efforts},
    )
