"""X1 — extension: common clarifications as shared restricted suites (§5).

The paper's conclusion proposes modelling a clarification broadcast to all
teams as a shared "test suite" over the affected sub-space.  This experiment
realises that model and checks the predictions that fall out of the §3
machinery:

* a broadcast clarification improves the system (it is still testing);
* but it is *shared*, so it carries the eq. (20) dependence penalty
  relative to teams resolving independently discovered ambiguities;
* a deterministic clarification (no uncertainty about which ambiguity
  surfaces) carries no penalty at all — Var over a point measure is zero.
"""

from __future__ import annotations

import numpy as np

from ..extensions import ClarificationProcess, clarification_effect
from .base import Claim, ExperimentResult
from .models import standard_scenario
from .registry import register


@register("x1")
def run(seed: int = 0, fast: bool = True) -> ExperimentResult:
    """Run X1 and return its result table and claims."""
    scenario = standard_scenario(seed)
    space = scenario.space
    # candidate ambiguities: three disjoint sub-spaces of 12 demands
    regions = [
        list(range(0, 12)),
        list(range(30, 42)),
        list(range(60, 72)),
    ]
    random_process = ClarificationProcess(
        space, regions, [0.4, 0.3, 0.3]
    )
    deterministic_process = ClarificationProcess(space, [regions[0]], [1.0])
    partial_process = ClarificationProcess(space, regions, [0.2, 0.2, 0.2])

    rows = []
    claims = []
    effects = {}
    for label, process in (
        ("random which-ambiguity", random_process),
        ("deterministic", deterministic_process),
        ("maybe none surfaces", partial_process),
    ):
        effect = clarification_effect(
            process, scenario.population, scenario.profile
        )
        effects[label] = effect
        rows.append(
            [
                label,
                effect.untested_pfd,
                effect.per_team_pfd,
                effect.shared_pfd,
                effect.dependence_penalty,
            ]
        )
        claims.append(
            Claim(
                f"[{label}] broadcasting the clarification still helps "
                "(vs no clarification)",
                effect.clarification_helps,
                f"{effect.shared_pfd:.6f} <= {effect.untested_pfd:.6f}",
            )
        )
    claims.append(
        Claim(
            "a random shared clarification carries the eq. (20) dependence "
            "penalty over independent per-team resolution",
            effects["random which-ambiguity"].dependence_penalty > 1e-9,
            f"penalty = "
            f"{effects['random which-ambiguity'].dependence_penalty:.6f}",
        )
    )
    claims.append(
        Claim(
            "a deterministic clarification carries no penalty "
            "(Var over a point measure is zero)",
            abs(effects["deterministic"].dependence_penalty) <= 1e-12,
        )
    )
    claims.append(
        Claim(
            "uncertainty about whether any ambiguity surfaces increases "
            "the penalty relative to the certain case",
            effects["maybe none surfaces"].dependence_penalty
            >= effects["deterministic"].dependence_penalty,
        )
    )
    return ExperimentResult(
        experiment_id="x1",
        title="Common clarifications modelled as shared restricted suites",
        paper_reference="section 5 (conclusion), common-clarification sketch",
        columns=[
            "clarification process",
            "no clarification",
            "per-team resolution",
            "broadcast (shared)",
            "dependence penalty",
        ],
        rows=rows,
        claims=claims,
        notes="three candidate ambiguities of 12 demands each; all exact",
    )
