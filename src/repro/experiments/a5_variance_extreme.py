"""A5 — the extreme of the same-suite penalty: ``Var_T(ξ) = 0.25``.

The paper: the variance "can be substantial with a maximal value of 0.25 in
the case ζ(x) = 0.5 and ξ(x,T) taking on values either 0 or 1 and nothing
in between".  Constructed exactly: a population that always contains one
fault, and a suite measure that hits the fault's region with probability
one half.  Then testing either certainly removes the fault (ξ = 0) or
certainly misses it (ξ = 1), the joint failure probability on the fault's
demands is 0.5 — double the conditional-independence prediction of 0.25 —
and the excess attains its theoretical maximum.
"""

from __future__ import annotations

import numpy as np

from ..core import SameSuite, joint_failure_probability
from ..demand import DemandSpace, uniform_profile
from ..faults import FaultUniverse
from ..mc import simulate_joint_on_demand
from ..populations import BernoulliFaultPopulation
from ..testing import EnumerableSuiteGenerator, TestSuite
from .base import Claim, ExperimentResult, engine_kwargs
from .registry import register


@register("a5")
def run(seed: int = 0, fast: bool = True) -> ExperimentResult:
    """Run A5 and return its result table and claims."""
    n_replications = 4000 if fast else 40000
    space = DemandSpace(4)
    profile = uniform_profile(space)
    universe = FaultUniverse.from_regions(space, [[0, 1]])
    # the fault is always present: every untested version fails on {0, 1}
    population = BernoulliFaultPopulation(universe, [1.0])
    suites = [
        TestSuite.of(space, [0]),   # hits the region: xi -> 0 on demands 0,1
        TestSuite.of(space, [2]),   # misses it:       xi stays 1
    ]
    generator = EnumerableSuiteGenerator(space, suites, [0.5, 0.5])
    regime = SameSuite(generator)
    decomposition = joint_failure_probability(regime, population)

    demand = 0
    estimator = simulate_joint_on_demand(
        regime,
        population,
        demand,
        n_replications=n_replications,
        rng=seed + 1500,
        **engine_kwargs(),
    )
    rows = [
        [
            demand,
            float(decomposition.zeta_a[demand]),
            float(decomposition.independence_part[demand]),
            float(decomposition.excess[demand]),
            float(decomposition.joint[demand]),
            estimator.mean,
        ]
    ]
    claims = [
        Claim(
            "zeta(x) = 0.5 exactly",
            abs(float(decomposition.zeta_a[demand]) - 0.5) <= 1e-15,
        ),
        Claim(
            "the same-suite excess attains its theoretical maximum 0.25",
            abs(float(decomposition.excess[demand]) - 0.25) <= 1e-15,
        ),
        Claim(
            "the joint failure probability is double the "
            "conditional-independence prediction (0.5 vs 0.25)",
            abs(float(decomposition.joint[demand]) - 0.5) <= 1e-15,
        ),
        Claim(
            "full-pipeline MC confirms the extreme joint probability",
            estimator.contains(0.5, confidence=0.999),
            f"MC {estimator.mean:.4f} (n={estimator.count})",
        ),
    ]
    return ExperimentResult(
        experiment_id="a5",
        title="Extreme same-suite dependence: Var_T(xi) = 0.25 attained",
        paper_reference="section 3.4.1: 'maximal value of 0.25 in the case "
        "zeta(x) = 0.5'",
        columns=[
            "demand",
            "zeta",
            "zeta^2",
            "Var_T(xi)",
            "joint analytic",
            "joint MC",
        ],
        rows=rows,
        claims=claims,
        notes="one always-present fault; suite hits its region w.p. 1/2",
    )
