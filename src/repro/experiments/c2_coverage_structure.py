"""C2 — how coverage structure shapes localization-guided growth.

A controlled synthetic sweep: one clustered fault universe with blocked
components, and a grid of banded-random coverage matrices varying the
within-band cell **density** and the **suite size** (number of tests).
The SBFL-guided workload runs on every grid cell with common random
numbers, making the fix-effort surface directly comparable: richer
coverage — denser cells or more tests — never slows reliability growth,
and the two knobs compound (the densest, largest suite localizes
fastest).
"""

from __future__ import annotations

import numpy as np

from ..coverage.components import ComponentModel
from ..coverage.matrix import synthetic_coverage
from ..coverage.workload import simulate_localized_growth
from ..demand import DemandSpace, zipf_profile
from ..faults import clustered_universe
from ..populations import BernoulliFaultPopulation
from ._localization import workload_engine_kwargs
from .base import Claim, ExperimentResult
from .registry import register


@register("c2")
def run(
    seed: int = 0,
    fast: bool = True,
    n_components: int = 6,
    n_faults: int = 12,
    rounds: int = 8,
    target_fraction: float = 0.5,
    metric: str = "ochiai",
) -> ExperimentResult:
    """Run C2 and return its result table and claims."""
    n_replications = 150 if fast else 600
    densities = (0.2, 0.5, 0.8)
    suite_sizes = (6, 12, 24)

    space = DemandSpace(100)
    profile = zipf_profile(space, exponent=0.8)
    universe = clustered_universe(
        space, n_faults=n_faults, region_size=6, rng=seed + 11
    )
    population = BernoulliFaultPopulation.uniform(universe, 0.4)
    model = ComponentModel.blocked(universe, n_components)

    rows = []
    effort = {}
    monotone = True
    for density in densities:
        for n_tests in suite_sizes:
            matrix = synthetic_coverage(
                n_tests,
                n_components,
                density=density,
                bandwidth=2,
                overlap=0.2,
                rng=seed + 101,
            )
            result = simulate_localized_growth(
                population,
                profile,
                matrix,
                model,
                policy="sbfl",
                metric=metric,
                rounds=rounds,
                target_fraction=target_fraction,
                n_replications=n_replications,
                rng=seed,
                **workload_engine_kwargs(),
            )
            monotone &= bool(np.all(np.diff(result.mean_pfd) <= 1e-12))
            effort[(density, n_tests)] = result.mean_rounds_to_target
            rows.append(
                [
                    density,
                    n_tests,
                    matrix.density,
                    result.initial_pfd,
                    result.final_pfd,
                    result.mean_rounds_to_target,
                    result.reached_fraction,
                ]
            )

    suite_monotone = all(
        effort[(d, a)] >= effort[(d, b)]
        for d in densities
        for a, b in zip(suite_sizes, suite_sizes[1:])
    )
    density_monotone = all(
        effort[(a, t)] >= effort[(b, t)]
        for t in suite_sizes
        for a, b in zip(densities, densities[1:])
    )
    best = effort[(densities[-1], suite_sizes[-1])]
    worst = effort[(densities[0], suite_sizes[0])]
    claims = [
        Claim(
            "fixing never adds faults: mean pfd is non-increasing round "
            "over round on every grid cell",
            monotone,
        ),
        Claim(
            "larger test suites never slow localization-guided growth "
            "(fix effort is non-increasing in suite size at every density)",
            suite_monotone,
        ),
        Claim(
            "denser coverage never slows localization-guided growth "
            "(fix effort is non-increasing in density at every suite size)",
            density_monotone,
        ),
        Claim(
            "the richest coverage (densest cells, largest suite) localizes "
            "strictly faster than the poorest",
            best < worst,
            f"effort {best:.3f} vs {worst:.3f}",
        ),
    ]
    return ExperimentResult(
        experiment_id="c2",
        title="Coverage density and suite size vs localization effort",
        paper_reference=(
            "suite-size effects on tested reliability (section 3), "
            "extended to coverage-limited SBFL diagnosis"
        ),
        columns=[
            "density knob",
            "suite size",
            "realised density",
            "initial pfd",
            "final pfd",
            "fix effort",
            "reached fraction",
        ],
        rows=rows,
        claims=claims,
        notes=(
            f"{n_faults} clustered faults, {n_components} blocked "
            f"components on a {space.size}-demand space; banded coverage "
            f"(bandwidth 2, overlap 0.2); {rounds} rounds to reach "
            f"{target_fraction:.0%} of initial pfd, metric {metric!r}, "
            f"{n_replications} replications per cell, common random "
            "numbers across cells"
        ),
    )
