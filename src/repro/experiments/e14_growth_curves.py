"""E14 — reliability growth versus testing effort (paper ref. [5] style).

Regenerates the Djambazov & Popov-style study the paper cites: version pfd
and 1-out-of-2 system pfd as functions of the number of operational tests,
under independent-suite, same-suite and back-to-back regimes, on a fault
universe with Zipf-distributed failure-region sizes (big faults die early,
the long tail drives the diminishing returns).
"""

from __future__ import annotations

import numpy as np

from ..demand import DemandSpace, uniform_profile
from ..faults import zipf_sized_universe
from ..growth import (
    back_to_back_growth_curves,
    halving_effort,
    system_growth_curves,
    version_growth_curve,
)
from ..populations import BernoulliFaultPopulation
from ..rng import as_generator, spawn_many
from ..testing import (
    BackToBackComparator,
    OperationalSuiteGenerator,
    apply_testing,
    back_to_back_testing,
)
from ..versions import shared_fault_outputs
from .base import Claim, ExperimentResult
from .registry import register


def _paired_b2b_vs_perfect(population, profile, sizes, n_replications, rng):
    """Mean system pfd per effort level for back-to-back vs perfect oracle.

    Both processes consume identical version pairs and suite prefixes, so
    the per-level comparison is paired: back-to-back detection is a subset
    of perfect-oracle detection on every replication, hence its mean curve
    must dominate (lie above) the perfect one with *zero* noise in the
    comparison direction.
    """
    rng = as_generator(rng)
    comparator = BackToBackComparator(shared_fault_outputs())
    generator = OperationalSuiteGenerator(profile, int(max(sizes)))
    b2b_totals = np.zeros(len(sizes))
    perfect_totals = np.zeros(len(sizes))
    for replication in spawn_many(rng, n_replications):
        streams = spawn_many(replication, 3)
        version_a = population.sample(streams[0])
        version_b = population.sample(streams[1])
        suite = generator.sample(streams[2])
        for index, n in enumerate(sizes):
            prefix = suite.prefix(int(n))
            outcome_a, outcome_b = back_to_back_testing(
                version_a, version_b, prefix, comparator
            )
            joint = outcome_a.after.failure_mask & outcome_b.after.failure_mask
            b2b_totals[index] += float(profile.probabilities[joint].sum())
            perfect_a = apply_testing(version_a, prefix).after
            perfect_b = apply_testing(version_b, prefix).after
            perfect_joint = perfect_a.failure_mask & perfect_b.failure_mask
            perfect_totals[index] += float(
                profile.probabilities[perfect_joint].sum()
            )
    return b2b_totals / n_replications, perfect_totals / n_replications


@register("e14")
def run(seed: int = 0, fast: bool = True) -> ExperimentResult:
    """Run E14 and return its result table and claims."""
    n_replications = 100 if fast else 1000
    space = DemandSpace(120)
    profile = uniform_profile(space)
    universe = zipf_sized_universe(
        space, n_faults=15, max_region_size=24, exponent=1.0, rng=seed
    )
    population = BernoulliFaultPopulation.uniform(universe, 0.35)
    sizes = [0, 5, 10, 20, 40, 80, 160]

    version_curve = version_growth_curve(population, profile, sizes)
    system_curves = system_growth_curves(population, profile, sizes)
    b2b = back_to_back_growth_curves(
        population,
        profile,
        sizes,
        shared_fault_outputs(),
        n_replications=n_replications,
        rng=seed + 1400,
    )
    b2b_means, perfect_means = _paired_b2b_vs_perfect(
        population, profile, sizes, n_replications, rng=seed + 1401
    )
    independent = system_curves["independent suites"]
    same = system_curves["same suite"]

    rows = []
    for index, n in enumerate(sizes):
        rows.append(
            [
                n,
                float(version_curve.values[index]),
                float(independent.values[index]),
                float(same.values[index]),
                float(b2b["system"].values[index]),
            ]
        )
    claims = [
        Claim(
            "version pfd decreases monotonically with testing effort",
            version_curve.is_nonincreasing(),
        ),
        Claim(
            "both system curves decrease monotonically",
            independent.is_nonincreasing() and same.is_nonincreasing(),
        ),
        Claim(
            "same-suite system curve dominates (is worse than) the "
            "independent-suite curve pointwise",
            independent.dominates(same, tolerance=1e-12),
        ),
        Claim(
            "back-to-back (shared-fault outputs) never beats the perfect "
            "oracle on the same draws, and its curve is monotone",
            bool(
                np.all(b2b_means >= perfect_means - 1e-12)
                and np.all(np.diff(b2b_means) <= 1e-12)
            ),
            "paired comparison over identical version/suite draws",
        ),
        Claim(
            "the system is always at least as reliable as one version",
            bool(np.all(independent.values <= version_curve.values + 1e-12)),
        ),
    ]
    halving = halving_effort(version_curve)
    claims.append(
        Claim(
            "halving the version pfd takes a finite effort on this model",
            halving >= 0,
            f"pfd halves by n = {halving}",
        )
    )
    return ExperimentResult(
        experiment_id="e14",
        title="Reliability growth: version and 1oo2 system pfd vs testing "
        "effort",
        paper_reference="section 3.4.1 and ref. [5] (Djambazov & Popov)",
        columns=[
            "suite size",
            "version pfd",
            "system (indep suites)",
            "system (same suite)",
            "system (back-to-back, MC)",
        ],
        rows=rows,
        claims=claims,
        notes=(
            "Zipf-sized fault regions (15 faults, largest region 24 of 120 "
            f"demands); back-to-back curve from {n_replications} simulated "
            "pairs, exact elsewhere"
        ),
    )
