"""CLI entry point: ``python -m repro.experiments [ids…] [options]``.

Runs the requested reproduction experiments (all by default), prints each
result table, and exits non-zero if any paper claim failed to hold.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from .registry import all_experiment_ids, run_experiment
from .report import format_result, format_summary


def main(argv: List[str] | None = None) -> int:
    """Run the experiment CLI; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the results of Popov & Littlewood (DSN 2004).",
    )
    parser.add_argument(
        "ids",
        nargs="*",
        help="experiment ids to run (default: all); e.g. e07 a2",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="root seed (default 0)"
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the large replication counts (slower, tighter CIs)",
    )
    parser.add_argument(
        "--summary-only",
        action="store_true",
        help="print only the one-line-per-experiment summary",
    )
    args = parser.parse_args(argv)

    ids = args.ids or all_experiment_ids()
    results = []
    for experiment_id in ids:
        result = run_experiment(experiment_id, seed=args.seed, fast=not args.full)
        results.append(result)
        if not args.summary_only:
            print(format_result(result))
            print()
    print(format_summary(results))
    return 0 if all(result.passed for result in results) else 1


if __name__ == "__main__":
    sys.exit(main())
