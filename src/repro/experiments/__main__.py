"""CLI entry point: ``python -m repro.experiments [ids…] [options]``.

Five invocation shapes:

* **run** (default, no subcommand) — run the requested reproduction
  experiments (all by default), print each result table, exit non-zero if
  any paper claim failed to hold;
* **sweep** — execute a declarative parameter grid
  (``sweep --grid grid.toml --out results/``), persisting every completed
  point to a resumable result store (re-runs are cache hits, interrupted
  sweeps resume where they stopped); with ``--via-service URL`` the grid
  points fan out through a running simulation server instead of local
  processes;
* **aggregate** — join a result store back into comparison tables
  (``aggregate --store results/ [--experiment id]``);
* **mutate** — run a sandboxed mutation campaign against a bundled
  corpus target, the package's own code, or an arbitrary program
  (``mutate --target stats --store campaigns/``), persisting per-mutant
  kill outcomes resumably and optionally gating on ``--min-score``
  (design and walkthrough: ``docs/mutation.md``);
* **serve** — host the long-lived simulation service
  (``serve --host 127.0.0.1 --port 8752 --procs 4 --store results/``):
  an asyncio JSON/HTTP API with request coalescing, a two-tier result
  cache over the store, per-job priorities and adaptive-run progress
  streaming (API reference: ``docs/service.md``).  SIGINT/SIGTERM drain
  cleanly — in-flight jobs complete and persist, queued jobs cancel.

The catalog of experiment ids, the paper claim each one reproduces, its
knobs and expected runtimes live in ``docs/experiments.md``; the grid file
format, cache-key definition and resume semantics in ``docs/sweeps.md``.

Experiments with a ``precision`` knob (e.g. ``e01``, ``e11``, ``x3``) can
run under the adaptive precision engine instead of a fixed replication
count: ``--target-rel-hw 0.05`` (and/or ``--target-abs-hw``) sets the
confidence-interval half-width each metric must reach, ``--budget`` caps
the replications, ``--vr`` picks the variance-reduction technique.  See
``docs/adaptive.md``.

Exit codes: 0 — success, every claim held; 1 — experiments ran but some
claim failed; 2 — usage error (unknown id, bad grid file, missing store).
"""

from __future__ import annotations

import argparse
import difflib
import os
import sys
from typing import List

from ..errors import ModelError
from .base import set_engine_config
from .registry import all_experiment_ids, run_experiment
from .report import format_result, format_summary

EXIT_OK = 0
EXIT_CLAIM_FAILURES = 1
EXIT_USAGE = 2


def validate_ids(ids: List[str]) -> None:
    """Reject unknown experiment ids up front, with suggestions.

    Raises a single :class:`~repro.errors.ModelError` covering *all*
    unknown ids before any experiment runs, instead of letting the registry
    fail mid-run after earlier experiments already burned their replication
    budget.  Close matches are suggested ("did you mean ...?").
    """
    known = all_experiment_ids()
    unknown = [requested for requested in ids if requested not in known]
    if not unknown:
        return
    fragments = []
    for requested in unknown:
        matches = difflib.get_close_matches(requested, known, n=3, cutoff=0.4)
        if matches:
            fragments.append(
                f"{requested!r} (did you mean {', '.join(matches)}?)"
            )
        else:
            fragments.append(repr(requested))
    raise ModelError(
        f"unknown experiment id(s): {'; '.join(fragments)}.  "
        f"Known ids: {', '.join(known)} — see docs/experiments.md"
    )


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        choices=("auto", "batch", "compiled", "fastest", "scalar"),
        default="auto",
        help="Monte-Carlo engine for simulation-driven experiments: "
        "'auto' (default) vectorizes whenever the testing process "
        "supports it, 'batch' fails loudly when it cannot, 'compiled' "
        "runs the native counter-RNG kernels (needs the [compiled] "
        "extra), 'fastest' picks compiled when numba is importable and "
        "batch otherwise (recording the choice in the result's extra), "
        "'scalar' forces the per-replication reference loops",
    )
    parser.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for batch-engine chunk sharding (default 1; "
        "results are bit-identical for any value)",
    )


def _add_logging_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="warning",
        help="structured-log threshold (default warning; debug also "
        "emits every tracing span — see docs/observability.md)",
    )
    parser.add_argument(
        "--log-format",
        choices=("human", "json"),
        default="human",
        help="log line format: 'human' (default) or 'json' "
        "(JSON-lines; machine-parseable, feeds tools/trace_tree.py)",
    )
    parser.add_argument(
        "--log-file",
        metavar="FILE",
        help="append logs to FILE instead of stderr (what sharded "
        "deployments use so each instance keeps its own trace log)",
    )


def _configure_logging(args) -> None:
    from ..obs import configure_logging

    configure_logging(
        level=args.log_level, format=args.log_format, file=args.log_file
    )


def _add_store_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store-backend",
        choices=("auto", "jsonl", "sqlite"),
        default="auto",
        help="result-store backend: 'auto' (default) detects from the "
        "path and existing files, 'jsonl' is the append-only line store, "
        "'sqlite' a WAL-mode database with indexed lookups for stores "
        "holding millions of records (see docs/sweeps.md)",
    )


def _add_precision_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--target-rel-hw",
        type=float,
        metavar="R",
        help="adaptive precision: stop each metric when its CI half-width "
        "is at most R times its scale (replaces the fixed replication "
        "count on experiments with a 'precision' knob; see "
        "docs/adaptive.md)",
    )
    parser.add_argument(
        "--target-abs-hw",
        type=float,
        metavar="W",
        help="adaptive precision: stop each metric when its CI half-width "
        "is at most W (combinable with --target-rel-hw; meeting either "
        "stops)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        metavar="N",
        help="adaptive precision: hard replication cap per metric "
        "(default: the experiment's full-mode count)",
    )
    parser.add_argument(
        "--vr",
        choices=(
            "auto",
            "none",
            "antithetic",
            "stratified",
            "control",
            "stratified+control",
        ),
        default="auto",
        help="variance-reduction technique for adaptive runs (default "
        "'auto': the strongest the model supports)",
    )


def _precision_params(args) -> dict | None:
    """The CLI's precision flags as a runner-knob mapping (or None)."""
    if args.target_rel_hw is None and args.target_abs_hw is None:
        if args.budget is not None:
            raise ModelError(
                "--budget needs --target-rel-hw and/or --target-abs-hw"
            )
        if args.vr != "auto":
            raise ModelError(
                "--vr needs --target-rel-hw and/or --target-abs-hw "
                "(variance reduction only applies to adaptive runs)"
            )
        return None
    precision: dict = {}
    if args.target_rel_hw is not None:
        precision["rel_hw"] = args.target_rel_hw
    if args.target_abs_hw is not None:
        precision["abs_hw"] = args.target_abs_hw
    if args.budget is not None:
        precision["budget"] = args.budget
    precision["vr"] = args.vr
    return precision


def run_main(argv: List[str]) -> int:
    """The default (no-subcommand) experiment runner."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the results of Popov & Littlewood (DSN 2004).",
    )
    parser.add_argument(
        "ids",
        nargs="*",
        help="experiment ids to run (default: all); e.g. e07 a2 "
        "(catalog: docs/experiments.md)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="root seed (default 0)"
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the large replication counts (slower, tighter CIs)",
    )
    parser.add_argument(
        "--summary-only",
        action="store_true",
        help="print only the one-line-per-experiment summary",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="record per-phase wall-clock timings (setup/sampling/"
        "scoring) into each result's provenance and print a profile "
        "line per experiment",
    )
    _add_engine_arguments(parser)
    _add_precision_arguments(parser)
    _add_logging_arguments(parser)
    args = parser.parse_args(argv)
    _configure_logging(args)

    validate_ids(args.ids)
    ids = args.ids or all_experiment_ids()
    precision = _precision_params(args)
    adaptive_ids: set = set()
    if precision is not None:
        from .registry import runner_params

        adaptive_ids = {
            eid for eid in ids if "precision" in runner_params(eid)
        }
        skipped = [eid for eid in ids if eid not in adaptive_ids]
        if skipped:
            print(
                f"note: no 'precision' knob on {', '.join(skipped)}; "
                "running those fixed-n",
                file=sys.stderr,
            )
    previous = set_engine_config(engine=args.engine, n_jobs=args.n_jobs)
    try:
        results = []
        for experiment_id in ids:
            params = (
                {"precision": precision}
                if experiment_id in adaptive_ids
                else None
            )
            if args.profile:
                from ..obs import collect_timings, span

                with collect_timings() as timer, span(
                    "experiment.run", experiment_id=experiment_id
                ):
                    result = run_experiment(
                        experiment_id, seed=args.seed, fast=not args.full,
                        params=params,
                    )
                # provenance rides the result only when asked for:
                # golden outputs stay byte-identical on unprofiled runs
                result.extra["timings"] = timer.payload(
                    engine=args.engine, n_jobs=args.n_jobs
                )
            else:
                result = run_experiment(
                    experiment_id, seed=args.seed, fast=not args.full,
                    params=params,
                )
            results.append(result)
            if not args.summary_only:
                print(format_result(result))
                print()
        print(format_summary(results))
        return (
            EXIT_OK
            if all(result.passed for result in results)
            else EXIT_CLAIM_FAILURES
        )
    finally:
        set_engine_config(engine=previous.engine, n_jobs=previous.n_jobs)


def sweep_main(argv: List[str]) -> int:
    """``sweep --grid grid.toml --out results/``: run a resumable grid."""
    from ..store import open_store
    from ..sweeps import Sweep, load_grid

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments sweep",
        description="Run a declarative experiment grid against a resumable "
        "result store (grid format: docs/sweeps.md).",
    )
    parser.add_argument(
        "--grid",
        required=True,
        metavar="FILE",
        help="sweep grid file (.toml or .json)",
    )
    parser.add_argument(
        "--out",
        default="results",
        metavar="DIR",
        help="result store location (default: results/); completed points "
        "found there are served as cache hits",
    )
    parser.add_argument(
        "--procs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes across sweep points (default 1)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="list every grid point and its cache status without running",
    )
    parser.add_argument(
        "--via-service",
        metavar="URL",
        help="fan grid points through a running simulation server "
        "(e.g. http://127.0.0.1:8752) instead of local worker processes; "
        "--procs becomes the number of concurrent requests and records "
        "are mirrored into --out",
    )
    _add_store_backend_argument(parser)
    _add_engine_arguments(parser)
    _add_logging_arguments(parser)
    args = parser.parse_args(argv)
    _configure_logging(args)

    spec = load_grid(args.grid)
    store = open_store(args.out, backend=args.store_backend)
    sweep = Sweep(spec, store, engine=args.engine, n_jobs=args.n_jobs)
    if args.dry_run:
        cached, pending = sweep.partition()
        cached_keys = {point.cache_key(engine=args.engine) for point in cached}
        for point in sweep.effective_points():
            key = point.cache_key(engine=args.engine)
            status = "cached" if key in cached_keys else "pending"
            print(f"{status:<8} {point.label()}")
        if spec.precision is not None and spec.precision.budget_total:
            print(
                "(Neyman allocation: listed points are the pilot pass; "
                "final budgets depend on its results)"
            )
        print(
            f"sweep: {len(cached) + len(pending)} points, 0 executed, "
            f"{len(cached)} cached (dry run; {len(pending)} pending)"
        )
        return EXIT_OK

    def progress(point, status):
        print(f"{status:<9} {point.label()}", flush=True)

    if args.via_service:
        report = sweep.run_via_service(
            args.via_service, n_procs=args.procs, progress=progress
        )
    else:
        report = sweep.run(n_procs=args.procs, progress=progress)
    print(report.summary())
    print(f"store: {store.path}")
    return EXIT_OK if report.passed else EXIT_CLAIM_FAILURES


def serve_main(argv: List[str]) -> int:
    """``serve --port 8752 --procs 4 --store results/``: host the service."""
    import asyncio
    import signal

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments serve",
        description="Host the long-lived simulation service: JSON/HTTP API "
        "with request coalescing, a two-tier result cache and a bounded "
        "priority job queue (API reference: docs/service.md).",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default 127.0.0.1; bind 0.0.0.0 only behind "
        "a trusted network — the API is unauthenticated)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8752,
        help="bind port (default 8752; 0 picks a free port, printed on "
        "startup)",
    )
    parser.add_argument(
        "--procs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes computing jobs (default 1; 0 runs jobs on "
        "a single in-process thread — no subprocesses, for debugging)",
    )
    parser.add_argument(
        "--store",
        default="results",
        metavar="DIR",
        help="result store backing the cache (default: results/); records "
        "computed by the server persist there and records already there "
        "are served warm",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="run without a persistent store (memory cache only; results "
        "are lost on shutdown)",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        metavar="N",
        help="in-memory LRU capacity in records (default 1024)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        metavar="N",
        help="bounded job queue depth; submissions beyond it get HTTP 429 "
        "(default 64)",
    )
    parser.add_argument(
        "--name",
        default=None,
        metavar="NAME",
        help="instance name for sharded deployments: job ids become "
        "<name>-job-NNNNNN so a router can route job lookups back here "
        "(default: unnamed)",
    )
    parser.add_argument(
        "--slow-job-seconds",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="log a warning for any job whose computation exceeds this "
        "(default 30)",
    )
    _add_store_backend_argument(parser)
    _add_logging_arguments(parser)
    args = parser.parse_args(argv)
    _configure_logging(args)

    from ..service import JobScheduler, ServiceServer, TwoTierCache
    from ..store import open_store

    async def _serve() -> None:
        store = (
            None
            if args.no_store
            else open_store(args.store, backend=args.store_backend)
        )
        cache = TwoTierCache(store, capacity=args.cache_size)
        scheduler = JobScheduler(
            cache,
            procs=args.procs,
            queue_limit=args.queue_limit,
            name=args.name,
            slow_job_seconds=args.slow_job_seconds,
        )
        await scheduler.start()
        server = ServiceServer(scheduler, host=args.host, port=args.port)
        await server.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        store_label = str(store.path) if store is not None else "none"
        name_label = f", name={args.name}" if args.name else ""
        print(
            f"serving {server.url} (procs={args.procs}, "
            f"store={store_label}{name_label})",
            flush=True,
        )
        await stop.wait()
        print(
            "shutting down: queued jobs cancelled, in-flight jobs "
            "draining ...",
            flush=True,
        )
        await server.close()
        await scheduler.close()
        print("shutdown complete", flush=True)

    asyncio.run(_serve())
    return EXIT_OK


def router_main(argv: List[str]) -> int:
    """``router --shard s0=http://... --shard s1=http://...``: cluster front-end."""
    import asyncio
    import signal

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments router",
        description="Host the cluster router: forwards each POST /run to "
        "the shard instance owning its cache key on a consistent-hash "
        "ring, so coalescing and caching work cluster-wide "
        "(topology: docs/service.md).",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8750,
        help="bind port (default 8750; 0 picks a free port, printed on "
        "startup)",
    )
    parser.add_argument(
        "--shard",
        action="append",
        default=[],
        metavar="NAME=URL",
        help="one shard instance, e.g. s0=http://127.0.0.1:8752 (repeat "
        "per shard; names must match each shard's serve --name)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="transport retries per shard before failing over along the "
        "ring (default 1)",
    )
    parser.add_argument(
        "--health-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="background /healthz probe period (default 1.0)",
    )
    _add_logging_arguments(parser)
    args = parser.parse_args(argv)
    _configure_logging(args)

    shards = {}
    for entry in args.shard:
        name, separator, url = entry.partition("=")
        if not separator or not name or not url:
            raise ModelError(
                f"--shard must look like NAME=URL, got {entry!r}"
            )
        if name in shards:
            raise ModelError(f"duplicate shard name {name!r}")
        shards[name] = url
    if not shards:
        raise ModelError(
            "router needs at least one --shard NAME=URL "
            "(e.g. --shard s0=http://127.0.0.1:8752)"
        )

    from ..service.router import Router, RouterServer

    async def _serve() -> None:
        router = Router(
            shards,
            retries=args.retries,
            health_interval=args.health_interval,
        )
        await router.start()
        server = RouterServer(router, host=args.host, port=args.port)
        await server.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        print(
            f"routing {server.url} across {len(shards)} shard(s): "
            + ", ".join(f"{name}={url}" for name, url in sorted(shards.items())),
            flush=True,
        )
        await stop.wait()
        print("router shutting down ...", flush=True)
        await server.close()
        await router.close()
        print("router shutdown complete", flush=True)

    asyncio.run(_serve())
    return EXIT_OK


def mutate_main(argv: List[str]) -> int:
    """``mutate --target stats --store campaigns/``: run a mutation campaign."""
    from ..mutation import (
        DetectionData,
        MutationCampaign,
        bundled_targets,
        fit_size_biased_multinomial,
        self_target,
    )
    from ..mutation.targets import TargetProgram
    from ..store import open_store

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments mutate",
        description="Run a sandboxed mutation campaign: generate mutants of "
        "a target program, execute its test suite against each one in a "
        "subprocess, and persist per-mutant kill outcomes to a resumable "
        "result store (design: docs/mutation.md).",
    )
    parser.add_argument(
        "--target",
        metavar="NAME",
        help="a bundled corpus target (see --list-targets) or 'self' for "
        "the self-mutation target (repro.rng judged by its own tests)",
    )
    parser.add_argument(
        "--program",
        metavar="FILE",
        help="mutate an arbitrary single-file program instead of a bundled "
        "target (requires --tests)",
    )
    parser.add_argument(
        "--tests",
        nargs="+",
        metavar="FILE",
        help="pytest files judging the mutants of --program",
    )
    parser.add_argument(
        "--support",
        nargs="*",
        default=[],
        metavar="FILE",
        help="extra files the tests import (copied into the sandbox)",
    )
    parser.add_argument(
        "--list-targets",
        action="store_true",
        help="list the bundled corpus targets and exit",
    )
    parser.add_argument(
        "--store",
        default="campaigns",
        metavar="DIR",
        help="campaign result store (default: campaigns/); stored mutants "
        "are served as cache hits, so interrupted campaigns resume",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=20.0,
        metavar="SECONDS",
        help="per-mutant suite timeout (default 20; a timed-out mutant "
        "counts as detected by the whole suite)",
    )
    parser.add_argument(
        "--max-mutants",
        type=int,
        metavar="N",
        help="cap the campaign to a deterministic subsample of N mutants",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="subsampling seed (default 0)"
    )
    parser.add_argument(
        "--min-score",
        type=float,
        metavar="S",
        help="fail (exit 1) when the mutation score ends below S — the "
        "CI mutation-score gate",
    )
    _add_store_backend_argument(parser)
    args = parser.parse_args(argv)

    if args.list_targets:
        for name, target in sorted(bundled_targets().items()):
            print(
                f"{name:<12} {target.source_path.name} "
                f"({len(target.test_paths)} test file(s), "
                f"sha {target.source_sha})"
            )
        print("self         src/repro/rng.py (tier-1 rng tests)")
        return EXIT_OK

    if args.program is not None:
        if not args.tests:
            raise ModelError("--program requires --tests")
        if args.target is not None:
            raise ModelError("--program and --target are mutually exclusive")
        from pathlib import Path

        program = Path(args.program)
        target = TargetProgram(
            name=program.stem,
            module=program.stem,
            source_path=program,
            test_paths=tuple(Path(p) for p in args.tests),
            support_paths=tuple(Path(p) for p in args.support),
        )
    elif args.target == "self":
        target = self_target()
    elif args.target is not None:
        targets = bundled_targets()
        if args.target not in targets:
            raise ModelError(
                f"unknown bundled target {args.target!r} "
                f"(known: {', '.join(sorted(targets))}, self)"
            )
        target = targets[args.target]
    else:
        raise ModelError(
            "pick a target: --target NAME, --target self, or "
            "--program FILE --tests FILE... (--list-targets to browse)"
        )

    store = open_store(args.store, backend=args.store_backend)
    campaign = MutationCampaign(
        target,
        store,
        timeout=args.timeout,
        max_mutants=args.max_mutants,
        seed=args.seed,
    )

    def progress(outcome, was_cached):
        origin = "cached " if was_cached else "ran    "
        print(
            f"{origin} {outcome.mutant_id}  {outcome.status:<9} "
            f"detected {outcome.detected}/{outcome.n_tests}  "
            f"{outcome.description}",
            flush=True,
        )

    try:
        report = campaign.run(on_mutant=progress)
    except KeyboardInterrupt:
        print(
            "\ninterrupted — completed mutants are stored; re-run the same "
            "command to resume",
            file=sys.stderr,
        )
        return 130
    data = DetectionData.from_outcomes(report.outcomes)
    fit = fit_size_biased_multinomial(data)
    print(
        f"campaign {campaign.experiment_id}: {report.total} mutants "
        f"({report.executed} executed, {report.cached} cached) in "
        f"{report.elapsed_seconds:.1f}s"
    )
    print(
        f"  killed {report.killed}, survived {report.survived}, "
        f"timeouts {report.timeouts}, errors {report.errors} "
        f"({report.n_tests} tests)"
    )
    print(
        f"  mutation score {report.mutation_score:.3f}, "
        f"alpha {fit.alpha:.3f}, "
        f"mean detection prob {fit.mean_detection_prob:.3f}"
    )
    print(f"store: {store.path}")
    if args.min_score is not None and report.mutation_score < args.min_score:
        print(
            f"mutation score {report.mutation_score:.3f} below the "
            f"--min-score gate {args.min_score}",
            file=sys.stderr,
        )
        return EXIT_CLAIM_FAILURES
    return EXIT_OK


def aggregate_main(argv: List[str]) -> int:
    """``aggregate --store results/``: join stored records into tables."""
    from ..store import open_store
    from ..sweeps import comparison_table, render_table, summary_table

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments aggregate",
        description="Join stored sweep records into comparison tables "
        "(bit-for-bit in csv/json formats).",
    )
    parser.add_argument(
        "--store",
        default="results",
        metavar="DIR",
        help="result store location (default: results/)",
    )
    parser.add_argument(
        "--experiment",
        metavar="ID",
        help="emit the long-form comparison table for one experiment id "
        "(default: the one-line-per-point summary table)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "csv", "json"),
        default="text",
        help="output format (default text; csv/json preserve stored floats "
        "bit-for-bit)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="write the table to FILE instead of stdout",
    )
    _add_store_backend_argument(parser)
    args = parser.parse_args(argv)

    store = open_store(args.store, backend=args.store_backend)
    if not store.path.exists():
        raise ModelError(f"no result store at {store.path}")
    if args.experiment is not None:
        table = comparison_table(store, args.experiment)
    else:
        table = summary_table(store)
    rendered = render_table(table, args.format)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {len(table[1])} rows to {args.out}")
    else:
        print(rendered)
    return EXIT_OK


def main(argv: List[str] | None = None) -> int:
    """Dispatch to run (default), sweep or aggregate; returns the exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        if argv and argv[0] == "sweep":
            return sweep_main(argv[1:])
        if argv and argv[0] == "aggregate":
            return aggregate_main(argv[1:])
        if argv and argv[0] == "serve":
            return serve_main(argv[1:])
        if argv and argv[0] == "router":
            return router_main(argv[1:])
        if argv and argv[0] == "mutate":
            return mutate_main(argv[1:])
        return run_main(argv)
    except ModelError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except BrokenPipeError:
        # downstream closed the pipe (e.g. `... | head`); exit quietly,
        # pointing stdout at devnull so interpreter shutdown can flush
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
