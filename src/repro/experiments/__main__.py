"""CLI entry point: ``python -m repro.experiments [ids…] [options]``.

Runs the requested reproduction experiments (all by default), prints each
result table, and exits non-zero if any paper claim failed to hold.  The
catalog of experiment ids, the paper claim each one reproduces, its knobs
and expected runtimes live in ``docs/experiments.md``.
"""

from __future__ import annotations

import argparse
import difflib
import sys
from typing import List

from ..errors import ModelError
from .base import set_engine_config
from .registry import all_experiment_ids, run_experiment
from .report import format_result, format_summary


def validate_ids(ids: List[str]) -> None:
    """Reject unknown experiment ids up front, with suggestions.

    Raises a single :class:`~repro.errors.ModelError` covering *all*
    unknown ids before any experiment runs, instead of letting the registry
    fail mid-run after earlier experiments already burned their replication
    budget.  Close matches are suggested ("did you mean ...?").
    """
    known = all_experiment_ids()
    unknown = [requested for requested in ids if requested not in known]
    if not unknown:
        return
    fragments = []
    for requested in unknown:
        matches = difflib.get_close_matches(requested, known, n=3, cutoff=0.4)
        if matches:
            fragments.append(
                f"{requested!r} (did you mean {', '.join(matches)}?)"
            )
        else:
            fragments.append(repr(requested))
    raise ModelError(
        f"unknown experiment id(s): {'; '.join(fragments)}.  "
        f"Known ids: {', '.join(known)} — see docs/experiments.md"
    )


def main(argv: List[str] | None = None) -> int:
    """Run the experiment CLI; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the results of Popov & Littlewood (DSN 2004).",
    )
    parser.add_argument(
        "ids",
        nargs="*",
        help="experiment ids to run (default: all); e.g. e07 a2 "
        "(catalog: docs/experiments.md)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="root seed (default 0)"
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the large replication counts (slower, tighter CIs)",
    )
    parser.add_argument(
        "--summary-only",
        action="store_true",
        help="print only the one-line-per-experiment summary",
    )
    parser.add_argument(
        "--engine",
        choices=("auto", "batch", "scalar"),
        default="auto",
        help="Monte-Carlo engine for simulation-driven experiments: "
        "'auto' (default) vectorizes whenever the testing process "
        "supports it, 'batch' fails loudly when it cannot, 'scalar' "
        "forces the per-replication reference loops",
    )
    parser.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for batch-engine chunk sharding (default 1; "
        "results are bit-identical for any value)",
    )
    args = parser.parse_args(argv)

    validate_ids(args.ids)
    ids = args.ids or all_experiment_ids()
    previous = set_engine_config(engine=args.engine, n_jobs=args.n_jobs)
    try:
        results = []
        for experiment_id in ids:
            result = run_experiment(
                experiment_id, seed=args.seed, fast=not args.full
            )
            results.append(result)
            if not args.summary_only:
                print(format_result(result))
                print()
        print(format_summary(results))
        return 0 if all(result.passed for result in results) else 1
    finally:
        set_engine_config(engine=previous.engine, n_jobs=previous.n_jobs)


if __name__ == "__main__":
    sys.exit(main())
