"""E6 — forced design *and* testing diversity: eq. (19).

Different development methodologies and different test-generation
procedures, all draws independent: the joint failure probability is still
the product of the per-channel tested difficulties.
"""

from __future__ import annotations

import numpy as np

from ..core import ForcedTestingDiversity
from ..testing import WeightedDebugGenerator
from .base import Claim, ExperimentResult
from .models import forced_design_scenario
from .registry import register
from ._jointcheck import mc_rows_and_claims


@register("e06")
def run(seed: int = 0, fast: bool = True) -> ExperimentResult:
    """Run E6 and return its result table and claims."""
    n_replications = 3000 if fast else 30000
    scenario = forced_design_scenario(seed)
    hot_b = np.flatnonzero(scenario.population_b.difficulty() > 0.2)
    debug_generator = WeightedDebugGenerator.biased_towards(
        scenario.profile,
        hot_b,
        boost=4.0,
        size=scenario.generator.size,
    )
    regime = ForcedTestingDiversity(scenario.generator, debug_generator)
    rows, mc_claims, decomposition = mc_rows_and_claims(
        regime,
        scenario.population_a,
        scenario.population_b,
        n_replications=n_replications,
        n_suites=800 if fast else 4000,
        seed=seed + 600,
    )
    claims = list(mc_claims)
    claims.append(
        Claim(
            "conditional independence preserved with both diversities "
            "forced",
            decomposition.conditional_independence_holds,
            f"max |excess| = {float(np.abs(decomposition.excess).max()):.2e}",
        )
    )
    theta_a = scenario.population_a.difficulty()
    theta_b = scenario.population_b.difficulty()
    claims.append(
        Claim(
            "testing helps both channels demand-wise (zeta <= theta)",
            bool(
                np.all(decomposition.zeta_a <= theta_a + 1e-12)
                and np.all(decomposition.zeta_b <= theta_b + 1e-12)
            ),
        )
    )
    return ExperimentResult(
        experiment_id="e06",
        title="Forced design + testing diversity: joint = "
        "zeta_A,TA(x) zeta_B,TB(x)",
        paper_reference="eq. (19), section 3.2.2",
        columns=[
            "demand",
            "joint analytic",
            "product form",
            "excess",
            "joint MC",
            "MC in CI",
        ],
        rows=rows,
        claims=claims,
        notes=(
            "methodologies share 4 of their faults; channel B debugged with "
            f"a biased profile; {n_replications} replications per demand"
        ),
    )
