"""Shared model scenarios for the experiment suite.

Every experiment needs concrete realisations of the paper's abstract
measures.  Centralising them keeps the experiments comparable (same demand
space scale, same fault shapes) and documents the substitutions once:

* ``standard_scenario`` — one methodology, clustered faults (difficulty
  variation), uniform usage, operational test generation;
* ``forced_design_scenario`` — two methodologies with a controllable
  shared-fault overlap (drives every covariance in the paper);
* ``tiny_enumerable_scenario`` — a deliberately small model whose
  population and suite measure are exactly enumerable, used for
  ground-truth validation of the derived formulas.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..demand import DemandSpace, UsageProfile, uniform_profile, zipf_profile
from ..faults import FaultUniverse, clustered_universe, overlapping_pair
from ..populations import BernoulliFaultPopulation, FinitePopulation
from ..testing import (
    EnumerableSuiteGenerator,
    OperationalSuiteGenerator,
    TestSuite,
    WeightedDebugGenerator,
)
from ..versions import Version

__all__ = [
    "StandardScenario",
    "ForcedDesignScenario",
    "TinyEnumerableScenario",
    "standard_scenario",
    "forced_design_scenario",
    "tiny_enumerable_scenario",
]


@dataclass(frozen=True)
class StandardScenario:
    """Single-methodology scenario used by most experiments."""

    space: DemandSpace
    profile: UsageProfile
    universe: FaultUniverse
    population: BernoulliFaultPopulation
    generator: OperationalSuiteGenerator


def standard_scenario(
    seed: int = 0,
    n_demands: int = 80,
    n_faults: int = 14,
    region_size: int = 5,
    presence_prob: float = 0.3,
    suite_size: int = 30,
) -> StandardScenario:
    """Clustered faults, uniform usage, operational suites.

    Clustered regions give the difficulty function genuine variation —
    without it the EL penalty (and with it most of the paper) vanishes.
    """
    space = DemandSpace(n_demands)
    profile = uniform_profile(space)
    universe = clustered_universe(
        space, n_faults=n_faults, region_size=region_size, rng=seed
    )
    population = BernoulliFaultPopulation.uniform(universe, presence_prob)
    generator = OperationalSuiteGenerator(profile, suite_size)
    return StandardScenario(space, profile, universe, population, generator)


@dataclass(frozen=True)
class ForcedDesignScenario:
    """Two-methodology scenario with controlled fault overlap."""

    space: DemandSpace
    profile: UsageProfile
    universe: FaultUniverse
    population_a: BernoulliFaultPopulation
    population_b: BernoulliFaultPopulation
    generator: OperationalSuiteGenerator
    n_shared: int


def forced_design_scenario(
    seed: int = 0,
    n_demands: int = 80,
    n_shared: int = 4,
    n_unique_each: int = 6,
    region_size: int = 5,
    presence_prob: float = 0.35,
    suite_size: int = 30,
    disjoint_unique_regions: bool = False,
    usage_zipf_exponent: float = 0.0,
) -> ForcedDesignScenario:
    """Methodologies A and B sharing exactly ``n_shared`` faults.

    ``disjoint_unique_regions=True`` places A's and B's unique faults on
    opposite halves of the demand space — the construction for negative
    difficulty covariance.  A Zipf usage exponent > 0 concentrates usage,
    amplifying whatever covariance the fault placement creates.
    """
    space = DemandSpace(n_demands)
    if usage_zipf_exponent > 0.0:
        profile = zipf_profile(space, usage_zipf_exponent)
    else:
        profile = uniform_profile(space)
    universe, ids_a, ids_b = overlapping_pair(
        space,
        n_shared=n_shared,
        n_unique_each=n_unique_each,
        region_size=region_size,
        rng=seed,
        disjoint_unique_regions=disjoint_unique_regions,
    )
    probs_a = np.zeros(len(universe))
    probs_a[ids_a] = presence_prob
    probs_b = np.zeros(len(universe))
    probs_b[ids_b] = presence_prob
    population_a = BernoulliFaultPopulation(universe, probs_a)
    population_b = BernoulliFaultPopulation(universe, probs_b)
    generator = OperationalSuiteGenerator(profile, suite_size)
    return ForcedDesignScenario(
        space,
        profile,
        universe,
        population_a,
        population_b,
        generator,
        n_shared,
    )


@dataclass(frozen=True)
class TinyEnumerableScenario:
    """Fully enumerable model: exact ground truth for every expectation."""

    space: DemandSpace
    profile: UsageProfile
    universe: FaultUniverse
    population: FinitePopulation
    generator: EnumerableSuiteGenerator


def tiny_enumerable_scenario(seed: int = 0) -> TinyEnumerableScenario:
    """Six demands, three faults, four versions, four suites.

    Small enough to sum every expectation exactly, rich enough that the
    difficulty function varies, suites differ in effectiveness, and the
    same-suite excess is strictly positive.
    """
    space = DemandSpace(6)
    profile = uniform_profile(space)
    universe = FaultUniverse.from_regions(
        space, [[0, 1], [2, 3], [3, 4]]
    )
    versions = [
        Version.correct(universe),
        Version(universe, np.array([0])),
        Version(universe, np.array([1, 2])),
        Version.with_all_faults(universe),
    ]
    population = FinitePopulation(
        universe, versions, [0.4, 0.3, 0.2, 0.1]
    )
    suites = [
        TestSuite.of(space, [0]),
        TestSuite.of(space, [2]),
        TestSuite.of(space, [4, 5]),
        TestSuite.of(space, [5]),
    ]
    generator = EnumerableSuiteGenerator(
        space, suites, [0.25, 0.25, 0.25, 0.25]
    )
    return TinyEnumerableScenario(space, profile, universe, population, generator)
