"""A1 — ablation: the EL penalty scales with difficulty variance.

Holding the mean difficulty fixed and sweeping its spread (symmetric Beta
shapes from near-constant to near-bimodal), the relative penalty over
independence ``Var(Θ)/E[Θ]²`` must grow from ~0 towards its Bernoulli
ceiling — quantifying "the more variation in difficulty across demands,
the worse becomes the problem".
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from ..core import ELModel
from ..demand import DemandSpace, uniform_profile
from .base import Claim, ExperimentResult
from .registry import register


@register("a1")
def run(seed: int = 0, fast: bool = True) -> ExperimentResult:
    """Run A1 and return its result table and claims."""
    n_demands = 500 if fast else 5000
    mean_difficulty = 0.2
    space = DemandSpace(n_demands)
    profile = uniform_profile(space)
    rng = np.random.default_rng(seed)

    # Beta(k*mu, k*(1-mu)) has mean mu for every concentration k; small k
    # means high variance.  Use equally spaced quantiles rather than random
    # draws so the sweep is smooth and exactly reproducible.
    concentrations = [2000.0, 50.0, 10.0, 2.0, 0.5]
    quantiles = (np.arange(n_demands) + 0.5) / n_demands
    rows = []
    penalties = []
    for k in concentrations:
        alpha = k * mean_difficulty
        beta = k * (1.0 - mean_difficulty)
        theta = stats.beta.ppf(quantiles, alpha, beta)
        model = ELModel.from_difficulty(theta, profile)
        penalty = model.independence_excess_ratio()
        penalties.append(penalty)
        rows.append(
            [
                k,
                model.prob_fail(),
                model.variance(),
                model.prob_both_fail(),
                model.independence_prediction(),
                penalty,
            ]
        )
    claims = [
        Claim(
            "mean difficulty held constant across the sweep",
            all(abs(row[1] - mean_difficulty) < 0.01 for row in rows),
        ),
        Claim(
            "the relative penalty Var/E^2 increases monotonically as the "
            "difficulty distribution spreads",
            all(
                penalties[i] < penalties[i + 1]
                for i in range(len(penalties) - 1)
            ),
            " -> ".join(f"{p:.4f}" for p in penalties),
        ),
        Claim(
            "the near-constant difficulty end has negligible penalty "
            "(independence nearly holds)",
            penalties[0] < 0.01,
            f"penalty at k=2000: {penalties[0]:.6f}",
        ),
        Claim(
            "the penalty stays below the Bernoulli ceiling (1-mu)/mu",
            all(
                p <= (1.0 - mean_difficulty) / mean_difficulty + 1e-9
                for p in penalties
            ),
            f"ceiling = {(1.0 - mean_difficulty) / mean_difficulty:.3f}",
        ),
    ]
    return ExperimentResult(
        experiment_id="a1",
        title="EL penalty vs difficulty variance (fixed mean)",
        paper_reference="eq. (6) discussion: 'everything depends upon a "
        "key variance term'",
        columns=[
            "Beta concentration",
            "E[Theta]",
            "Var(Theta)",
            "E[Theta^2]",
            "independence",
            "penalty Var/E^2",
        ],
        rows=rows,
        claims=claims,
        notes=f"difficulty = Beta quantile grid over {n_demands} demands",
    )
