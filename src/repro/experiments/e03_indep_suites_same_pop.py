"""E3 — independent suites, same population: eq. (16).

Testing both versions on independently generated suites preserves the
conditional independence of their failures on every fixed demand:
``P(both fail on x) = ζ(x)²``.
"""

from __future__ import annotations

import numpy as np

from ..core import IndependentSuites
from .base import Claim, ExperimentResult
from .models import standard_scenario, tiny_enumerable_scenario
from .registry import register
from ._jointcheck import enumeration_claim, mc_rows_and_claims


@register("e03")
def run(seed: int = 0, fast: bool = True) -> ExperimentResult:
    """Run E3 and return its result table and claims."""
    n_replications = 3000 if fast else 30000
    tiny = tiny_enumerable_scenario(seed)
    claims = [
        enumeration_claim(
            IndependentSuites(tiny.generator),
            tiny.population,
            None,
            "tiny enumerable model",
        )
    ]
    scenario = standard_scenario(seed)
    regime = IndependentSuites(scenario.generator)
    rows, mc_claims, decomposition = mc_rows_and_claims(
        regime,
        scenario.population,
        None,
        n_replications=n_replications,
        n_suites=800 if fast else 4000,
        seed=seed + 300,
    )
    claims.extend(mc_claims)
    max_excess = float(np.abs(decomposition.excess).max())
    claims.append(
        Claim(
            "conditional independence preserved: joint = zeta(x)^2 exactly",
            decomposition.conditional_independence_holds,
            f"max |joint - zeta^2| = {max_excess:.2e}",
        )
    )
    theta = scenario.population.difficulty()
    claims.append(
        Claim(
            "testing helps demand-wise: zeta(x) <= theta(x) everywhere",
            bool(np.all(decomposition.zeta_a <= theta + 1e-12)),
            f"max zeta - theta = {float((decomposition.zeta_a - theta).max()):.2e}",
        )
    )
    return ExperimentResult(
        experiment_id="e03",
        title="Independent suites, same population: joint = zeta(x)^2",
        paper_reference="eq. (16), section 3.1.1",
        columns=[
            "demand",
            "joint analytic",
            "zeta^2",
            "excess",
            "joint MC",
            "MC in CI",
        ],
        rows=rows,
        claims=claims,
        notes=f"{n_replications} full-pipeline replications per demand",
    )
