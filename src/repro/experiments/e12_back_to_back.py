"""E12 — back-to-back testing: §4.2 bounds.

Three checks:

1. **Optimistic bound** — if coincident failures are never identical,
   back-to-back detection coincides with a perfect oracle (exactly, per
   replication).
2. **Pessimistic bound** — if all coincident failures are identical, they
   are undetectable; in the score-level worst case system reliability does
   not improve at all.  With fault regions linking demands the simulated
   pessimistic run may still improve the system (spillover fixing), but it
   must stay within the [perfect, untested] envelope — and the worst case
   is *attained* when the two channels are the same program.
3. **Exhaustive limit** — "in the limit (after exhaustive testing), the
   versions would fail identically and the system behave exactly as each
   version does": iterating exhaustive back-to-back testing to a fixpoint
   leaves the two channels with identical failure sets.

Catalog entry: ``e12`` in docs/experiments.md.  The envelope simulation
runs on the batch engine's demand-ordered back-to-back kernel
(:func:`repro.mc.back_to_back_batch`) under ``--engine auto``/``batch``;
the fixpoint check stays on the scalar pair engine by construction.
"""

from __future__ import annotations

import numpy as np

from ..core.bounds import back_to_back_envelope
from ..populations import FinitePopulation
from ..rng import as_generator, spawn
from ..testing import BackToBackComparator, back_to_back_testing
from ..versions import Version, pessimistic_outputs
from .base import Claim, ExperimentResult, engine_kwargs
from .models import standard_scenario
from .registry import register


def _fixpoint_failure_masks(version_a, version_b, space, comparator):
    """Iterate exhaustive back-to-back testing until nothing changes."""
    from ..testing import TestSuite

    exhaustive = TestSuite(space, space.demands)
    current_a, current_b = version_a, version_b
    for _ in range(len(space) + 1):
        outcome_a, outcome_b = back_to_back_testing(
            current_a, current_b, exhaustive, comparator
        )
        changed = (
            outcome_a.after.n_faults != current_a.n_faults
            or outcome_b.after.n_faults != current_b.n_faults
        )
        current_a, current_b = outcome_a.after, outcome_b.after
        if not changed:
            break
    return current_a, current_b


@register("e12")
def run(seed: int = 0, fast: bool = True) -> ExperimentResult:
    """Run E12 and return its result table and claims."""
    n_replications = 200 if fast else 2000
    scenario = standard_scenario(seed)
    rng = as_generator(seed + 1200)

    envelope = back_to_back_envelope(
        scenario.population,
        scenario.generator,
        scenario.profile,
        n_replications=n_replications,
        rng=spawn(rng),
        **engine_kwargs(),
    )
    rows = [
        ["untested", envelope.untested_system_pfd, envelope.untested_version_pfd],
        [
            "b2b pessimistic",
            envelope.pessimistic_system_pfd,
            envelope.pessimistic_version_pfd,
        ],
        [
            "b2b shared-fault",
            envelope.shared_fault_system_pfd,
            envelope.shared_fault_version_pfd,
        ],
        [
            "b2b optimistic",
            envelope.optimistic_system_pfd,
            envelope.optimistic_version_pfd,
        ],
        ["perfect oracle", envelope.perfect_system_pfd, float("nan")],
    ]
    claims = [
        Claim(
            "optimistic back-to-back reproduces the perfect oracle exactly",
            envelope.optimistic_matches_perfect,
            f"{envelope.optimistic_system_pfd:.6f} vs "
            f"{envelope.perfect_system_pfd:.6f}",
        ),
        Claim(
            "envelope ordering holds: perfect <= optimistic <= shared-fault "
            "<= pessimistic <= untested (system pfd)",
            envelope.ordering_holds,
        ),
        Claim(
            "back-to-back improves version reliability even in the "
            "pessimistic case",
            envelope.pessimistic_version_pfd
            < envelope.untested_version_pfd - 1e-9,
            f"{envelope.pessimistic_version_pfd:.6f} < "
            f"{envelope.untested_version_pfd:.6f}",
        ),
    ]

    # worst-case attainment: both channels are the same program, so every
    # failure is coincident and identical -> system pfd cannot improve.
    universe = scenario.universe
    fixed = Version.with_all_faults(universe)
    degenerate = FinitePopulation(universe, [fixed], [1.0])
    attain = back_to_back_envelope(
        degenerate,
        scenario.generator,
        scenario.profile,
        n_replications=20,
        rng=spawn(rng),
        **engine_kwargs(),
    )
    claims.append(
        Claim(
            "worst case attained for identical channels: pessimistic "
            "back-to-back leaves system pfd at its untested value",
            abs(attain.pessimistic_system_pfd - attain.untested_system_pfd)
            <= 1e-12,
            f"{attain.pessimistic_system_pfd:.6f} = "
            f"{attain.untested_system_pfd:.6f}",
        )
    )
    rows.append(
        [
            "identical channels, b2b pessimistic",
            attain.pessimistic_system_pfd,
            attain.pessimistic_version_pfd,
        ]
    )

    # exhaustive-testing limit: failure sets coincide at the fixpoint
    streams = [spawn(rng) for _ in range(2)]
    version_a = scenario.population.sample(streams[0])
    version_b = scenario.population.sample(streams[1])
    comparator = BackToBackComparator(pessimistic_outputs())
    final_a, final_b = _fixpoint_failure_masks(
        version_a, version_b, scenario.space, comparator
    )
    identical = bool(
        np.array_equal(final_a.failure_mask, final_b.failure_mask)
    )
    claims.append(
        Claim(
            "exhaustive pessimistic back-to-back drives the channels to "
            "identical failure sets (the paper's limit)",
            identical,
            f"residual failing demands: "
            f"{int(final_a.failure_mask.sum())} (A) = "
            f"{int(final_b.failure_mask.sum())} (B)",
        )
    )
    return ExperimentResult(
        experiment_id="e12",
        title="Back-to-back testing: optimistic = perfect oracle; "
        "pessimistic leaves the system unimproved",
        paper_reference="section 4.2",
        columns=["configuration", "system pfd", "mean version pfd"],
        rows=rows,
        claims=claims,
        notes=(
            f"{n_replications} paired replications (all modes share draws); "
            "shared-fault output model: failures identical iff caused by "
            "the same faults"
        ),
    )
