"""E7 — same suite, same population: eq. (20).

The paper's central negative result: testing both versions on a *common*
suite induces dependence —

    P(both fail on x) = E_T[ξ(x,T)²] = ζ(x)² + Var_T(ξ(x,T)) ≥ ζ(x)²

so assuming conditional independence after shared testing is optimistic by
exactly the per-demand suite variance.  Validated against brute-force
enumeration, the Bernoulli closed form, and full-pipeline Monte Carlo.
"""

from __future__ import annotations

import numpy as np

from ..analytic import BernoulliExactEngine
from ..core import SameSuite
from .base import Claim, ExperimentResult
from .models import standard_scenario, tiny_enumerable_scenario
from .registry import register
from ._jointcheck import enumeration_claim, mc_rows_and_claims


@register("e07")
def run(seed: int = 0, fast: bool = True) -> ExperimentResult:
    """Run E7 and return its result table and claims."""
    n_replications = 3000 if fast else 30000
    tiny = tiny_enumerable_scenario(seed)
    claims = [
        enumeration_claim(
            SameSuite(tiny.generator),
            tiny.population,
            None,
            "tiny enumerable model",
        )
    ]
    scenario = standard_scenario(seed)
    regime = SameSuite(scenario.generator)
    rows, mc_claims, decomposition = mc_rows_and_claims(
        regime,
        scenario.population,
        None,
        n_replications=n_replications,
        n_suites=1500 if fast else 8000,
        seed=seed + 700,
    )
    claims.extend(mc_claims)

    engine = BernoulliExactEngine(scenario.universe, scenario.profile)
    exact_second = engine.xi_second_moment(
        scenario.population, scenario.generator.size
    )
    sampling_gap = float(np.abs(decomposition.joint - exact_second).max())
    claims.append(
        Claim(
            "suite-sampled joint agrees with the inclusion-exclusion "
            "closed form",
            sampling_gap < 0.02,
            f"max abs gap {sampling_gap:.4f} (suite-sampling noise)",
        )
    )
    exact_var = engine.xi_variance(scenario.population, scenario.generator.size)
    claims.append(
        Claim(
            "common suite induces dependence: Var_T(xi) > 0 on some demand",
            float(exact_var.max()) > 1e-6,
            f"max Var_T(xi) = {float(exact_var.max()):.6f}",
        )
    )
    zeta = engine.zeta(scenario.population, scenario.generator.size)
    claims.append(
        Claim(
            "joint >= zeta^2 on every demand (eq. (20) inequality)",
            bool(np.all(exact_second >= zeta**2 - 1e-15)),
        )
    )
    claims.append(
        Claim(
            "Var_T(xi) never exceeds the theoretical maximum 0.25",
            float(exact_var.max()) <= 0.25 + 1e-12,
            f"max = {float(exact_var.max()):.6f}",
        )
    )
    return ExperimentResult(
        experiment_id="e07",
        title="Same suite, same population: joint = zeta^2 + Var_T(xi)",
        paper_reference="eq. (20), section 3.3",
        columns=[
            "demand",
            "joint analytic",
            "zeta^2",
            "Var_T(xi) excess",
            "joint MC",
            "MC in CI",
        ],
        rows=rows,
        claims=claims,
        notes=(
            f"{n_replications} full-pipeline replications per demand; "
            "closed form via inclusion-exclusion over covering faults"
        ),
    )
