"""E13 — the §3.4.1 cost scenarios.

Two extremes from the paper:

* **Generation expensive, execution cheap** — with two generated suites in
  hand, merge them and run all ``2n`` tests on *both* versions.  "Clearly,
  with the longer test not only the individual reliability of the versions
  is going to be better but so is the system reliability" — the merged
  common suite beats two independent ``n``-suites despite inducing
  dependence.
* **Execution expensive** — each version can only run ``n`` tests; then
  independent suites beat the shared suite (E9's result restated as the
  equal-execution-cost comparison).

Also checks the diminishing-returns remark: the advantage of doubling the
test length shrinks as reliability grows.
"""

from __future__ import annotations

import numpy as np

from ..analytic import BernoulliExactEngine
from .base import Claim, ExperimentResult
from .models import standard_scenario
from .registry import register


@register("e13")
def run(seed: int = 0, fast: bool = True) -> ExperimentResult:
    """Run E13 and return its result table and claims."""
    scenario = standard_scenario(seed)
    engine = BernoulliExactEngine(scenario.universe, scenario.profile)
    population = scenario.population

    suite_sizes = [5, 10, 20, 40, 80] if fast else [5, 10, 20, 40, 80, 160, 320]
    rows = []
    claims = []
    advantages = []
    for n in suite_sizes:
        independent_n = engine.system_pfd_independent_suites(population, n)
        same_n = engine.system_pfd_same_suite(population, n)
        same_2n = engine.system_pfd_same_suite(population, 2 * n)
        # a same-suite run of the merged 2n tests is what the paper's
        # cheap-execution scenario buys at the same *generation* cost as
        # two independent n-suites
        advantage = independent_n - same_2n
        advantages.append(advantage)
        rows.append([n, independent_n, same_n, same_2n, advantage])
        claims.append(
            Claim(
                f"equal generation cost (n={n}): merged 2n common suite "
                "beats two independent n-suites",
                same_2n <= independent_n + 1e-15,
                f"same(2n)={same_2n:.6f} <= indep(n)={independent_n:.6f}",
            )
        )
        claims.append(
            Claim(
                f"equal execution cost (n={n}): independent n-suites beat "
                "the common n-suite",
                independent_n <= same_n + 1e-15,
                f"indep(n)={independent_n:.6f} <= same(n)={same_n:.6f}",
            )
        )
    claims.append(
        Claim(
            "diminishing returns: the absolute advantage of the merged "
            "double-length suite shrinks as testing effort grows",
            advantages[0] > advantages[-1] - 1e-15,
            f"advantage at n={suite_sizes[0]}: {advantages[0]:.6f}; at "
            f"n={suite_sizes[-1]}: {advantages[-1]:.6f}",
        )
    )
    return ExperimentResult(
        experiment_id="e13",
        title="Cost scenarios: merged double-length common suite vs "
        "independent suites",
        paper_reference="section 3.4.1 (cost-benefit discussion)",
        columns=[
            "n",
            "independent n-suites",
            "common n-suite",
            "common 2n-suite",
            "indep(n) - same(2n)",
        ],
        rows=rows,
        claims=claims,
        notes="all values exact (inclusion-exclusion closed forms)",
    )
