"""Shared machinery for the joint-failure experiments E3–E8.

Each of those experiments validates one of eqs. (16)–(21) the same way:

1. compute the analytic per-demand joint failure probability through
   :func:`repro.core.joint.joint_failure_probability`;
2. on a tiny fully-enumerable model, compare against the brute-force
   ground truth of :func:`repro.analytic.exact_joint_per_demand`
   (validates the derivation);
3. on a standard-size model, compare against full-pipeline Monte Carlo on
   the most failure-prone demands (validates the generative story).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..analytic import exact_joint_per_demand
from ..core import joint_failure_probability
from ..core.regimes import TestingRegime
from ..mc import simulate_joint_on_demand
from ..populations import VersionPopulation
from ..rng import as_generator, spawn
from .base import Claim, engine_kwargs

__all__ = ["enumeration_claim", "mc_rows_and_claims", "pick_demands"]


def enumeration_claim(
    regime: TestingRegime,
    population_a: VersionPopulation,
    population_b: VersionPopulation | None,
    label: str,
    n_suites: int = 0,
) -> Claim:
    """Claim that the core formula equals brute-force enumeration."""
    analytic = joint_failure_probability(
        regime, population_a, population_b
    )
    ground_truth = exact_joint_per_demand(regime, population_a, population_b)
    gap = float(np.abs(analytic.joint - ground_truth).max())
    return Claim(
        f"derived formula matches brute-force enumeration ({label})",
        gap <= 1e-12,
        f"max abs gap {gap:.2e}",
    )


def pick_demands(
    joint: np.ndarray, count: int = 3
) -> np.ndarray:
    """The ``count`` demands with the largest joint failure probability.

    High-probability demands give the Monte-Carlo check statistical power;
    near-zero demands would pass vacuously.
    """
    order = np.argsort(joint)[::-1]
    return order[:count].astype(np.int64)


def mc_rows_and_claims(
    regime: TestingRegime,
    population_a: VersionPopulation,
    population_b: VersionPopulation | None,
    n_replications: int,
    n_suites: int,
    seed: int,
    demand_count: int = 3,
) -> Tuple[List[Sequence[object]], List[Claim], object]:
    """Rows ``[demand, analytic, MC, CI ok]`` plus CI claims.

    Returns ``(rows, claims, decomposition)`` so callers can reuse the
    analytic decomposition for regime-specific claims.
    """
    rng = as_generator(seed)
    decomposition = joint_failure_probability(
        regime,
        population_a,
        population_b,
        n_suites=n_suites,
        rng=spawn(rng),
    )
    demands = pick_demands(decomposition.joint, demand_count)
    rows: List[Sequence[object]] = []
    claims: List[Claim] = []
    for demand in demands:
        estimator = simulate_joint_on_demand(
            regime,
            population_a,
            int(demand),
            population_b,
            n_replications=n_replications,
            rng=spawn(rng),
            **engine_kwargs(),
        )
        analytic_value = float(decomposition.joint[demand])
        ok = estimator.contains(analytic_value, confidence=0.999)
        rows.append(
            [
                int(demand),
                analytic_value,
                float(decomposition.independence_part[demand]),
                float(decomposition.excess[demand]),
                estimator.mean,
                ok,
            ]
        )
        claims.append(
            Claim(
                f"full-pipeline MC confirms joint on demand {int(demand)} "
                "(99.9% Wilson CI)",
                ok,
                f"analytic {analytic_value:.6f}, MC {estimator.mean:.6f} "
                f"(n={estimator.count})",
            )
        )
    return rows, claims, decomposition
