"""M3 — campaign summary across the bundled mutation corpus.

One row per committed campaign: mutant counts, suite size, kill/survive
breakdown, mutation score, pooled detection probability and the fitted
heterogeneity exponent.  The claims gate the corpus quality the other
``m*`` experiments depend on — suites strong enough to kill most
mutants, and at least one target with material size heterogeneity.
"""

from __future__ import annotations

from ..errors import ModelError
# submodule imports keep the import graph acyclic (see m1)
from ..mutation.estimators import fit_size_biased_multinomial
from ..mutation.measured import measured_detection_data, measured_target_names
from .base import Claim, ExperimentResult
from .registry import register


@register("m3")
def run(seed: int = 0, fast: bool = True) -> ExperimentResult:
    """Run M3 and return its result table and claims."""
    names = measured_target_names()
    if not names:
        raise ModelError(
            "no committed campaign measurements; run tools/update_measured.py"
        )
    rows = []
    scores = {}
    alphas = {}
    suite_sizes = {}
    for name in names:
        data = measured_detection_data(name)
        fit = fit_size_biased_multinomial(data)
        detected = sum(1 for count in data.counts if count > 0)
        rows.append(
            [
                name,
                data.n_mutants,
                data.n_tests,
                detected,
                data.n_mutants - detected,
                fit.mutation_score,
                fit.mean_detection_prob,
                fit.alpha,
            ]
        )
        scores[name] = fit.mutation_score
        alphas[name] = fit.alpha
        suite_sizes[name] = data.n_tests

    weakest = min(scores, key=scores.get)
    most_heterogeneous = max(alphas, key=alphas.get)
    claims = [
        Claim(
            "the corpus has at least three measured targets",
            len(names) >= 3,
            f"{len(names)} targets: {', '.join(names)}",
        ),
        Claim(
            "every corpus suite kills at least half of its mutants",
            all(score >= 0.5 for score in scores.values()),
            f"weakest: {weakest} at {scores[weakest]:.2f}",
        ),
        Claim(
            "every corpus suite has at least five tests",
            all(size >= 5 for size in suite_sizes.values()),
        ),
        Claim(
            "at least one target shows material detection-size "
            "heterogeneity",
            any(alpha > 0.25 for alpha in alphas.values()),
            f"largest: {most_heterogeneous} at "
            f"alpha = {alphas[most_heterogeneous]:.3f}",
        ),
    ]
    return ExperimentResult(
        experiment_id="m3",
        title="Mutation campaign summary across the bundled corpus",
        paper_reference=(
            "empirical grounding for the fault-population assumptions "
            "(arXiv:2406.04360 methodology)"
        ),
        columns=[
            "target",
            "mutants",
            "tests",
            "killed",
            "survived",
            "mutation score",
            "mean detection prob",
            "alpha",
        ],
        rows=rows,
        claims=claims,
        notes=(
            "committed campaigns from examples/campaigns/ (regenerate with "
            "tools/update_measured.py); timeouts and collection errors "
            "count as detected by the whole suite"
        ),
    )
