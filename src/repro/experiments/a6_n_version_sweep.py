"""A6 — ablation: 1-out-of-N systems under shared vs independent suites.

The EL construction extends to N channels (``E[Θ^N]``), and so does the
paper's testing analysis: with one shared suite the N-channel joint is the
N-th suite-moment of ``ξ``.  This sweep shows the core policy consequence:
**adding channels buys far less under a shared campaign** — the common
suite correlates all N channels at once, so the marginal channel's benefit
collapses, while with independent suites it keeps compounding.
"""

from __future__ import annotations

import numpy as np

from ..analytic import BernoulliExactEngine
from .base import Claim, ExperimentResult
from .models import standard_scenario
from .registry import register


@register("a6")
def run(seed: int = 0, fast: bool = True) -> ExperimentResult:
    """Run A6 and return its result table and claims."""
    scenario = standard_scenario(seed)
    engine = BernoulliExactEngine(scenario.universe, scenario.profile)
    population = scenario.population
    n_tests = scenario.generator.size

    rows = []
    independent_values = []
    same_values = []
    for n_versions in (1, 2, 3, 4, 5):
        independent = engine.system_pfd_independent_suites_n_versions(
            population, n_tests, n_versions
        )
        same = engine.system_pfd_same_suite_n_versions(
            population, n_tests, n_versions
        )
        independent_values.append(independent)
        same_values.append(same)
        ratio = same / independent if independent > 0 else float("inf")
        rows.append([n_versions, independent, same, ratio])

    claims = [
        Claim(
            "single channel: both regimes coincide (nothing to share "
            "between channels)",
            abs(independent_values[0] - same_values[0]) <= 1e-12,
        ),
        Claim(
            "adding channels always helps, in both regimes",
            all(
                b <= a + 1e-15
                for a, b in zip(independent_values, independent_values[1:])
            )
            and all(
                b <= a + 1e-15 for a, b in zip(same_values, same_values[1:])
            ),
        ),
        Claim(
            "the shared suite dominates at every N (eq. (20) generalised)",
            all(
                s >= i - 1e-15
                for s, i in zip(same_values, independent_values)
            ),
        ),
        Claim(
            "the same-suite optimism ratio grows with N: each added "
            "channel is worth less under a shared campaign",
            all(
                same_values[k] / independent_values[k]
                <= same_values[k + 1] / independent_values[k + 1] + 1e-9
                for k in range(1, 4)
                if independent_values[k + 1] > 0
            ),
            "ratios: "
            + ", ".join(
                f"{s / i:.1f}" for s, i in zip(same_values[1:], independent_values[1:])
            ),
        ),
        Claim(
            "closed form at N=2 matches the dedicated second-moment path",
            abs(
                same_values[1]
                - engine.system_pfd_same_suite(population, n_tests)
            )
            <= 1e-12,
        ),
    ]
    return ExperimentResult(
        experiment_id="a6",
        title="1-out-of-N systems: shared-suite dependence caps the value "
        "of extra channels",
        paper_reference="extension of eqs. (20), (22), (23) to N channels "
        "(EL's E[Theta^N] argument)",
        columns=[
            "channels N",
            "independent suites",
            "same suite",
            "same/indep ratio",
        ],
        rows=rows,
        claims=claims,
        notes=f"exact closed forms; suite size {n_tests}",
    )
