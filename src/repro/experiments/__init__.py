"""The paper-reproduction experiment harness.

One module per experiment (``e01`` … ``e14`` for the paper's numbered
results and claims, ``a1`` … ``a5`` for the ablations listed in DESIGN.md).
Every experiment builds its models, computes the analytic predictions,
validates them against independent ground truth (exact enumeration and/or
full-pipeline Monte Carlo), and returns an
:class:`~repro.experiments.base.ExperimentResult` whose *claims* encode the
paper's qualitative statements.

Run from the command line::

    python -m repro.experiments            # everything
    python -m repro.experiments e07 e09    # selected experiments
    python -m repro.experiments --full     # larger replication counts

or programmatically::

    from repro.experiments import run_experiment
    result = run_experiment("e07", seed=0)
    print(result.passed)
"""

from .base import Claim, ExperimentResult
from .registry import (
    all_experiment_ids,
    get_runner,
    run_experiment,
    runner_params,
    validate_params,
)
from .report import format_result, format_summary

# importing the experiment modules registers them
from . import (  # noqa: F401  (registration side effect)
    e01_el_inequality,
    e02_lm_covariance,
    e03_indep_suites_same_pop,
    e04_indep_suites_forced_design,
    e05_forced_testing_diversity,
    e06_forced_both,
    e07_same_suite_variance,
    e08_same_suite_covariance,
    e09_marginal_same_pop,
    e10_marginal_forced,
    e11_imperfect_bounds,
    e12_back_to_back,
    e13_cost_tradeoff,
    e14_growth_curves,
    a1_difficulty_variance,
    a2_suite_size_sweep,
    a3_overlap_covariance,
    a4_constant_difficulty,
    a5_variance_extreme,
    a6_n_version_sweep,
    c1_localized_growth,
    c2_coverage_structure,
    c3_measured_coverage,
    m1_measured_growth,
    m2_detection_distribution,
    m3_campaign_summary,
    x1_clarifications,
    x2_common_mistakes,
    x3_combined_campaign,
)

__all__ = [
    "Claim",
    "ExperimentResult",
    "run_experiment",
    "get_runner",
    "runner_params",
    "validate_params",
    "all_experiment_ids",
    "format_result",
    "format_summary",
]
