"""Common result types for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

__all__ = ["Claim", "ExperimentResult"]


@dataclass(frozen=True)
class Claim:
    """One qualitative statement from the paper, checked against data.

    Attributes
    ----------
    description:
        The claim in plain words (quoting/paraphrasing the paper).
    holds:
        Whether the reproduction supports it.
    detail:
        The numbers behind the verdict, for the report.
    """

    description: str
    holds: bool
    detail: str = ""


@dataclass(frozen=True)
class ExperimentResult:
    """The output of one reproduction experiment.

    Attributes
    ----------
    experiment_id:
        Registry id, e.g. ``"e07"``.
    title:
        One-line experiment description.
    paper_reference:
        Which equation/section of the paper this reproduces.
    columns:
        Header of the result table.
    rows:
        Table body; cells are formatted by the reporter (floats get
        6 significant digits).
    claims:
        The qualitative checks.
    notes:
        Free-form remarks (model sizes, replication counts, substitutions).
    """

    experiment_id: str
    title: str
    paper_reference: str
    columns: Sequence[str]
    rows: List[Sequence[object]]
    claims: List[Claim]
    notes: str = ""

    @property
    def passed(self) -> bool:
        """True iff every claim holds."""
        return all(claim.holds for claim in self.claims)

    def claim_failures(self) -> List[Claim]:
        """The claims that did not hold (empty when :attr:`passed`)."""
        return [claim for claim in self.claims if not claim.holds]
