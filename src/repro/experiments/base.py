"""Common result types and run-wide engine configuration for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..errors import ModelError

__all__ = [
    "Claim",
    "ExperimentResult",
    "EngineConfig",
    "engine_config",
    "engine_kwargs",
    "set_engine_config",
]


@dataclass(frozen=True)
class EngineConfig:
    """Monte-Carlo engine selection shared by every experiment in one run.

    Experiment runners keep the registry signature ``(seed, fast)``; the
    CLI's ``--engine`` / ``--n-jobs`` flags are communicated to them
    through this process-wide configuration instead, which the simulation-
    driven experiments read via :func:`engine_kwargs` and pass down to the
    ``simulate_*`` / bounds / campaign drivers.

    Attributes
    ----------
    engine:
        ``"auto"`` (default — batch whenever the testing process supports
        it), ``"batch"`` (fail loudly if it cannot), or ``"scalar"`` (the
        reference per-replication loops).
    n_jobs:
        Worker processes for chunk sharding on the batch path.
    """

    engine: str = "auto"
    n_jobs: int = 1

    def __post_init__(self) -> None:
        if self.engine not in ("auto", "batch", "scalar"):
            raise ModelError(
                "engine must be one of ('auto', 'batch', 'scalar'), got "
                f"{self.engine!r}"
            )
        if self.n_jobs < 1:
            raise ModelError(f"n_jobs must be >= 1, got {self.n_jobs}")


_ENGINE_CONFIG = EngineConfig()


def set_engine_config(engine: str = "auto", n_jobs: int = 1) -> EngineConfig:
    """Install the run-wide engine configuration; returns the previous one."""
    global _ENGINE_CONFIG
    previous = _ENGINE_CONFIG
    _ENGINE_CONFIG = EngineConfig(engine=engine, n_jobs=n_jobs)
    return previous


def engine_config() -> EngineConfig:
    """The currently installed run-wide engine configuration."""
    return _ENGINE_CONFIG


def engine_kwargs() -> dict:
    """The configuration as keyword arguments for engine-aware drivers."""
    return {"engine": _ENGINE_CONFIG.engine, "n_jobs": _ENGINE_CONFIG.n_jobs}


@dataclass(frozen=True)
class Claim:
    """One qualitative statement from the paper, checked against data.

    Attributes
    ----------
    description:
        The claim in plain words (quoting/paraphrasing the paper).
    holds:
        Whether the reproduction supports it.
    detail:
        The numbers behind the verdict, for the report.
    """

    description: str
    holds: bool
    detail: str = ""


@dataclass(frozen=True)
class ExperimentResult:
    """The output of one reproduction experiment.

    Attributes
    ----------
    experiment_id:
        Registry id, e.g. ``"e07"``.
    title:
        One-line experiment description.
    paper_reference:
        Which equation/section of the paper this reproduces.
    columns:
        Header of the result table.
    rows:
        Table body; cells are formatted by the reporter (floats get
        6 significant digits).
    claims:
        The qualitative checks.
    notes:
        Free-form remarks (model sizes, replication counts, substitutions).
    """

    experiment_id: str
    title: str
    paper_reference: str
    columns: Sequence[str]
    rows: List[Sequence[object]]
    claims: List[Claim]
    notes: str = ""

    @property
    def passed(self) -> bool:
        """True iff every claim holds."""
        return all(claim.holds for claim in self.claims)

    def claim_failures(self) -> List[Claim]:
        """The claims that did not hold (empty when :attr:`passed`)."""
        return [claim for claim in self.claims if not claim.holds]
