"""Common result types and run-wide engine configuration for experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

import numpy as np

from ..errors import ModelError

__all__ = [
    "Claim",
    "ExperimentResult",
    "EngineConfig",
    "canonical_cell",
    "engine_config",
    "engine_kwargs",
    "require_batch_engine",
    "set_engine_config",
]


@dataclass(frozen=True)
class EngineConfig:
    """Monte-Carlo engine selection shared by every experiment in one run.

    Experiment runners keep the registry signature ``(seed, fast)``; the
    CLI's ``--engine`` / ``--n-jobs`` flags are communicated to them
    through this process-wide configuration instead, which the simulation-
    driven experiments read via :func:`engine_kwargs` and pass down to the
    ``simulate_*`` / bounds / campaign drivers.

    Attributes
    ----------
    engine:
        ``"auto"`` (default — batch whenever the testing process supports
        it), ``"batch"`` (fail loudly if it cannot), ``"compiled"`` (the
        native counter-RNG kernels; needs the ``[compiled]`` extra),
        ``"fastest"`` (alias: compiled when numba is importable, else
        batch — trades cross-machine bit-stability for speed; the run's
        result carries a provenance note in ``extra``), or ``"scalar"``
        (the reference per-replication loops).
    n_jobs:
        Worker processes for chunk sharding on the batch/compiled paths.
    """

    engine: str = "auto"
    n_jobs: int = 1

    def __post_init__(self) -> None:
        if self.engine not in ("auto", "batch", "compiled", "fastest", "scalar"):
            raise ModelError(
                "engine must be one of ('auto', 'batch', 'compiled', "
                f"'fastest', 'scalar'), got {self.engine!r}"
            )
        if self.n_jobs < 1:
            raise ModelError(f"n_jobs must be >= 1, got {self.n_jobs}")


_ENGINE_CONFIG = EngineConfig()


def set_engine_config(engine: str = "auto", n_jobs: int = 1) -> EngineConfig:
    """Install the run-wide engine configuration; returns the previous one."""
    global _ENGINE_CONFIG
    previous = _ENGINE_CONFIG
    _ENGINE_CONFIG = EngineConfig(engine=engine, n_jobs=n_jobs)
    return previous


def engine_config() -> EngineConfig:
    """The currently installed run-wide engine configuration."""
    return _ENGINE_CONFIG


def engine_kwargs() -> dict:
    """The configuration as keyword arguments for engine-aware drivers."""
    return {"engine": _ENGINE_CONFIG.engine, "n_jobs": _ENGINE_CONFIG.n_jobs}


def require_batch_engine(context: str) -> None:
    """Reject a run-wide non-batch engine for batch-only paths.

    The adaptive precision engine rides the batch kernels exclusively; an
    experiment honouring a ``precision`` knob calls this so an explicit
    ``--engine scalar`` fails loudly instead of being silently bypassed —
    the same contract the ``simulate_*`` drivers enforce for
    ``precision=``.
    """
    if _ENGINE_CONFIG.engine in ("scalar", "compiled"):
        raise ModelError(
            f"{context} runs on the batch kernels; drop "
            f"--engine {_ENGINE_CONFIG.engine} or the precision knob"
        )


# Non-finite floats are not valid JSON; canonical payloads spell them out
# as a tagged one-key object — unambiguous because the tag key is reserved
# (canonical mappings may not use it) — so every record stays loadable by
# any strict JSON parser.
_NONFINITE_TAG = "__nonfinite__"
_NONFINITE = {"nan": math.nan, "inf": math.inf, "-inf": -math.inf}


def canonical_cell(value: object):
    """A table cell (or param value) as a JSON-safe, platform-stable value.

    Floats are the delicate case: snapshots and store records must not
    churn across platforms, so every float is reduced to a Python ``float``
    whose JSON form is ``repr``-stable (the shortest round-tripping decimal
    of its IEEE-754 double — identical on every platform for the same
    bits).  NumPy scalars are converted to their Python counterparts;
    non-finite floats become tagged strings (JSON has no NaN/Infinity).
    """
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        value = float(value)
        if not math.isfinite(value):
            if math.isnan(value):
                return {_NONFINITE_TAG: "nan"}
            return {_NONFINITE_TAG: "inf" if value > 0 else "-inf"}
        return value
    if value is None or isinstance(value, str):
        return value
    if isinstance(value, np.ndarray):
        return [canonical_cell(item) for item in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [canonical_cell(item) for item in value]
    if isinstance(value, Mapping):
        if _NONFINITE_TAG in value:
            raise ModelError(
                f"mapping key {_NONFINITE_TAG!r} is reserved for tagged "
                "non-finite floats"
            )
        # key-sorted so the same mapping always produces the same insertion
        # order (and therefore the same JSON bytes); string keys only, to
        # stay within the JSON object model — precision targets and
        # adaptive metadata are the motivating payloads
        return {
            str(key): canonical_cell(value[key])
            for key in sorted(value, key=str)
        }
    raise ModelError(
        f"cannot serialize cell of type {type(value).__name__}: {value!r}"
    )


def _decode_cell(value: object):
    """Inverse of :func:`canonical_cell` for the tagged non-finite objects."""
    if (
        isinstance(value, dict)
        and len(value) == 1
        and _NONFINITE_TAG in value
        and value[_NONFINITE_TAG] in _NONFINITE
    ):
        return _NONFINITE[value[_NONFINITE_TAG]]
    if isinstance(value, dict):
        return {key: _decode_cell(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode_cell(v) for v in value]
    return value


@dataclass(frozen=True)
class Claim:
    """One qualitative statement from the paper, checked against data.

    Attributes
    ----------
    description:
        The claim in plain words (quoting/paraphrasing the paper).
    holds:
        Whether the reproduction supports it.
    detail:
        The numbers behind the verdict, for the report.
    """

    description: str
    holds: bool
    detail: str = ""

    def to_payload(self) -> Dict[str, object]:
        """JSON-safe form; ``holds`` is coerced to a plain bool so numpy
        bools (a common experiment-code slip) serialize deterministically."""
        return {
            "description": str(self.description),
            "holds": bool(self.holds),
            "detail": str(self.detail),
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "Claim":
        """Rebuild a claim from :meth:`to_payload` output."""
        return cls(
            description=payload["description"],
            holds=payload["holds"],
            detail=payload.get("detail", ""),
        )


@dataclass(frozen=True)
class ExperimentResult:
    """The output of one reproduction experiment.

    Attributes
    ----------
    experiment_id:
        Registry id, e.g. ``"e07"``.
    title:
        One-line experiment description.
    paper_reference:
        Which equation/section of the paper this reproduces.
    columns:
        Header of the result table.
    rows:
        Table body; cells are formatted by the reporter (floats get
        6 significant digits).
    claims:
        The qualitative checks.
    notes:
        Free-form remarks (model sizes, replication counts, substitutions).
    extra:
        Structured machine-readable metadata beyond the table — the
        adaptive precision engine records its convergence report here
        (``extra["adaptive"]``: replications used, achieved half-widths,
        per-metric ``converged`` flags), and the sweep layer's Neyman
        allocator reads it back.  Empty for classic fixed-n runs, and
        omitted from payloads when empty, so snapshots of non-adaptive
        runs are byte-identical to earlier releases.
    """

    experiment_id: str
    title: str
    paper_reference: str
    columns: Sequence[str]
    rows: List[Sequence[object]]
    claims: List[Claim]
    notes: str = ""
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """True iff every claim holds."""
        return all(claim.holds for claim in self.claims)

    def claim_failures(self) -> List[Claim]:
        """The claims that did not hold (empty when :attr:`passed`)."""
        return [claim for claim in self.claims if not claim.holds]

    def to_payload(self) -> Dict[str, object]:
        """The full result as a JSON-safe, deterministic dictionary.

        This is the structured counterpart of the printed report: golden
        snapshots, the result store and the ``aggregate`` reporter all
        consume this payload.  Cells go through :func:`canonical_cell`, so
        the same result produces byte-identical JSON on every platform.
        """
        payload = {
            "experiment_id": str(self.experiment_id),
            "title": str(self.title),
            "paper_reference": str(self.paper_reference),
            "columns": [str(column) for column in self.columns],
            "rows": [[canonical_cell(cell) for cell in row] for row in self.rows],
            "claims": [claim.to_payload() for claim in self.claims],
            "notes": str(self.notes),
            "passed": bool(self.passed),
        }
        if self.extra:
            payload["extra"] = canonical_cell(self.extra)
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_payload` output.

        Round-trips bit-for-bit: numeric cells come back as the exact
        floats/ints that went in (non-finite floats included).
        """
        return cls(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            paper_reference=payload["paper_reference"],
            columns=list(payload["columns"]),
            rows=[[_decode_cell(cell) for cell in row] for row in payload["rows"]],
            claims=[Claim.from_payload(claim) for claim in payload["claims"]],
            notes=payload.get("notes", ""),
            extra=_decode_cell(payload.get("extra", {})),
        )
