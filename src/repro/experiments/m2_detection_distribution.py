"""M2 — the measured detection-count distribution versus its models.

For one corpus target's committed campaign, compare three distributions
of "how many tests detect a random mutant": the empirical histogram, the
fitted size-biased (rank–Zipf) multinomial's predictive pmf, and the
classical equal-size baseline (a single binomial at the pooled detection
rate).  The fitted model must beat the equal-size baseline in total
variation — that gap *is* the evidence that real detection data carry
the fault-size heterogeneity the Popov–Littlewood model's difficulty
function needs.
"""

from __future__ import annotations

import numpy as np

# submodule imports keep the import graph acyclic (see m1)
from ..mutation.estimators import (
    detection_count_distribution,
    fit_size_biased_multinomial,
    total_variation,
)
from ..mutation.measured import measured_detection_data
from .base import Claim, ExperimentResult
from .registry import register


@register("m2")
def run(
    seed: int = 0,
    fast: bool = True,
    target: str = "bsearch",
) -> ExperimentResult:
    """Run M2 and return its result table and claims."""
    data = measured_detection_data(target)
    fit = fit_size_biased_multinomial(data)
    empirical = detection_count_distribution(data)
    fitted = fit.fitted_count_pmf()
    equal_size = fit.equal_size_count_pmf()

    rows = []
    for count in range(data.n_tests + 1):
        rows.append(
            [
                count,
                float(empirical[count]),
                float(fitted[count]),
                float(equal_size[count]),
            ]
        )

    tv_fitted = total_variation(empirical, fitted)
    tv_equal = total_variation(empirical, equal_size)
    counts = np.arange(data.n_tests + 1)
    empirical_mean = float(np.dot(counts, empirical))
    fitted_mean = float(np.dot(counts, fitted))
    claims = [
        Claim(
            "all three pmfs are proper distributions (sum to 1)",
            bool(
                abs(empirical.sum() - 1.0) < 1e-9
                and abs(fitted.sum() - 1.0) < 1e-9
                and abs(equal_size.sum() - 1.0) < 1e-9
            ),
        ),
        Claim(
            "the fit is non-degenerate (at least one mutant was detected)",
            not fit.degenerate,
            f"mutation score {fit.mutation_score:.2f}",
        ),
        Claim(
            "the fitted model preserves the empirical mean detection count",
            abs(fitted_mean - empirical_mean)
            <= 0.05 * max(empirical_mean, 1e-12),
            f"empirical mean {empirical_mean:.3f}, fitted mean "
            f"{fitted_mean:.3f}",
        ),
        Claim(
            "the size-biased fit is closer to the data than the equal-size "
            "baseline (total variation)",
            tv_fitted <= tv_equal + 1e-12,
            f"TV fitted {tv_fitted:.4f} vs TV equal-size {tv_equal:.4f}",
        ),
        Claim(
            "the fitted heterogeneity exponent is materially above zero "
            "(equal-size faults are rejected)",
            fit.alpha > 0.25,
            f"alpha = {fit.alpha:.3f}",
        ),
    ]
    return ExperimentResult(
        experiment_id="m2",
        title="Detection-count distribution: empirical vs size-biased fit "
        "vs equal-size baseline",
        paper_reference=(
            "difficulty-function heterogeneity (section 2), estimated per "
            "arXiv:2406.04360"
        ),
        columns=[
            "tests detecting",
            "empirical pmf",
            "fitted pmf",
            "equal-size pmf",
        ],
        rows=rows,
        claims=claims,
        notes=(
            f"target {target!r}: {data.n_mutants} mutants x {data.n_tests} "
            f"tests, N = {data.total_detections} detections; alpha = "
            f"{fit.alpha:.3f}, TV(fitted) = {tv_fitted:.4f}, "
            f"TV(equal-size) = {tv_equal:.4f}"
        ),
        extra={
            "alpha": fit.alpha,
            "tv_fitted": tv_fitted,
            "tv_equal_size": tv_equal,
        },
    )
