"""Monte-Carlo estimation layer.

Simulates the paper's *full generative process* — draw versions from ``S``,
suites from ``M`` per the regime's coupling, apply testing, evaluate failures
— and reports estimates with confidence intervals.  Used to validate the
analytic layer and to handle models outside its reach (non-enumerable suite
measures, imperfect oracles, back-to-back dynamics).
"""

from .estimator import MeanEstimator, ProportionEstimator
from .experiments import (
    simulate_joint_on_demand,
    simulate_marginal_system_pfd,
    simulate_untested_joint_on_demand,
    simulate_version_pfd,
)
from .batch import (
    apply_blind_testing_batch,
    apply_coverage_testing_batch,
    apply_imperfect_testing_batch,
    apply_testing_batch,
    back_to_back_batch,
    back_to_back_envelope_batch,
    back_to_back_supported,
    batch_supported,
    run_tasks,
    simulate_joint_on_demand_batch,
    simulate_marginal_system_pfd_batch,
    simulate_untested_joint_on_demand_batch,
    simulate_version_pfd_batch,
)
from .convergence import SequentialResult, estimate_until
from .kernels import (
    back_to_back_envelope_compiled,
    compiled_available,
    compiled_supported,
    simulate_joint_on_demand_compiled,
    simulate_marginal_system_pfd_compiled,
    simulate_untested_joint_on_demand_compiled,
    simulate_version_pfd_compiled,
)

__all__ = [
    "ProportionEstimator",
    "MeanEstimator",
    "simulate_joint_on_demand",
    "simulate_untested_joint_on_demand",
    "simulate_marginal_system_pfd",
    "simulate_version_pfd",
    "apply_testing_batch",
    "apply_imperfect_testing_batch",
    "apply_blind_testing_batch",
    "apply_coverage_testing_batch",
    "back_to_back_batch",
    "back_to_back_envelope_batch",
    "back_to_back_supported",
    "batch_supported",
    "simulate_joint_on_demand_batch",
    "simulate_untested_joint_on_demand_batch",
    "simulate_marginal_system_pfd_batch",
    "simulate_version_pfd_batch",
    "run_tasks",
    "back_to_back_envelope_compiled",
    "compiled_available",
    "compiled_supported",
    "simulate_joint_on_demand_compiled",
    "simulate_untested_joint_on_demand_compiled",
    "simulate_marginal_system_pfd_compiled",
    "simulate_version_pfd_compiled",
    "estimate_until",
    "SequentialResult",
]
