"""Vectorized batch Monte-Carlo engine.

The scalar drivers in :mod:`repro.mc.experiments` replicate the paper's
generative story one replication at a time: sample a version, draw a suite,
test, score.  This module runs the *same* story as matrix kernels over a
whole block of replications at once:

* an ``(R, F)`` boolean **fault matrix** — row ``r`` marks the faults of
  version ``r``, drawn in one block from the population
  (:meth:`~repro.populations.VersionPopulation.sample_fault_matrix`);
* an ``(R, D)`` boolean **suite mask** block — row ``r`` is the demand
  membership of replication ``r``'s suite, drawn with the regime's coupling
  (:meth:`~repro.core.regimes.TestingRegime.draw_suite_masks`) — or, for
  imperfect testing, the ``(R, D)`` integer **occurrence-count** block
  (:meth:`~repro.core.regimes.TestingRegime.draw_suite_counts`), because
  each execution of a failing demand is a fresh detection opportunity;
* the **testing closure** as matrix kernels: one matrix product for the
  perfect-oracle case (:func:`apply_testing_batch`), binomial detection
  counts plus per-fault Bernoulli survival draws for the §4.1
  imperfect-oracle/imperfect-fixing case
  (:func:`apply_imperfect_testing_batch`), and a demand-ordered masked
  update loop for §4.2 back-to-back testing (:func:`back_to_back_batch`) —
  the only genuinely sequential axis in the paper's testing processes;
* **scoring** as matrix-vector products against the usage profile
  (:meth:`~repro.faults.FaultUniverse.failure_matrix`).

Chunk results stream into the existing :class:`ProportionEstimator` /
:class:`MeanEstimator` via their ``add_many`` merges, so confidence-interval
semantics are unchanged.  Every public function is a drop-in counterpart of
its scalar namesake; :class:`~repro.testing.ImperfectOracle` and
:class:`~repro.testing.ImperfectFixing` (and matched blind-spot pairs) run
on the vectorized path — only *custom* oracle/fixing policies, whose
dynamics the engine cannot introspect, are rejected (use
``engine="scalar"`` for those).

Why imperfect testing vectorizes at all: although the scalar engine
processes demands in suite order, the §4.1 process is order-independent *in
distribution*.  Couple every occurrence ``o`` with an oracle coin and every
``(o, fault)`` pair with a fixing coin; a fault is removed iff some
occurrence of a covering demand has both coins heads, regardless of the
order occurrences are played in.  Conditioning on the per-demand binomial
count of detecting occurrences ``K(x)``, faults survive independently with
probability ``(1 - fix_p) ** sum_x K(x)·cover(f, x)`` — the shared ``K``
carries exactly the cross-fault correlation the shared oracle coins induce.
Back-to-back testing is *not* order-independent (detection depends on the
co-evolving partner version), so its kernel iterates demand positions and
vectorizes across replications.

Execution is chunked (``chunk_size``) to bound peak memory, and chunks can
optionally be sharded across worker processes (``n_jobs``).  Chunk seeds are
drawn up-front from the root stream and results are merged in chunk order,
so a given ``(rng, chunk_size)`` pair yields bit-identical estimates for any
``n_jobs``.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from functools import partial
from typing import Callable, List, Tuple

import numpy as np

from ..demand import UsageProfile
from ..errors import ModelError
from ..populations import VersionPopulation
from ..rng import as_generator, spawn_many
from ..testing import (
    BackToBackComparator,
    FixingPolicy,
    Oracle,
    SuiteGenerator,
    demand_sequences_to_counts,
)
from ..testing.fixing import ImperfectFixing, PerfectFixing
from ..testing.oracle import ImperfectOracle, PerfectOracle
from ..types import SeedLike
from ..versions.outputs import (
    OPTIMISTIC,
    PESSIMISTIC,
    SHARED_FAULT,
    FailureOutputModel,
)
from ..core.regimes import TestingRegime
from . import experiments as _scalar
from .estimator import MeanEstimator, ProportionEstimator

__all__ = [
    "apply_testing_batch",
    "apply_imperfect_testing_batch",
    "apply_blind_testing_batch",
    "apply_coverage_testing_batch",
    "back_to_back_batch",
    "back_to_back_envelope_batch",
    "back_to_back_supported",
    "batch_supported",
    "simulate_untested_joint_on_demand_batch",
    "simulate_joint_on_demand_batch",
    "simulate_marginal_system_pfd_batch",
    "simulate_version_pfd_batch",
    "run_tasks",
]

_DEFAULT_CHUNK = 8192

# testing-plan kinds resolved by _testing_plan
_PERFECT = "perfect"
_BERNOULLI = "bernoulli"
_BLIND = "blind"
_COVERAGE = "coverage"


def _testing_plan(
    oracle: Oracle | None, fixing: FixingPolicy | None
) -> tuple | None:
    """Resolve an (oracle, fixing) pair to a batch execution plan.

    Returns ``(kind, detection_p, fix_p, extra)`` where ``kind`` is one
    of ``"perfect"`` (set-wise mask closure), ``"bernoulli"`` (the §4.1
    binomial-detection kernel), ``"blind"`` (perfect closure restricted to
    faults outside a shared blind spot) or ``"coverage"`` (per-fault
    detection probabilities derived from a coverage matrix — see
    :mod:`repro.coverage.detection`), or ``None`` when the pair is a
    custom policy the engine cannot model.  ``extra`` carries the blind
    fault ids or the per-fault probability tuple for those two kinds.

    Blind-spot and coverage pairs are recognised structurally — both
    members expose the same ``blind_fault_ids`` (resp.
    ``fault_detection_probs``) — so neither :mod:`repro.extensions.mistakes`
    nor :mod:`repro.coverage` needs to be imported here.  Each pair is only
    vectorizable *together*: a half-supplied or mismatched pair falls back
    to the scalar path.
    """
    blind_oracle = getattr(oracle, "blind_fault_ids", None)
    blind_fixing = getattr(fixing, "blind_fault_ids", None)
    if blind_oracle is not None or blind_fixing is not None:
        if blind_oracle is None or blind_fixing is None:
            return None
        ids = tuple(int(i) for i in blind_oracle)
        if ids != tuple(int(i) for i in blind_fixing):
            return None
        return (_BLIND, 1.0, 1.0, ids)
    coverage_oracle = getattr(oracle, "fault_detection_probs", None)
    coverage_fixing = getattr(fixing, "fault_detection_probs", None)
    if coverage_oracle is not None or coverage_fixing is not None:
        if coverage_oracle is None or coverage_fixing is None:
            return None
        probs = tuple(float(p) for p in coverage_oracle)
        if probs != tuple(float(p) for p in coverage_fixing):
            return None
        return (_COVERAGE, 1.0, 1.0, probs)
    # exact type matches only: a *subclass* may override the per-demand
    # behaviour arbitrarily, so it must take the scalar path
    if oracle is None or type(oracle) is PerfectOracle:
        detection_p = 1.0
    elif type(oracle) is ImperfectOracle:
        detection_p = float(oracle.detection_probability)
    else:
        return None
    if fixing is None or type(fixing) is PerfectFixing:
        fix_p = 1.0
    elif type(fixing) is ImperfectFixing:
        fix_p = float(fixing.fix_probability)
    else:
        return None
    if detection_p == 1.0 and fix_p == 1.0:
        return (_PERFECT, 1.0, 1.0, None)
    return (_BERNOULLI, detection_p, fix_p, None)


def batch_supported(
    oracle: Oracle | None = None, fixing: FixingPolicy | None = None
) -> bool:
    """True iff the testing process runs on the vectorized path.

    The batch engine models the paper's §3 perfect process (one matrix
    product), the §4.1 :class:`~repro.testing.ImperfectOracle` /
    :class:`~repro.testing.ImperfectFixing` relaxations (binomial detection
    counts + Bernoulli survival masks — see the module docstring for why
    that matches the demand-ordered scalar process in distribution),
    matched blind-spot oracle/fixing pairs from
    :mod:`repro.extensions.mistakes`, and matched coverage pairs from
    :mod:`repro.coverage.detection` (per-fault Bernoulli survival under
    coverage-derived detection probabilities).  Only custom policy
    classes, whose per-demand dynamics the engine cannot introspect,
    return False.
    """
    return _testing_plan(oracle, fixing) is not None


def _require_plan(
    oracle: Oracle | None, fixing: FixingPolicy | None
) -> tuple:
    plan = _testing_plan(oracle, fixing)
    if plan is None:
        raise ModelError(
            "the batch engine cannot model custom oracle/fixing policies "
            f"({type(oracle).__name__}/{type(fixing).__name__}); supported: "
            "Perfect/Imperfect oracles and fixing, and matched blind-spot "
            "or coverage pairs.  Use engine='scalar' (or engine='auto' for "
            "automatic fallback) for custom policies"
        )
    return plan


def back_to_back_supported(fixing: FixingPolicy | None = None) -> bool:
    """True iff back-to-back testing with ``fixing`` runs on the batch path.

    The §4.2 comparator itself is always expressible (all three output
    models reduce to boolean cause-mask algebra); only the follow-up fixing
    policy can force the scalar path, exactly as in :func:`batch_supported`
    — including its exact-type rule: a *subclass* may override
    ``faults_removed`` arbitrarily, so it must take the scalar path.
    """
    return fixing is None or type(fixing) in (PerfectFixing, ImperfectFixing)


def apply_testing_batch(
    fault_matrix: np.ndarray,
    suite_masks: np.ndarray,
    universe,
) -> np.ndarray:
    """Perfect-oracle testing closure over a replication block.

    ``fault_matrix`` is ``(R, F)`` boolean (versions as fault-presence
    rows), ``suite_masks`` is ``(R, D)`` boolean (suites as demand masks).
    Returns the ``(R, F)`` post-test fault matrix: row ``r`` keeps exactly
    the faults of version ``r`` whose failure region suite ``r`` misses —
    the batched form of :func:`repro.testing.apply_testing` under perfect
    detection and fixing (the paper's §3 process).
    """
    fault_matrix = np.asarray(fault_matrix, dtype=bool)
    triggered = universe.triggered_matrix(suite_masks)
    if fault_matrix.shape != triggered.shape:
        raise ModelError(
            f"fault matrix {fault_matrix.shape} and suite block "
            f"{np.asarray(suite_masks).shape} have mismatched replication "
            "counts or universes"
        )
    return fault_matrix & ~triggered


def apply_imperfect_testing_batch(
    fault_matrix: np.ndarray,
    suite_counts: np.ndarray,
    universe,
    detection_probability: float,
    fix_probability: float,
    rng: SeedLike = None,
) -> np.ndarray:
    """§4.1 imperfect-oracle/imperfect-fixing closure over a block.

    ``suite_counts`` is the ``(R, D)`` integer occurrence-count block —
    entry ``(r, x)`` is how often suite ``r`` executes demand ``x``; unlike
    the perfect case, repeats matter because every execution of a failing
    demand is another independent detection opportunity.

    The kernel draws, per ``(r, x)``, the binomial number of *detecting*
    occurrences ``K[r, x] ~ Binomial(counts[r, x], detection_p)``; a fault
    then survives independently (given ``K``) with probability
    ``(1 - fix_p) ** (K @ cover.T)`` — each detecting occurrence of a
    covering demand is one independent chance to remove it, and the shared
    ``K`` reproduces the cross-fault correlation of the scalar process's
    shared per-demand oracle decisions.  This equals the demand-ordered
    scalar process in distribution (see the module docstring); it is not
    bit-identical to it because the scalar engine consumes randomness
    conditionally.
    """
    fault_matrix = np.asarray(fault_matrix, dtype=bool)
    counts = np.asarray(suite_counts)
    if counts.ndim != 2 or counts.shape[1] != universe.space.size:
        raise ModelError(
            f"suite count block of shape {counts.shape} does not match "
            f"demand space size {universe.space.size}"
        )
    if fault_matrix.shape != (counts.shape[0], len(universe)):
        raise ModelError(
            f"fault matrix {fault_matrix.shape} and suite count block "
            f"{counts.shape} have mismatched replication counts or universes"
        )
    if not len(universe):
        return fault_matrix.copy()
    generator = as_generator(rng)
    if detection_probability >= 1.0:
        detecting = counts
    else:
        detecting = generator.binomial(counts, detection_probability)
    # chances[r, f] = number of detecting occurrences covering fault f;
    # float64 matmul routes through BLAS and is exact for realistic counts
    chances = detecting.astype(np.float64) @ universe.coverage.T.astype(np.float64)
    if fix_probability >= 1.0:
        # 0 ** 0 == 1: untouched faults survive, any chance removes
        return fault_matrix & (chances < 0.5)
    survival = (1.0 - fix_probability) ** chances
    return fault_matrix & (generator.random(fault_matrix.shape) < survival)


def apply_coverage_testing_batch(
    fault_matrix: np.ndarray,
    suite_counts: np.ndarray,
    universe,
    fault_detection_probs,
    rng: SeedLike = None,
) -> np.ndarray:
    """Coverage-limited testing closure over a block — per-fault Bernoulli.

    The heterogeneous twin of :func:`apply_imperfect_testing_batch`:
    failure observation is perfect (every execution of a covering demand
    is a diagnosis chance), but fault ``f`` is diagnosed-and-removed per
    chance only with its coverage-derived probability ``q_f``
    (:func:`repro.coverage.fault_detection_probs`), so it survives with
    probability ``(1 - q_f) ** chances``.  Matches the demand-ordered
    scalar :class:`~repro.coverage.CoverageOracle` /
    :class:`~repro.coverage.CoverageFixing` process in distribution by
    the same memoryless-geometric argument as §4.1 — each fault's removal
    depends only on its own independent per-execution draws.
    """
    fault_matrix = np.asarray(fault_matrix, dtype=bool)
    counts = np.asarray(suite_counts)
    if counts.ndim != 2 or counts.shape[1] != universe.space.size:
        raise ModelError(
            f"suite count block of shape {counts.shape} does not match "
            f"demand space size {universe.space.size}"
        )
    if fault_matrix.shape != (counts.shape[0], len(universe)):
        raise ModelError(
            f"fault matrix {fault_matrix.shape} and suite count block "
            f"{counts.shape} have mismatched replication counts or universes"
        )
    probs = np.asarray(fault_detection_probs, dtype=np.float64)
    if probs.shape != (len(universe),):
        raise ModelError(
            f"fault_detection_probs of shape {probs.shape} does not match "
            f"universe size {len(universe)}"
        )
    if not len(universe):
        return fault_matrix.copy()
    generator = as_generator(rng)
    chances = counts.astype(np.float64) @ universe.coverage.T.astype(np.float64)
    # 0 ** 0 == 1: an untouched fault always survives, a q_f == 1 fault
    # is removed by its first chance
    survival = (1.0 - probs[None, :]) ** chances
    return fault_matrix & (generator.random(fault_matrix.shape) < survival)


def apply_blind_testing_batch(
    fault_matrix: np.ndarray,
    suite_masks: np.ndarray,
    universe,
    blind_fault_ids,
) -> np.ndarray:
    """Blind-spot testing closure: perfect closure outside the blind spot.

    Models a matched blind oracle/fixing pair (the team that wrote the
    mistaken spec also judges and repairs by it): faults in
    ``blind_fault_ids`` are never detected as wrong and never removed, while
    every other fault behaves exactly as under perfect testing — a visible
    fault always reveals itself on its own region, so the closure is the
    perfect one restricted to visible columns, and needs only membership
    masks.
    """
    fault_matrix = np.asarray(fault_matrix, dtype=bool)
    triggered = universe.triggered_matrix(suite_masks)
    if fault_matrix.shape != triggered.shape:
        raise ModelError(
            f"fault matrix {fault_matrix.shape} and suite block "
            f"{np.asarray(suite_masks).shape} have mismatched replication "
            "counts or universes"
        )
    visible = ~universe.presence_mask(
        np.asarray(blind_fault_ids, dtype=np.int64)
    )
    return fault_matrix & ~(triggered & visible[None, :])


def _identical_cause_rows(causes_a: np.ndarray, causes_b: np.ndarray) -> np.ndarray:
    """Row-wise equality of two cause-mask blocks as fault-*id* sets.

    Mirrors the scalar shared-fault model, which compares the two versions'
    ``faults_causing_failure`` id arrays: when the universes differ in size
    the narrower mask is padded with absent faults.
    """
    width = max(causes_a.shape[1], causes_b.shape[1])

    def _pad(block: np.ndarray) -> np.ndarray:
        if block.shape[1] == width:
            return block
        padded = np.zeros((block.shape[0], width), dtype=bool)
        padded[:, : block.shape[1]] = block
        return padded

    return (_pad(causes_a) == _pad(causes_b)).all(axis=1)


def back_to_back_batch(
    fault_matrix_a: np.ndarray,
    fault_matrix_b: np.ndarray,
    sequences: np.ndarray,
    universe_a,
    universe_b,
    comparator: BackToBackComparator,
    fixing: FixingPolicy | None = None,
    rng: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """§4.2 back-to-back testing over a replication block of version pairs.

    ``sequences`` is the int ``(R, L)`` demand-sequence block (``-1``
    padded): row ``r`` is the shared suite both channels of pair ``r``
    execute in order.  Back-to-back detection depends on the co-evolving
    partner (a demand mismatches only while the *other* version still
    disagrees), so — unlike every §3/§4.1 closure — the demand axis is
    genuinely sequential; the kernel replays positions left to right and
    vectorizes each step across all pairs as masked matrix updates.

    Returns the post-test ``(R, F_A)`` and ``(R, F_B)`` fault matrices.
    The inputs are not modified.
    """
    mode = comparator.output_model.mode
    if fixing is None or type(fixing) is PerfectFixing:
        fix_probability = 1.0
    elif type(fixing) is ImperfectFixing:
        fix_probability = float(fixing.fix_probability)
    else:
        raise ModelError(
            "back-to-back batch kernel cannot model custom fixing policy "
            f"{type(fixing).__name__}; use the scalar path"
        )
    faults_a = np.array(fault_matrix_a, dtype=bool)
    faults_b = np.array(fault_matrix_b, dtype=bool)
    seqs = np.asarray(sequences, dtype=np.int64)
    if seqs.ndim != 2 or seqs.shape[0] != faults_a.shape[0]:
        raise ModelError(
            f"sequence block {seqs.shape} does not match replication count "
            f"{faults_a.shape[0]}"
        )
    if faults_b.shape[0] != faults_a.shape[0]:
        raise ModelError(
            f"fault matrices {faults_a.shape} / {faults_b.shape} have "
            "mismatched replication counts"
        )
    if seqs.size:
        space_limit = min(universe_a.space.size, universe_b.space.size)
        if seqs.min() < -1 or seqs.max() >= space_limit:
            raise ModelError(
                "sequence block contains demands outside space of size "
                f"{space_limit} (or invalid padding < -1)"
            )
    generator = as_generator(rng) if fix_probability < 1.0 else None
    coverage_a = universe_a.coverage
    coverage_b = universe_b.coverage
    for position in range(seqs.shape[1]):
        demands = seqs[:, position]
        valid = demands >= 0
        if not valid.any():
            continue
        clamped = np.where(valid, demands, 0)
        causes_a = faults_a & coverage_a[:, clamped].T
        causes_b = faults_b & coverage_b[:, clamped].T
        fails_a = causes_a.any(axis=1) & valid
        fails_b = causes_b.any(axis=1) & valid
        if mode == OPTIMISTIC:
            flagged = fails_a | fails_b
        elif mode == PESSIMISTIC:
            flagged = fails_a ^ fails_b
        else:  # SHARED_FAULT
            coincident = fails_a & fails_b
            identical = coincident & _identical_cause_rows(causes_a, causes_b)
            flagged = (fails_a ^ fails_b) | (coincident & ~identical)
        removal_a = causes_a & (fails_a & flagged)[:, None]
        removal_b = causes_b & (fails_b & flagged)[:, None]
        if generator is not None:
            removal_a &= generator.random(removal_a.shape) < fix_probability
            removal_b &= generator.random(removal_b.shape) < fix_probability
        faults_a &= ~removal_a
        faults_b &= ~removal_b
    return faults_a, faults_b


def _apply_plan_batch(
    plan: tuple,
    fault_matrix: np.ndarray,
    suite_block: np.ndarray,
    universe,
    rng: SeedLike = None,
) -> np.ndarray:
    """Dispatch one channel's testing closure according to its plan.

    ``suite_block`` is a mask block for the perfect/blind kinds and a count
    block for the bernoulli/coverage kinds (see :func:`_plan_needs_counts`).
    """
    kind, detection_p, fix_p, extra = plan
    if kind == _PERFECT:
        return apply_testing_batch(fault_matrix, suite_block, universe)
    if kind == _BLIND:
        return apply_blind_testing_batch(
            fault_matrix, suite_block, universe, extra
        )
    if kind == _COVERAGE:
        return apply_coverage_testing_batch(
            fault_matrix, suite_block, universe, extra, rng
        )
    return apply_imperfect_testing_batch(
        fault_matrix, suite_block, universe, detection_p, fix_p, rng
    )


def _plan_needs_counts(plan: tuple) -> bool:
    return plan[0] in (_BERNOULLI, _COVERAGE)


# ---------------------------------------------------------------------------
# chunk kernels — module level so process pools can pickle them
# ---------------------------------------------------------------------------


def _chunk_untested_joint(
    population_a: VersionPopulation,
    population_b: VersionPopulation,
    demand: int,
    task: Tuple[int, int],
) -> Tuple[int, int]:
    """One chunk of eq. (4) replications → ``(successes, count)``."""
    count, seed = task
    streams = spawn_many(as_generator(seed), 2)
    fails_a = population_a.sample_fault_matrix(count, streams[0])[
        :, population_a.universe.coverage[:, demand]
    ].any(axis=1)
    fails_b = population_b.sample_fault_matrix(count, streams[1])[
        :, population_b.universe.coverage[:, demand]
    ].any(axis=1)
    return int(np.count_nonzero(fails_a & fails_b)), count


def _chunk_tested_joint(
    regime: TestingRegime,
    population_a: VersionPopulation,
    population_b: VersionPopulation,
    demand: int,
    plan: tuple,
    task: Tuple[int, int],
) -> Tuple[int, int]:
    """One chunk of eqs. (16)–(21) replications → ``(successes, count)``.

    The perfect/blind plans keep the original three-stream layout (faults A,
    faults B, suites), so perfect-path results are bit-identical to earlier
    releases; the bernoulli plan appends one testing stream per channel.
    """
    count, seed = task
    if _plan_needs_counts(plan):
        streams = spawn_many(as_generator(seed), 5)
        faults_a = population_a.sample_fault_matrix(count, streams[0])
        faults_b = population_b.sample_fault_matrix(count, streams[1])
        counts_a, counts_b = regime.draw_suite_counts(count, streams[2])
        tested_a = _apply_plan_batch(
            plan, faults_a, counts_a, population_a.universe, streams[3]
        )
        tested_b = _apply_plan_batch(
            plan, faults_b, counts_b, population_b.universe, streams[4]
        )
    else:
        streams = spawn_many(as_generator(seed), 3)
        faults_a = population_a.sample_fault_matrix(count, streams[0])
        faults_b = population_b.sample_fault_matrix(count, streams[1])
        masks_a, masks_b = regime.draw_suite_masks(count, streams[2])
        tested_a = _apply_plan_batch(plan, faults_a, masks_a, population_a.universe)
        tested_b = _apply_plan_batch(plan, faults_b, masks_b, population_b.universe)
    fails_a = tested_a[:, population_a.universe.coverage[:, demand]].any(axis=1)
    fails_b = tested_b[:, population_b.universe.coverage[:, demand]].any(axis=1)
    return int(np.count_nonzero(fails_a & fails_b)), count


def _chunk_marginal(
    regime: TestingRegime,
    population_a: VersionPopulation,
    population_b: VersionPopulation,
    profile: UsageProfile,
    rao_blackwell: bool,
    plan: tuple,
    task: Tuple[int, int],
) -> Tuple[int, float, float]:
    """One chunk of eqs. (22)–(25) replications → ``(n, mean, m2)``."""
    count, seed = task
    if _plan_needs_counts(plan):
        streams = spawn_many(as_generator(seed), 6)
        faults_a = population_a.sample_fault_matrix(count, streams[0])
        faults_b = population_b.sample_fault_matrix(count, streams[1])
        counts_a, counts_b = regime.draw_suite_counts(count, streams[2])
        tested_a = _apply_plan_batch(
            plan, faults_a, counts_a, population_a.universe, streams[3]
        )
        tested_b = _apply_plan_batch(
            plan, faults_b, counts_b, population_b.universe, streams[4]
        )
        demand_stream = streams[5]
    else:
        streams = spawn_many(as_generator(seed), 4)
        faults_a = population_a.sample_fault_matrix(count, streams[0])
        faults_b = population_b.sample_fault_matrix(count, streams[1])
        masks_a, masks_b = regime.draw_suite_masks(count, streams[2])
        tested_a = _apply_plan_batch(plan, faults_a, masks_a, population_a.universe)
        tested_b = _apply_plan_batch(plan, faults_b, masks_b, population_b.universe)
        demand_stream = streams[3]
    joint = population_a.universe.failure_matrix(
        tested_a
    ) & population_b.universe.failure_matrix(tested_b)
    if rao_blackwell:
        values = joint @ profile.probabilities
    else:
        demands = profile.sample(demand_stream, size=count)
        values = joint[np.arange(count), demands].astype(np.float64)
    return _reduce_values(values)


def _chunk_version_pfd(
    population: VersionPopulation,
    generator: SuiteGenerator,
    profile: UsageProfile,
    plan: tuple,
    task: Tuple[int, int],
) -> Tuple[int, float, float]:
    """One chunk of post-test version-pfd replications → ``(n, mean, m2)``."""
    count, seed = task
    if _plan_needs_counts(plan):
        streams = spawn_many(as_generator(seed), 3)
        faults = population.sample_fault_matrix(count, streams[0])
        counts = generator.sample_demand_counts(count, streams[1])
        tested = _apply_plan_batch(
            plan, faults, counts, population.universe, streams[2]
        )
    else:
        streams = spawn_many(as_generator(seed), 2)
        faults = population.sample_fault_matrix(count, streams[0])
        masks = generator.sample_demand_masks(count, streams[1])
        tested = _apply_plan_batch(plan, faults, masks, population.universe)
    values = population.universe.failure_matrix(tested) @ profile.probabilities
    return _reduce_values(values)


def _chunk_back_to_back_envelope(
    population_a: VersionPopulation,
    population_b: VersionPopulation,
    generator: SuiteGenerator,
    profile: UsageProfile,
    fixing: FixingPolicy | None,
    task: Tuple[int, int],
) -> Tuple[int, tuple]:
    """One chunk of paired §4.2 replications → ``(count, sums)``.

    ``sums`` holds the nine envelope accumulators in the field order of
    :class:`repro.core.bounds.BackToBackEnvelope`.  All modes reuse the same
    fault-matrix and suite draws, so the envelope comparisons stay paired
    exactly as in the scalar driver.
    """
    count, seed = task
    streams = spawn_many(as_generator(seed), 4)
    faults_a = population_a.sample_fault_matrix(count, streams[0])
    faults_b = population_b.sample_fault_matrix(count, streams[1])
    sequences = generator.sample_demand_sequences(count, streams[2])
    masks = (
        demand_sequences_to_counts(sequences, generator.space.size) > 0
    )
    universe_a = population_a.universe
    universe_b = population_b.universe
    probabilities = profile.probabilities

    def system_sum(block_a: np.ndarray, block_b: np.ndarray) -> float:
        joint = universe_a.failure_matrix(block_a) & universe_b.failure_matrix(
            block_b
        )
        return float((joint @ probabilities).sum())

    def version_sum(block_a: np.ndarray, block_b: np.ndarray) -> float:
        pfd_a = universe_a.failure_matrix(block_a) @ probabilities
        pfd_b = universe_b.failure_matrix(block_b) @ probabilities
        return float(0.5 * (pfd_a.sum() + pfd_b.sum()))

    untested_system = system_sum(faults_a, faults_b)
    untested_version = version_sum(faults_a, faults_b)
    perfect_a = apply_testing_batch(faults_a, masks, universe_a)
    perfect_b = apply_testing_batch(faults_b, masks, universe_b)
    perfect_system = system_sum(perfect_a, perfect_b)

    mode_sums = {}
    for mode in (OPTIMISTIC, PESSIMISTIC, SHARED_FAULT):
        comparator = BackToBackComparator(FailureOutputModel(mode))
        after_a, after_b = back_to_back_batch(
            faults_a,
            faults_b,
            sequences,
            universe_a,
            universe_b,
            comparator,
            fixing,
            rng=spawn_many(streams[3], 1)[0],
        )
        mode_sums[mode] = (
            system_sum(after_a, after_b),
            version_sum(after_a, after_b),
        )
    sums = (
        untested_system,
        perfect_system,
        mode_sums[OPTIMISTIC][0],
        mode_sums[PESSIMISTIC][0],
        mode_sums[SHARED_FAULT][0],
        untested_version,
        mode_sums[OPTIMISTIC][1],
        mode_sums[PESSIMISTIC][1],
        mode_sums[SHARED_FAULT][1],
    )
    return count, sums


def _reduce_values(values: np.ndarray) -> Tuple[int, float, float]:
    """Reduce a chunk's observations to Welford ``(n, mean, m2)`` moments."""
    mean = float(values.mean()) if values.size else 0.0
    m2 = float(np.square(values - mean).sum()) if values.size else 0.0
    return int(values.size), mean, m2


# ---------------------------------------------------------------------------
# chunked execution layer
# ---------------------------------------------------------------------------


def _plan_chunks(
    n_replications: int, chunk_size: int | None, rng
) -> List[Tuple[int, int]]:
    """Split the replication budget into ``(count, seed)`` chunk tasks.

    Seeds come off the root stream in chunk order *before* any work runs,
    and the default chunk size never depends on ``n_jobs`` — together these
    make results bit-identical for any worker count.  Runs shorter than
    ``_DEFAULT_CHUNK`` therefore occupy a single chunk by default; pass an
    explicit ``chunk_size`` to shard them across workers.
    """
    if chunk_size is None:
        chunk_size = _DEFAULT_CHUNK
    if chunk_size < 1:
        raise ModelError(f"chunk_size must be >= 1, got {chunk_size}")
    counts = [
        min(chunk_size, n_replications - start)
        for start in range(0, n_replications, chunk_size)
    ]
    seeds = rng.integers(0, 2**63 - 1, size=len(counts), dtype=np.int64)
    return [(count, int(seed)) for count, seed in zip(counts, seeds)]


def run_tasks(
    kernel: Callable[[object], object],
    tasks: List[object],
    n_jobs: int,
    on_result: Callable[[object], None] | None = None,
) -> List[object]:
    """Run independent tasks serially or across a process pool.

    The shared process-fan-out layer: the batch engine shards replication
    chunks through it, and the sweep layer (:mod:`repro.sweeps`) shards
    whole sweep points.  ``kernel`` and each task must be picklable when
    ``n_jobs > 1``.

    The returned list is always in *task* order — chunk estimators merge
    results positionally, which keeps batch estimates bit-identical for
    any worker count.  ``on_result``, if given, is invoked in *completion*
    order, as soon as each result exists — sweep resume relies on this to
    persist a finished point even while an earlier, slower point is still
    running, so a kill never loses completed work to head-of-line
    blocking.  Callbacks must therefore identify work by the result's own
    content, not by arrival position.
    """
    if n_jobs < 1:
        raise ModelError(f"n_jobs must be >= 1, got {n_jobs}")
    # ambient observability: chunk counters into the process registry,
    # a "sampling" phase on the active profile timer (if any), and one
    # span per fan-out when a trace is live — all no-ops otherwise
    from ..obs import current_trace, span as _obs_span
    from ..obs.metrics import default_registry
    from ..obs.timing import current_timer

    registry = default_registry()
    registry.counter(
        "repro_mc_chunk_fanouts_total",
        "run_tasks invocations (one per chunked simulation).",
    ).inc()
    registry.counter(
        "repro_mc_chunks_total", "Simulation chunks executed."
    ).inc(len(tasks))
    timer = current_timer()
    if timer is not None:
        timer.add_chunks(len(tasks))
    traced = current_trace() is not None

    def _execute() -> List[object]:
        if n_jobs == 1 or len(tasks) == 1:
            results: List[object] = []
            for task in tasks:
                result = kernel(task)
                if on_result is not None:
                    on_result(result)
                results.append(result)
            return results
        slots: List[object] = [None] * len(tasks)
        with ProcessPoolExecutor(max_workers=min(n_jobs, len(tasks))) as pool:
            futures = {
                pool.submit(kernel, task): index
                for index, task in enumerate(tasks)
            }
            for future in as_completed(futures):
                result = future.result()
                if on_result is not None:
                    on_result(result)
                slots[futures[future]] = result
        return slots

    if timer is None and not traced:
        return _execute()
    if timer is None:
        with _obs_span("mc.run_tasks", chunks=len(tasks), n_jobs=n_jobs):
            return _execute()
    if not traced:
        with timer.phase("sampling"):
            return _execute()
    with _obs_span("mc.run_tasks", chunks=len(tasks), n_jobs=n_jobs):
        with timer.phase("sampling"):
            return _execute()


# chunk-sharding alias kept for the simulate_* drivers below
_run_chunks = run_tasks


def _accumulate_proportion(results: List[Tuple[int, int]]) -> ProportionEstimator:
    from ..obs.timing import current_timer

    timer = current_timer()
    estimator = ProportionEstimator()
    start = time.perf_counter()
    for successes, count in results:
        estimator.add_many(successes, count)
    if timer is not None:
        timer.add_phase("scoring", time.perf_counter() - start)
    return estimator


def _accumulate_mean(results: List[Tuple[int, float, float]]) -> MeanEstimator:
    from ..obs.timing import current_timer

    timer = current_timer()
    estimator = MeanEstimator()
    start = time.perf_counter()
    for count, mean, m2 in results:
        estimator.add_moments(count, mean, m2)
    if timer is not None:
        timer.add_phase("scoring", time.perf_counter() - start)
    return estimator


# ---------------------------------------------------------------------------
# public batched drop-in counterparts
# ---------------------------------------------------------------------------


def simulate_untested_joint_on_demand_batch(
    population_a: VersionPopulation,
    demand: int,
    population_b: VersionPopulation | None = None,
    n_replications: int = _scalar._DEFAULT_REPLICATIONS,
    rng: SeedLike = None,
    chunk_size: int | None = None,
    n_jobs: int = 1,
) -> ProportionEstimator:
    """Batched ``P(both untested versions fail on x)`` — eq. (4) check.

    Vectorized drop-in for
    :func:`repro.mc.simulate_untested_joint_on_demand`: version pairs are
    drawn as two fault-matrix blocks and scored on the fixed demand by one
    boolean gather each.  The analytic prediction is ``θ_A(x) θ_B(x)``
    (and ``E[Θ²] ≥ E[Θ]²``, the Eckhardt–Lee inequality of eqs. (6)–(7)).
    """
    _scalar._check_replications(n_replications)
    population_b = population_b if population_b is not None else population_a
    demand = population_a.space.validate_demand(demand)
    root = as_generator(rng)
    tasks = _plan_chunks(n_replications, chunk_size, root)
    kernel = partial(_chunk_untested_joint, population_a, population_b, demand)
    return _accumulate_proportion(_run_chunks(kernel, tasks, n_jobs))


def simulate_joint_on_demand_batch(
    regime: TestingRegime,
    population_a: VersionPopulation,
    demand: int,
    population_b: VersionPopulation | None = None,
    n_replications: int = _scalar._DEFAULT_REPLICATIONS,
    rng: SeedLike = None,
    oracle: Oracle | None = None,
    fixing: FixingPolicy | None = None,
    chunk_size: int | None = None,
    n_jobs: int = 1,
) -> ProportionEstimator:
    """Batched ``P(both tested versions fail on x)`` — eqs. (16)–(21) check.

    Vectorized drop-in for :func:`repro.mc.simulate_joint_on_demand`.  Each
    chunk draws a fault-matrix block per channel, a coupled suite block
    from the regime (shared for :class:`~repro.core.SameSuite`, independent
    otherwise — precisely the coupling that separates eqs. (20)/(21) from
    (16)–(19)), applies the testing closure for the supplied oracle/fixing
    pair (§3 mask closure, §4.1 binomial-detection kernel, or blind-spot
    closure) and scores the fixed demand.  Custom policies raise
    :class:`~repro.errors.ModelError`; use ``engine="scalar"`` for those.
    """
    oracle, fixing = _scalar._regime_policies(regime, oracle, fixing)
    plan = _require_plan(oracle, fixing)
    _scalar._check_replications(n_replications)
    population_b = population_b if population_b is not None else population_a
    demand = population_a.space.validate_demand(demand)
    root = as_generator(rng)
    tasks = _plan_chunks(n_replications, chunk_size, root)
    kernel = partial(
        _chunk_tested_joint, regime, population_a, population_b, demand, plan
    )
    return _accumulate_proportion(_run_chunks(kernel, tasks, n_jobs))


def simulate_marginal_system_pfd_batch(
    regime: TestingRegime,
    population_a: VersionPopulation,
    profile: UsageProfile,
    population_b: VersionPopulation | None = None,
    n_replications: int = _scalar._DEFAULT_REPLICATIONS,
    rng: SeedLike = None,
    oracle: Oracle | None = None,
    fixing: FixingPolicy | None = None,
    rao_blackwell: bool = True,
    chunk_size: int | None = None,
    n_jobs: int = 1,
) -> MeanEstimator:
    """Batched marginal 1-out-of-2 system pfd — eqs. (22)–(25) check.

    Vectorized drop-in for :func:`repro.mc.simulate_marginal_system_pfd`.
    Per chunk, both channels' post-test failure matrices come from two
    matrix products; their conjunction is the joint failure mask, and with
    ``rao_blackwell=True`` the random demand is integrated out exactly by
    one matrix-vector product against ``Q`` (estimating
    ``E[Θ_T]² + Var(Θ_T) + E_Q[...]`` of eqs. (22)/(23), resp. the
    forced-diversity forms (24)/(25)).  Imperfect oracles/fixing run on the
    §4.1 binomial-detection kernel; custom policies raise
    :class:`~repro.errors.ModelError`.
    """
    oracle, fixing = _scalar._regime_policies(regime, oracle, fixing)
    plan = _require_plan(oracle, fixing)
    _scalar._check_replications(n_replications)
    population_b = population_b if population_b is not None else population_a
    population_a.space.require_same(profile.space)
    root = as_generator(rng)
    tasks = _plan_chunks(n_replications, chunk_size, root)
    kernel = partial(
        _chunk_marginal,
        regime,
        population_a,
        population_b,
        profile,
        rao_blackwell,
        plan,
    )
    return _accumulate_mean(_run_chunks(kernel, tasks, n_jobs))


def simulate_version_pfd_batch(
    population: VersionPopulation,
    generator: SuiteGenerator,
    profile: UsageProfile,
    n_replications: int = _scalar._DEFAULT_REPLICATIONS,
    rng: SeedLike = None,
    oracle: Oracle | None = None,
    fixing: FixingPolicy | None = None,
    chunk_size: int | None = None,
    n_jobs: int = 1,
) -> MeanEstimator:
    """Batched mean post-test pfd of one tested version — ``E_Q[ζ(X)]``.

    Vectorized drop-in for :func:`repro.mc.simulate_version_pfd`,
    estimating the usage-weighted tested difficulty ``ζ(x)`` of eq. (14):
    each chunk tests a fault-matrix block against a suite block and scores
    the survivors against ``Q`` in one matrix-vector product.  Imperfect
    oracles/fixing run on the §4.1 binomial-detection kernel; custom
    policies raise :class:`~repro.errors.ModelError`.
    """
    plan = _require_plan(oracle, fixing)
    _scalar._check_replications(n_replications)
    population.space.require_same(profile.space)
    root = as_generator(rng)
    tasks = _plan_chunks(n_replications, chunk_size, root)
    kernel = partial(_chunk_version_pfd, population, generator, profile, plan)
    return _accumulate_mean(_run_chunks(kernel, tasks, n_jobs))


def back_to_back_envelope_batch(
    population_a: VersionPopulation,
    generator: SuiteGenerator,
    profile: UsageProfile,
    population_b: VersionPopulation | None = None,
    fixing: FixingPolicy | None = None,
    n_replications: int = 400,
    rng: SeedLike = None,
    chunk_size: int | None = None,
    n_jobs: int = 1,
):
    """Batched §4.2 envelope — back-to-back testing under all output models.

    Vectorized drop-in for :func:`repro.core.bounds.back_to_back_envelope`:
    every chunk draws one fault-matrix block per channel and one shared
    demand-sequence block, then runs the three back-to-back comparators
    plus the perfect-oracle closure on identical inputs, so the envelope
    comparisons are paired exactly as in the scalar driver — in particular
    the optimistic model reproduces the perfect closure *identically* per
    replication, not just statistically.

    Returns a :class:`repro.core.bounds.BackToBackEnvelope`.
    """
    from ..core.bounds import BackToBackEnvelope

    if n_replications < 1:
        raise ModelError(f"n_replications must be >= 1, got {n_replications}")
    if not back_to_back_supported(fixing):
        raise ModelError(
            "back-to-back batch kernel cannot model custom fixing policy "
            f"{type(fixing).__name__}; use engine='scalar'"
        )
    population_b = population_b if population_b is not None else population_a
    population_a.space.require_same(profile.space)
    root = as_generator(rng)
    tasks = _plan_chunks(n_replications, chunk_size, root)
    kernel = partial(
        _chunk_back_to_back_envelope,
        population_a,
        population_b,
        generator,
        profile,
        fixing,
    )
    results = _run_chunks(kernel, tasks, n_jobs)
    total = sum(count for count, _sums in results)
    merged = [0.0] * 9
    for count, sums in results:
        for index, value in enumerate(sums):
            merged[index] += value
    scale = 1.0 / total
    return BackToBackEnvelope(
        untested_system_pfd=merged[0] * scale,
        perfect_system_pfd=merged[1] * scale,
        optimistic_system_pfd=merged[2] * scale,
        pessimistic_system_pfd=merged[3] * scale,
        shared_fault_system_pfd=merged[4] * scale,
        untested_version_pfd=merged[5] * scale,
        optimistic_version_pfd=merged[6] * scale,
        pessimistic_version_pfd=merged[7] * scale,
        shared_fault_version_pfd=merged[8] * scale,
        n_replications=total,
    )
