"""Vectorized batch Monte-Carlo engine.

The scalar drivers in :mod:`repro.mc.experiments` replicate the paper's
generative story one replication at a time: sample a version, draw a suite,
test, score.  This module runs the *same* story as matrix kernels over a
whole block of replications at once:

* an ``(R, F)`` boolean **fault matrix** — row ``r`` marks the faults of
  version ``r``, drawn in one block from the population
  (:meth:`~repro.populations.VersionPopulation.sample_fault_matrix`);
* an ``(R, D)`` boolean **suite mask** block — row ``r`` is the demand
  membership of replication ``r``'s suite, drawn with the regime's coupling
  (:meth:`~repro.core.regimes.TestingRegime.draw_suite_masks`);
* the perfect-oracle **testing closure** as one matrix product against the
  fault→demand incidence matrix
  (:meth:`~repro.faults.FaultUniverse.triggered_matrix`);
* **scoring** as matrix-vector products against the usage profile
  (:meth:`~repro.faults.FaultUniverse.failure_matrix`).

Chunk results stream into the existing :class:`ProportionEstimator` /
:class:`MeanEstimator` via their ``add_many`` merges, so confidence-interval
semantics are unchanged.  Every public function is a drop-in counterpart of
its scalar namesake and **falls back to the scalar path** whenever an
imperfect oracle or fixing policy is supplied — those processes are
order-dependent and cannot be expressed set-wise.

Execution is chunked (``chunk_size``) to bound peak memory, and chunks can
optionally be sharded across worker processes (``n_jobs``).  Chunk seeds are
drawn up-front from the root stream and results are merged in chunk order,
so a given ``(rng, chunk_size)`` pair yields bit-identical estimates for any
``n_jobs``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from functools import partial
from typing import Callable, List, Tuple

import numpy as np

from ..demand import UsageProfile
from ..errors import ModelError
from ..populations import VersionPopulation
from ..rng import as_generator, spawn_many
from ..testing import FixingPolicy, Oracle, SuiteGenerator
from ..testing.fixing import PerfectFixing
from ..testing.oracle import PerfectOracle
from ..types import SeedLike
from ..core.regimes import TestingRegime
from . import experiments as _scalar
from .estimator import MeanEstimator, ProportionEstimator

__all__ = [
    "apply_testing_batch",
    "batch_supported",
    "simulate_untested_joint_on_demand_batch",
    "simulate_joint_on_demand_batch",
    "simulate_marginal_system_pfd_batch",
    "simulate_version_pfd_batch",
]

_DEFAULT_CHUNK = 8192


def batch_supported(
    oracle: Oracle | None = None, fixing: FixingPolicy | None = None
) -> bool:
    """True iff the testing process is expressible as the set-wise closure.

    The batch engine models perfect detection and perfect fixing only —
    exactly the regime of the paper's §3 results.  Imperfect oracles and
    fixing policies (§4) depend on execution order and evolve the version
    demand-by-demand, so they stay on the scalar path.
    """
    oracle_ok = oracle is None or isinstance(oracle, PerfectOracle)
    fixing_ok = fixing is None or isinstance(fixing, PerfectFixing)
    return oracle_ok and fixing_ok


def apply_testing_batch(
    fault_matrix: np.ndarray,
    suite_masks: np.ndarray,
    universe,
) -> np.ndarray:
    """Perfect-oracle testing closure over a replication block.

    ``fault_matrix`` is ``(R, F)`` boolean (versions as fault-presence
    rows), ``suite_masks`` is ``(R, D)`` boolean (suites as demand masks).
    Returns the ``(R, F)`` post-test fault matrix: row ``r`` keeps exactly
    the faults of version ``r`` whose failure region suite ``r`` misses —
    the batched form of :func:`repro.testing.apply_testing` under perfect
    detection and fixing (the paper's §3 process).
    """
    fault_matrix = np.asarray(fault_matrix, dtype=bool)
    triggered = universe.triggered_matrix(suite_masks)
    if fault_matrix.shape != triggered.shape:
        raise ModelError(
            f"fault matrix {fault_matrix.shape} and suite block "
            f"{np.asarray(suite_masks).shape} have mismatched replication "
            "counts or universes"
        )
    return fault_matrix & ~triggered


# ---------------------------------------------------------------------------
# chunk kernels — module level so process pools can pickle them
# ---------------------------------------------------------------------------


def _chunk_untested_joint(
    population_a: VersionPopulation,
    population_b: VersionPopulation,
    demand: int,
    task: Tuple[int, int],
) -> Tuple[int, int]:
    """One chunk of eq. (4) replications → ``(successes, count)``."""
    count, seed = task
    streams = spawn_many(as_generator(seed), 2)
    fails_a = population_a.sample_fault_matrix(count, streams[0])[
        :, population_a.universe.coverage[:, demand]
    ].any(axis=1)
    fails_b = population_b.sample_fault_matrix(count, streams[1])[
        :, population_b.universe.coverage[:, demand]
    ].any(axis=1)
    return int(np.count_nonzero(fails_a & fails_b)), count


def _chunk_tested_joint(
    regime: TestingRegime,
    population_a: VersionPopulation,
    population_b: VersionPopulation,
    demand: int,
    task: Tuple[int, int],
) -> Tuple[int, int]:
    """One chunk of eqs. (16)–(21) replications → ``(successes, count)``."""
    count, seed = task
    streams = spawn_many(as_generator(seed), 3)
    faults_a = population_a.sample_fault_matrix(count, streams[0])
    faults_b = population_b.sample_fault_matrix(count, streams[1])
    masks_a, masks_b = regime.draw_suite_masks(count, streams[2])
    tested_a = apply_testing_batch(faults_a, masks_a, population_a.universe)
    tested_b = apply_testing_batch(faults_b, masks_b, population_b.universe)
    fails_a = tested_a[:, population_a.universe.coverage[:, demand]].any(axis=1)
    fails_b = tested_b[:, population_b.universe.coverage[:, demand]].any(axis=1)
    return int(np.count_nonzero(fails_a & fails_b)), count


def _chunk_marginal(
    regime: TestingRegime,
    population_a: VersionPopulation,
    population_b: VersionPopulation,
    profile: UsageProfile,
    rao_blackwell: bool,
    task: Tuple[int, int],
) -> Tuple[int, float, float]:
    """One chunk of eqs. (22)–(25) replications → ``(n, mean, m2)``."""
    count, seed = task
    streams = spawn_many(as_generator(seed), 4)
    faults_a = population_a.sample_fault_matrix(count, streams[0])
    faults_b = population_b.sample_fault_matrix(count, streams[1])
    masks_a, masks_b = regime.draw_suite_masks(count, streams[2])
    tested_a = apply_testing_batch(faults_a, masks_a, population_a.universe)
    tested_b = apply_testing_batch(faults_b, masks_b, population_b.universe)
    joint = population_a.universe.failure_matrix(
        tested_a
    ) & population_b.universe.failure_matrix(tested_b)
    if rao_blackwell:
        values = joint @ profile.probabilities
    else:
        demands = profile.sample(streams[3], size=count)
        values = joint[np.arange(count), demands].astype(np.float64)
    return _reduce_values(values)


def _chunk_version_pfd(
    population: VersionPopulation,
    generator: SuiteGenerator,
    profile: UsageProfile,
    task: Tuple[int, int],
) -> Tuple[int, float, float]:
    """One chunk of post-test version-pfd replications → ``(n, mean, m2)``."""
    count, seed = task
    streams = spawn_many(as_generator(seed), 2)
    faults = population.sample_fault_matrix(count, streams[0])
    masks = generator.sample_demand_masks(count, streams[1])
    tested = apply_testing_batch(faults, masks, population.universe)
    values = population.universe.failure_matrix(tested) @ profile.probabilities
    return _reduce_values(values)


def _reduce_values(values: np.ndarray) -> Tuple[int, float, float]:
    """Reduce a chunk's observations to Welford ``(n, mean, m2)`` moments."""
    mean = float(values.mean()) if values.size else 0.0
    m2 = float(np.square(values - mean).sum()) if values.size else 0.0
    return int(values.size), mean, m2


# ---------------------------------------------------------------------------
# chunked execution layer
# ---------------------------------------------------------------------------


def _plan_chunks(
    n_replications: int, chunk_size: int | None, rng
) -> List[Tuple[int, int]]:
    """Split the replication budget into ``(count, seed)`` chunk tasks.

    Seeds come off the root stream in chunk order *before* any work runs,
    and the default chunk size never depends on ``n_jobs`` — together these
    make results bit-identical for any worker count.  Runs shorter than
    ``_DEFAULT_CHUNK`` therefore occupy a single chunk by default; pass an
    explicit ``chunk_size`` to shard them across workers.
    """
    if chunk_size is None:
        chunk_size = _DEFAULT_CHUNK
    if chunk_size < 1:
        raise ModelError(f"chunk_size must be >= 1, got {chunk_size}")
    counts = [
        min(chunk_size, n_replications - start)
        for start in range(0, n_replications, chunk_size)
    ]
    seeds = rng.integers(0, 2**63 - 1, size=len(counts), dtype=np.int64)
    return [(count, int(seed)) for count, seed in zip(counts, seeds)]


def _run_chunks(
    kernel: Callable[[Tuple[int, int]], tuple],
    tasks: List[Tuple[int, int]],
    n_jobs: int,
) -> List[tuple]:
    """Run chunk tasks serially or across a process pool, in task order."""
    if n_jobs < 1:
        raise ModelError(f"n_jobs must be >= 1, got {n_jobs}")
    if n_jobs == 1 or len(tasks) == 1:
        return [kernel(task) for task in tasks]
    with ProcessPoolExecutor(max_workers=min(n_jobs, len(tasks))) as pool:
        return list(pool.map(kernel, tasks))


def _accumulate_proportion(results: List[Tuple[int, int]]) -> ProportionEstimator:
    estimator = ProportionEstimator()
    for successes, count in results:
        estimator.add_many(successes, count)
    return estimator


def _accumulate_mean(results: List[Tuple[int, float, float]]) -> MeanEstimator:
    estimator = MeanEstimator()
    for count, mean, m2 in results:
        estimator.add_moments(count, mean, m2)
    return estimator


# ---------------------------------------------------------------------------
# public batched drop-in counterparts
# ---------------------------------------------------------------------------


def simulate_untested_joint_on_demand_batch(
    population_a: VersionPopulation,
    demand: int,
    population_b: VersionPopulation | None = None,
    n_replications: int = _scalar._DEFAULT_REPLICATIONS,
    rng: SeedLike = None,
    chunk_size: int | None = None,
    n_jobs: int = 1,
) -> ProportionEstimator:
    """Batched ``P(both untested versions fail on x)`` — eq. (4) check.

    Vectorized drop-in for
    :func:`repro.mc.simulate_untested_joint_on_demand`: version pairs are
    drawn as two fault-matrix blocks and scored on the fixed demand by one
    boolean gather each.  The analytic prediction is ``θ_A(x) θ_B(x)``
    (and ``E[Θ²] ≥ E[Θ]²``, the Eckhardt–Lee inequality of eqs. (6)–(7)).
    """
    _scalar._check_replications(n_replications)
    population_b = population_b if population_b is not None else population_a
    demand = population_a.space.validate_demand(demand)
    root = as_generator(rng)
    tasks = _plan_chunks(n_replications, chunk_size, root)
    kernel = partial(_chunk_untested_joint, population_a, population_b, demand)
    return _accumulate_proportion(_run_chunks(kernel, tasks, n_jobs))


def simulate_joint_on_demand_batch(
    regime: TestingRegime,
    population_a: VersionPopulation,
    demand: int,
    population_b: VersionPopulation | None = None,
    n_replications: int = _scalar._DEFAULT_REPLICATIONS,
    rng: SeedLike = None,
    oracle: Oracle | None = None,
    fixing: FixingPolicy | None = None,
    chunk_size: int | None = None,
    n_jobs: int = 1,
) -> ProportionEstimator:
    """Batched ``P(both tested versions fail on x)`` — eqs. (16)–(21) check.

    Vectorized drop-in for :func:`repro.mc.simulate_joint_on_demand`.  Each
    chunk draws a fault-matrix block per channel, a coupled suite-mask block
    from the regime (shared for :class:`~repro.core.SameSuite`, independent
    otherwise — precisely the coupling that separates eqs. (20)/(21) from
    (16)–(19)), applies the set-wise testing closure and scores the fixed
    demand.  Imperfect oracles or fixing policies fall back to the scalar
    path, which models their order-dependent dynamics.
    """
    if not batch_supported(oracle, fixing):
        return _scalar.simulate_joint_on_demand(
            regime,
            population_a,
            demand,
            population_b,
            n_replications=n_replications,
            rng=rng,
            oracle=oracle,
            fixing=fixing,
            engine="scalar",
        )
    _scalar._check_replications(n_replications)
    population_b = population_b if population_b is not None else population_a
    demand = population_a.space.validate_demand(demand)
    root = as_generator(rng)
    tasks = _plan_chunks(n_replications, chunk_size, root)
    kernel = partial(
        _chunk_tested_joint, regime, population_a, population_b, demand
    )
    return _accumulate_proportion(_run_chunks(kernel, tasks, n_jobs))


def simulate_marginal_system_pfd_batch(
    regime: TestingRegime,
    population_a: VersionPopulation,
    profile: UsageProfile,
    population_b: VersionPopulation | None = None,
    n_replications: int = _scalar._DEFAULT_REPLICATIONS,
    rng: SeedLike = None,
    oracle: Oracle | None = None,
    fixing: FixingPolicy | None = None,
    rao_blackwell: bool = True,
    chunk_size: int | None = None,
    n_jobs: int = 1,
) -> MeanEstimator:
    """Batched marginal 1-out-of-2 system pfd — eqs. (22)–(25) check.

    Vectorized drop-in for :func:`repro.mc.simulate_marginal_system_pfd`.
    Per chunk, both channels' post-test failure matrices come from two
    matrix products; their conjunction is the joint failure mask, and with
    ``rao_blackwell=True`` the random demand is integrated out exactly by
    one matrix-vector product against ``Q`` (estimating
    ``E[Θ_T]² + Var(Θ_T) + E_Q[...]`` of eqs. (22)/(23), resp. the
    forced-diversity forms (24)/(25)).  Imperfect oracles/fixing fall back
    to the scalar path.
    """
    if not batch_supported(oracle, fixing):
        return _scalar.simulate_marginal_system_pfd(
            regime,
            population_a,
            profile,
            population_b,
            n_replications=n_replications,
            rng=rng,
            oracle=oracle,
            fixing=fixing,
            rao_blackwell=rao_blackwell,
            engine="scalar",
        )
    _scalar._check_replications(n_replications)
    population_b = population_b if population_b is not None else population_a
    population_a.space.require_same(profile.space)
    root = as_generator(rng)
    tasks = _plan_chunks(n_replications, chunk_size, root)
    kernel = partial(
        _chunk_marginal, regime, population_a, population_b, profile, rao_blackwell
    )
    return _accumulate_mean(_run_chunks(kernel, tasks, n_jobs))


def simulate_version_pfd_batch(
    population: VersionPopulation,
    generator: SuiteGenerator,
    profile: UsageProfile,
    n_replications: int = _scalar._DEFAULT_REPLICATIONS,
    rng: SeedLike = None,
    oracle: Oracle | None = None,
    fixing: FixingPolicy | None = None,
    chunk_size: int | None = None,
    n_jobs: int = 1,
) -> MeanEstimator:
    """Batched mean post-test pfd of one tested version — ``E_Q[ζ(X)]``.

    Vectorized drop-in for :func:`repro.mc.simulate_version_pfd`,
    estimating the usage-weighted tested difficulty ``ζ(x)`` of eq. (14):
    each chunk tests a fault-matrix block against a suite-mask block and
    scores the survivors against ``Q`` in one matrix-vector product.
    Imperfect oracles/fixing fall back to the scalar path.
    """
    if not batch_supported(oracle, fixing):
        return _scalar.simulate_version_pfd(
            population,
            generator,
            profile,
            n_replications=n_replications,
            rng=rng,
            oracle=oracle,
            fixing=fixing,
            engine="scalar",
        )
    _scalar._check_replications(n_replications)
    population.space.require_same(profile.space)
    root = as_generator(rng)
    tasks = _plan_chunks(n_replications, chunk_size, root)
    kernel = partial(_chunk_version_pfd, population, generator, profile)
    return _accumulate_mean(_run_chunks(kernel, tasks, n_jobs))
