"""Compiled kernel backend — numba ``@njit`` twins of the hottest kernels.

The batch engine (:mod:`repro.mc.batch`) already vectorizes the paper's
generative story as numpy matrix kernels.  This module is the next rung:
native-code implementations of the genuinely hot inner loops — fault-matrix
scoring, the §4.1 binomial-detection/Bernoulli-survival closure, and the
§4.2 back-to-back block kernel — selected through ``engine="compiled"`` on
every ``simulate_*`` entry point.

Two properties define the backend:

* **Counter-based randomness.**  Every draw is a pure function of
  ``(root_key, stream, lane)`` through the Philox4x32-10 primitives in
  :mod:`repro.rng` (:func:`~repro.rng.philox_uniform` /
  :func:`~repro.rng.counter_uniforms`), where ``stream`` is the *global*
  replication index and ``lane`` enumerates the draw slots of one
  replication.  Because nothing is stateful, results are **bit-identical
  for every ``chunk_size`` and ``n_jobs``** — the property the batch
  engine's serially-seeded chunks cannot offer across chunk sizes.
* **A numpy fallback that defines the semantics.**  Each numba kernel has
  a vectorized numpy twin consuming *the same* ``(key, stream, lane)``
  uniforms, so every Bernoulli/selection decision matches bit-for-bit
  between the two implementations; real-valued scores agree to float
  summation order.  The twins run everywhere numba is absent — CI legs
  without numba exercise exactly the semantics the compiled leg
  accelerates.

When numba is not installed, an explicit ``engine="compiled"`` raises a
did-you-mean :class:`~repro.errors.ModelError` (install the ``[compiled]``
extra), while ``engine="auto"`` never selects this backend at all — it
keeps resolving to the batch engine so default results stay reproducible
across machines with and without numba.  Setting the environment variable
``REPRO_COMPILED_FALLBACK=1`` lets ``engine="compiled"`` run on the numpy
twins instead of raising — the agreement suite uses it to exercise the
full compiled path on numba-less hosts.

Supported models: :class:`~repro.populations.BernoulliFaultPopulation`
version draws; :class:`~repro.testing.OperationalSuiteGenerator`,
:class:`~repro.testing.WeightedDebugGenerator`,
:class:`~repro.testing.ExhaustiveSuiteGenerator` and
:class:`~repro.testing.EnumerableSuiteGenerator` suite measures; the three
concrete regimes; and the same oracle/fixing plans as the batch engine
(perfect, §4.1 imperfect, matched blind-spot pairs).  Anything else raises
:class:`~repro.errors.ModelError` naming the unsupported piece — use
``engine="auto"`` or ``"batch"`` for those.
"""

from __future__ import annotations

import os
from functools import partial
from typing import List, Tuple

import numpy as np

from ..core.regimes import ForcedTestingDiversity, IndependentSuites, SameSuite
from ..errors import ModelError
from ..populations.bernoulli import BernoulliFaultPopulation
from ..rng import counter_key, counter_uniforms, inverse_cdf_indices, philox_uniform
from ..testing.fixing import ImperfectFixing, PerfectFixing
from ..testing.generators import (
    EnumerableSuiteGenerator,
    ExhaustiveSuiteGenerator,
    OperationalSuiteGenerator,
    WeightedDebugGenerator,
    demand_sequences_to_counts,
)
from ..types import SeedLike
from .batch import (
    _BERNOULLI,
    _BLIND,
    _COVERAGE,
    _DEFAULT_CHUNK,
    _identical_cause_rows,
    _require_plan,
    back_to_back_supported,
    run_tasks,
)
from .estimator import MeanEstimator, ProportionEstimator

__all__ = [
    "HAVE_NUMBA",
    "back_to_back_counter",
    "back_to_back_envelope_compiled",
    "compiled_available",
    "compiled_supported",
    "imperfect_closure",
    "joint_demand_failures",
    "joint_pfd_values",
    "perfect_closure",
    "pfd_values",
    "require_compiled",
    "simulate_joint_on_demand_compiled",
    "simulate_marginal_system_pfd_compiled",
    "simulate_untested_joint_on_demand_compiled",
    "simulate_version_pfd_compiled",
]

try:  # pragma: no cover - exercised on the numba CI leg
    import numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the usual state of pure-numpy hosts
    numba = None
    HAVE_NUMBA = False

#: escape hatch: run engine="compiled" on the numpy twins without numba
_FALLBACK_ENV = "REPRO_COMPILED_FALLBACK"

# back-to-back output-model modes as kernel-friendly integers
_MODE_OPTIMISTIC = 0
_MODE_PESSIMISTIC = 1
_MODE_SHARED = 2


def compiled_available() -> bool:
    """True iff ``engine="compiled"`` may run on this host."""
    return HAVE_NUMBA or bool(os.environ.get(_FALLBACK_ENV))


def require_compiled() -> None:
    """Raise a did-you-mean :class:`ModelError` when numba is missing."""
    if compiled_available():
        return
    raise ModelError(
        "engine='compiled' needs numba, which is not installed.  Did you "
        "mean engine='auto' or engine='batch' (the pure-numpy engines)?  "
        "To enable the compiled backend, install the optional extra: "
        'pip install "repro-popov-littlewood-dsn2004[compiled]" — or set '
        f"{_FALLBACK_ENV}=1 to run its numpy reference semantics"
    )


# ---------------------------------------------------------------------------
# numba kernels — compiled lazily on first call when numba is importable
# ---------------------------------------------------------------------------

if HAVE_NUMBA:  # pragma: no cover - exercised on the numba CI leg
    _philox_nb = numba.njit(cache=True)(philox_uniform)

    @numba.njit(cache=True)
    def _nb_joint_demand_failures(faults_a, faults_b, ids_a, ids_b, out):
        for r in range(faults_a.shape[0]):
            hit = False
            for i in range(ids_a.shape[0]):
                if faults_a[r, ids_a[i]]:
                    hit = True
                    break
            if not hit:
                out[r] = False
                continue
            hit = False
            for i in range(ids_b.shape[0]):
                if faults_b[r, ids_b[i]]:
                    hit = True
                    break
            out[r] = hit

    @numba.njit(cache=True)
    def _nb_pfd_values(faults, coverage, q, out):
        n_faults = faults.shape[1]
        n_demands = coverage.shape[1]
        for r in range(faults.shape[0]):
            total = 0.0
            for x in range(n_demands):
                for f in range(n_faults):
                    if faults[r, f] and coverage[f, x]:
                        total += q[x]
                        break
            out[r] = total

    @numba.njit(cache=True)
    def _nb_joint_pfd_values(faults_a, faults_b, cov_a, cov_b, q, out):
        fa = faults_a.shape[1]
        fb = faults_b.shape[1]
        n_demands = cov_a.shape[1]
        for r in range(faults_a.shape[0]):
            total = 0.0
            for x in range(n_demands):
                hit = False
                for f in range(fa):
                    if faults_a[r, f] and cov_a[f, x]:
                        hit = True
                        break
                if not hit:
                    continue
                for f in range(fb):
                    if faults_b[r, f] and cov_b[f, x]:
                        total += q[x]
                        break
            out[r] = total

    @numba.njit(cache=True)
    def _nb_perfect_closure(faults, masks, coverage, visible, out):
        n_faults = faults.shape[1]
        n_demands = coverage.shape[1]
        for r in range(faults.shape[0]):
            for f in range(n_faults):
                keep = faults[r, f]
                if keep and visible[f]:
                    for x in range(n_demands):
                        if masks[r, x] and coverage[f, x]:
                            keep = False
                            break
                out[r, f] = keep

    @numba.njit(cache=True)
    def _nb_imperfect_closure(
        faults, seqs, coverage, detect_u, surv_u, detection_p, fix_p, out
    ):
        n_faults = faults.shape[1]
        length = seqs.shape[1]
        for r in range(faults.shape[0]):
            for f in range(n_faults):
                if not faults[r, f]:
                    out[r, f] = False
                    continue
                chances = 0.0
                for l in range(length):
                    d = seqs[r, l]
                    if d >= 0 and detect_u[r, l] < detection_p and coverage[f, d]:
                        chances += 1.0
                # 0**0 == 1: untouched faults always survive
                out[r, f] = surv_u[r, f] < (1.0 - fix_p) ** chances

    @numba.njit(cache=True)
    def _nb_back_to_back(
        faults_a, faults_b, seqs, cov_a, cov_b, mode, fix_p, key, streams,
        lane_base, stride,
    ):
        n_a = faults_a.shape[1]
        n_b = faults_b.shape[1]
        length = seqs.shape[1]
        for r in range(faults_a.shape[0]):
            s = streams[r]
            for l in range(length):
                d = seqs[r, l]
                if d < 0:
                    continue
                fails_a = False
                for f in range(n_a):
                    if faults_a[r, f] and cov_a[f, d]:
                        fails_a = True
                        break
                fails_b = False
                for f in range(n_b):
                    if faults_b[r, f] and cov_b[f, d]:
                        fails_b = True
                        break
                if not (fails_a or fails_b):
                    continue
                if mode == 0:  # optimistic: any failure is flagged
                    flagged = True
                elif mode == 1:  # pessimistic: only disagreements
                    flagged = fails_a != fails_b
                else:  # shared-fault: disagreements + non-identical causes
                    if fails_a and fails_b:
                        identical = True
                        width = n_a if n_a > n_b else n_b
                        for f in range(width):
                            ca = f < n_a and faults_a[r, f] and cov_a[f, d]
                            cb = f < n_b and faults_b[r, f] and cov_b[f, d]
                            if ca != cb:
                                identical = False
                                break
                        flagged = not identical
                    else:
                        flagged = True
                if not flagged:
                    continue
                base = lane_base + l * stride
                if fails_a:
                    for f in range(n_a):
                        if faults_a[r, f] and cov_a[f, d]:
                            if fix_p >= 1.0 or _philox_nb(
                                key, s, np.uint64(base + f)
                            ) < fix_p:
                                faults_a[r, f] = False
                if fails_b:
                    for f in range(n_b):
                        if faults_b[r, f] and cov_b[f, d]:
                            if fix_p >= 1.0 or _philox_nb(
                                key, s, np.uint64(base + n_a + f)
                            ) < fix_p:
                                faults_b[r, f] = False


# ---------------------------------------------------------------------------
# numpy twins — the semantic reference, and the fallback implementation
# ---------------------------------------------------------------------------


def _np_joint_demand_failures(faults_a, faults_b, ids_a, ids_b):
    return faults_a[:, ids_a].any(axis=1) & faults_b[:, ids_b].any(axis=1)


def _np_failure_matrix(faults, coverage):
    return (
        faults.astype(np.float64) @ coverage.astype(np.float64)
    ) > 0.5


def _np_mass(failures, q):
    # not ``failures @ q``: BLAS picks shape-dependent accumulation orders,
    # which would break bit-invariance across chunk sizes.  A per-row
    # pairwise reduction depends only on the row itself.
    return (failures * q[None, :]).sum(axis=1)


def _np_pfd_values(faults, coverage, q):
    return _np_mass(_np_failure_matrix(faults, coverage), q)


def _np_joint_pfd_values(faults_a, faults_b, cov_a, cov_b, q):
    joint = _np_failure_matrix(faults_a, cov_a) & _np_failure_matrix(
        faults_b, cov_b
    )
    return _np_mass(joint, q)


def _np_perfect_closure(faults, masks, coverage, visible):
    triggered = (
        masks.astype(np.float64) @ coverage.T.astype(np.float64)
    ) > 0.5
    return faults & ~(triggered & visible[None, :])


def _np_imperfect_closure(
    faults, seqs, coverage, detect_u, surv_u, detection_p, fix_p
):
    n_replications = faults.shape[0]
    n_demands = coverage.shape[1]
    detecting = (seqs >= 0) & (detect_u < detection_p)
    rows, cols = np.nonzero(detecting)
    demands = seqs[rows, cols]
    counts = np.bincount(
        rows * n_demands + demands, minlength=n_replications * n_demands
    ).reshape(n_replications, n_demands)
    chances = counts.astype(np.float64) @ coverage.T.astype(np.float64)
    survival = (1.0 - fix_p) ** chances
    return faults & (surv_u < survival)


def _np_back_to_back(
    faults_a, faults_b, seqs, cov_a, cov_b, mode, fix_p, key, streams,
    lane_base, stride,
):
    n_a = faults_a.shape[1]
    n_b = faults_b.shape[1]
    for l in range(seqs.shape[1]):
        demands = seqs[:, l]
        valid = demands >= 0
        if not valid.any():
            continue
        clamped = np.where(valid, demands, 0)
        causes_a = faults_a & cov_a[:, clamped].T
        causes_b = faults_b & cov_b[:, clamped].T
        fails_a = causes_a.any(axis=1) & valid
        fails_b = causes_b.any(axis=1) & valid
        if mode == _MODE_OPTIMISTIC:
            flagged = fails_a | fails_b
        elif mode == _MODE_PESSIMISTIC:
            flagged = fails_a ^ fails_b
        else:
            coincident = fails_a & fails_b
            identical = coincident & _identical_cause_rows(causes_a, causes_b)
            flagged = (fails_a ^ fails_b) | (coincident & ~identical)
        removal_a = causes_a & (fails_a & flagged)[:, None]
        removal_b = causes_b & (fails_b & flagged)[:, None]
        if fix_p < 1.0:
            base = lane_base + l * stride
            lanes_a = base + np.arange(n_a, dtype=np.int64)
            lanes_b = base + n_a + np.arange(n_b, dtype=np.int64)
            removal_a &= (
                counter_uniforms(key, streams[:, None], lanes_a[None, :])
                < fix_p
            )
            removal_b &= (
                counter_uniforms(key, streams[:, None], lanes_b[None, :])
                < fix_p
            )
        faults_a &= ~removal_a
        faults_b &= ~removal_b


# ---------------------------------------------------------------------------
# dispatching kernel wrappers (numba when available, numpy twin otherwise)
# ---------------------------------------------------------------------------


def joint_demand_failures(
    faults_a: np.ndarray,
    faults_b: np.ndarray,
    ids_a: np.ndarray,
    ids_b: np.ndarray,
) -> np.ndarray:
    """Per-replication "both versions fail on the fixed demand" flags.

    ``ids_a`` / ``ids_b`` are the int64 fault ids whose regions cover the
    demand in each channel's universe.
    """
    if HAVE_NUMBA:
        out = np.empty(faults_a.shape[0], dtype=np.bool_)
        _nb_joint_demand_failures(faults_a, faults_b, ids_a, ids_b, out)
        return out
    return _np_joint_demand_failures(faults_a, faults_b, ids_a, ids_b)


def pfd_values(faults: np.ndarray, coverage: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Per-replication pfd: usage mass of each row's failure region."""
    if HAVE_NUMBA:
        out = np.empty(faults.shape[0], dtype=np.float64)
        _nb_pfd_values(faults, coverage, q, out)
        return out
    return _np_pfd_values(faults, coverage, q)


def joint_pfd_values(
    faults_a: np.ndarray,
    faults_b: np.ndarray,
    cov_a: np.ndarray,
    cov_b: np.ndarray,
    q: np.ndarray,
) -> np.ndarray:
    """Per-replication 1-out-of-2 system pfd: mass of the joint failure set."""
    if HAVE_NUMBA:
        out = np.empty(faults_a.shape[0], dtype=np.float64)
        _nb_joint_pfd_values(faults_a, faults_b, cov_a, cov_b, q, out)
        return out
    return _np_joint_pfd_values(faults_a, faults_b, cov_a, cov_b, q)


def perfect_closure(
    faults: np.ndarray,
    masks: np.ndarray,
    coverage: np.ndarray,
    visible: np.ndarray,
) -> np.ndarray:
    """Perfect-oracle closure restricted to ``visible`` faults.

    ``visible`` all-True is the paper's §3 process; a blind-spot pair
    clears it on the shared blind fault ids.
    """
    if HAVE_NUMBA:
        out = np.empty_like(faults)
        _nb_perfect_closure(faults, masks, coverage, visible, out)
        return out
    return _np_perfect_closure(faults, masks, coverage, visible)


def imperfect_closure(
    faults: np.ndarray,
    seqs: np.ndarray,
    coverage: np.ndarray,
    detect_u: np.ndarray,
    surv_u: np.ndarray,
    detection_p: float,
    fix_p: float,
) -> np.ndarray:
    """§4.1 closure from explicit per-occurrence and per-fault uniforms.

    Each valid suite position detects iff its uniform is below
    ``detection_p`` (uniforms live in ``[0, 1)``, so ``detection_p = 1``
    detects always); a fault with ``k`` detecting covering occurrences then
    survives iff its survival uniform is below ``(1 - fix_p) ** k`` — one
    formula covering the perfect limits, since ``0**0 == 1``.  Both
    implementations consume the *same* uniforms, so their outputs are
    decision-for-decision identical.
    """
    if HAVE_NUMBA:
        out = np.empty_like(faults)
        _nb_imperfect_closure(
            faults, seqs, coverage, detect_u, surv_u, detection_p, fix_p, out
        )
        return out
    return _np_imperfect_closure(
        faults, seqs, coverage, detect_u, surv_u, detection_p, fix_p
    )


def back_to_back_counter(
    faults_a: np.ndarray,
    faults_b: np.ndarray,
    seqs: np.ndarray,
    cov_a: np.ndarray,
    cov_b: np.ndarray,
    mode: int,
    fix_p: float,
    key: int,
    streams: np.ndarray,
    lane_base: int,
    stride: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """§4.2 back-to-back kernel with counter-keyed fixing coins.

    The fix coin of fault ``f`` at suite position ``l`` lives at lane
    ``lane_base + l*stride + f`` (channel B offset by ``F_A``), so both
    implementations — and every chunking of the replication axis — flip
    identical coins.  Returns post-test copies; inputs are unmodified.
    """
    out_a = faults_a.copy()
    out_b = faults_b.copy()
    if HAVE_NUMBA:
        _nb_back_to_back(
            out_a, out_b, seqs, cov_a, cov_b, mode, fix_p,
            np.uint64(key), streams, lane_base, stride,
        )
    else:
        _np_back_to_back(
            out_a, out_b, seqs, cov_a, cov_b, mode, fix_p, key, streams,
            lane_base, stride,
        )
    return out_a, out_b


# ---------------------------------------------------------------------------
# suite laws — per-generator uniform-lane sampling rules
# ---------------------------------------------------------------------------


class _ProfileSuiteLaw:
    """Fixed-size i.i.d. inverse-CDF draws from a demand profile."""

    def __init__(self, cdf: np.ndarray, space_size: int, size: int) -> None:
        self.cdf = cdf
        self.space_size = space_size
        self.lanes = size  # one uniform per suite position
        self.width = size  # sequence width

    def sequences(self, u: np.ndarray) -> np.ndarray:
        return inverse_cdf_indices(self.cdf, None, uniforms=u)

    def masks(self, u: np.ndarray) -> np.ndarray:
        masks = np.zeros((u.shape[0], self.space_size), dtype=bool)
        if u.shape[0] and self.lanes:
            np.put_along_axis(masks, self.sequences(u), True, axis=1)
        return masks


class _ExhaustiveSuiteLaw:
    """The degenerate all-demands measure: zero uniform lanes."""

    def __init__(self, demands: np.ndarray) -> None:
        self.demands = np.asarray(demands, dtype=np.int64)
        self.space_size = self.demands.shape[0]
        self.lanes = 0
        self.width = self.demands.shape[0]

    def sequences(self, u: np.ndarray) -> np.ndarray:
        return np.tile(self.demands, (u.shape[0], 1))

    def masks(self, u: np.ndarray) -> np.ndarray:
        return np.ones((u.shape[0], self.space_size), dtype=bool)


class _EnumerableSuiteLaw:
    """A finite explicit measure: one uniform lane picks the suite row."""

    def __init__(self, generator: EnumerableSuiteGenerator) -> None:
        suites, probs = zip(*generator.enumerate())
        self.cdf = np.cumsum(np.asarray(probs, dtype=np.float64))
        self.space_size = generator.space.size
        self.lanes = 1
        self.width = max(len(suite) for suite in suites)
        self.mask_table = np.stack([suite.mask() for suite in suites])
        table = np.full((len(suites), self.width), -1, dtype=np.int64)
        for row, suite in enumerate(suites):
            table[row, : len(suite)] = suite.demands
        self.seq_table = table

    def _rows(self, u: np.ndarray) -> np.ndarray:
        return inverse_cdf_indices(self.cdf, None, uniforms=u[:, 0])

    def sequences(self, u: np.ndarray) -> np.ndarray:
        return self.seq_table[self._rows(u)]

    def masks(self, u: np.ndarray) -> np.ndarray:
        return self.mask_table[self._rows(u)]


def _suite_law(generator):
    """Resolve a generator to its uniform-lane sampling law, or ``None``.

    Exact type matches only, mirroring the batch engine's plan rule: a
    subclass may override the measure arbitrarily.
    """
    if type(generator) is OperationalSuiteGenerator:
        return _ProfileSuiteLaw(
            np.cumsum(generator.profile.probabilities),
            generator.space.size,
            generator.size,
        )
    if type(generator) is WeightedDebugGenerator:
        return _ProfileSuiteLaw(
            np.cumsum(generator.debug_profile.probabilities),
            generator.space.size,
            generator.size,
        )
    if type(generator) is ExhaustiveSuiteGenerator:
        return _ExhaustiveSuiteLaw(generator.space.demands)
    if type(generator) is EnumerableSuiteGenerator:
        return _EnumerableSuiteLaw(generator)
    return None


def _regime_laws(regime):
    """Resolve a regime to ``(law_a, law_b, shared)``, or ``None``."""
    if type(regime) in (IndependentSuites, SameSuite):
        law = _suite_law(regime.generator)
        if law is None:
            return None
        return law, law, regime.shares_suite
    if type(regime) is ForcedTestingDiversity:
        law_a = _suite_law(regime.generator_a)
        law_b = _suite_law(regime.generator_b)
        if law_a is None or law_b is None:
            return None
        return law_a, law_b, False
    return None


def _bernoulli_probs(population) -> np.ndarray | None:
    if type(population) is BernoulliFaultPopulation:
        return population.presence_probs
    return None


def compiled_supported(
    oracle=None,
    fixing=None,
    populations=(),
    generators=(),
    regime=None,
) -> bool:
    """True iff every supplied model piece runs on the compiled backend."""
    from .batch import _testing_plan

    plan = _testing_plan(oracle, fixing)
    if plan is None or plan[0] == _COVERAGE:
        return False
    for population in populations:
        if _bernoulli_probs(population) is None:
            return False
    for generator in generators:
        if _suite_law(generator) is None:
            return False
    if regime is not None and _regime_laws(regime) is None:
        return False
    return True


def _require_probs(population, name: str) -> np.ndarray:
    probs = _bernoulli_probs(population)
    if probs is None:
        raise ModelError(
            f"engine='compiled' models BernoulliFaultPopulation versions "
            f"only; {name} is {type(population).__name__}.  Use "
            "engine='auto' or engine='batch'"
        )
    return probs


def _require_law(generator, name: str):
    law = _suite_law(generator)
    if law is None:
        raise ModelError(
            f"engine='compiled' cannot sample {name} of type "
            f"{type(generator).__name__}; supported: Operational, "
            "WeightedDebug, Exhaustive and Enumerable suite generators.  "
            "Use engine='auto' or engine='batch'"
        )
    return law


def _require_regime_laws(regime):
    laws = _regime_laws(regime)
    if laws is None:
        raise ModelError(
            f"engine='compiled' cannot model regime "
            f"{type(regime).__name__} (or its suite generators); supported: "
            "IndependentSuites, SameSuite and ForcedTestingDiversity over "
            "Operational/WeightedDebug/Exhaustive/Enumerable generators.  "
            "Use engine='auto' or engine='batch'"
        )
    return laws


# ---------------------------------------------------------------------------
# counter-keyed sampling helpers
# ---------------------------------------------------------------------------


def _chunk_spans(n_replications: int, chunk_size: int | None) -> List[Tuple[int, int]]:
    """Split the budget into ``(start, count)`` spans of global indices.

    Unlike the batch engine's chunk plans, no per-chunk seeds exist — every
    replication's randomness is keyed by its global index, which is what
    makes the spans an implementation detail rather than part of the
    result's identity.
    """
    if chunk_size is None:
        chunk_size = _DEFAULT_CHUNK
    if chunk_size < 1:
        raise ModelError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        (start, min(chunk_size, n_replications - start))
        for start in range(0, n_replications, chunk_size)
    ]


def _span_streams(span: Tuple[int, int]) -> np.ndarray:
    start, count = span
    return np.arange(start, start + count, dtype=np.uint64)


def _draw_block(key, streams, lane_base, lanes) -> np.ndarray:
    lane_ids = lane_base + np.arange(lanes, dtype=np.int64)
    return counter_uniforms(key, streams[:, None], lane_ids[None, :])


def _draw_faults(key, streams, lane_base, probs) -> np.ndarray:
    u = _draw_block(key, streams, lane_base, probs.shape[0])
    return u < probs[None, :]


def _universe_spec(population) -> Tuple[np.ndarray, np.ndarray]:
    universe = population.universe
    coverage = np.ascontiguousarray(universe.coverage, dtype=bool)
    return universe, coverage


def _visible_mask(universe, plan) -> np.ndarray:
    kind, _detection_p, _fix_p, blind_ids = plan
    if kind == _BLIND:
        return ~universe.presence_mask(np.asarray(blind_ids, dtype=np.int64))
    return np.ones(len(universe), dtype=bool)


def _check_replications(n_replications: int) -> None:
    if n_replications < 1:
        raise ModelError(f"n_replications must be >= 1, got {n_replications}")


# ---------------------------------------------------------------------------
# pair specs and chunk kernels (module level for process-pool pickling)
# ---------------------------------------------------------------------------


def _pair_spec(regime, population_a, population_b, oracle, fixing) -> dict:
    """Lane layout + model arrays for a two-channel tested experiment.

    The lane map of one replication::

        [faults A][faults B][suite A][suite B][oracle A][oracle B][surv A][surv B][extra...]

    with the suite-B span aliased onto suite A's lanes under a shared-suite
    regime (same uniforms → same suite, the regime's coupling), and the
    oracle/survival spans present only under the §4.1 bernoulli plan.
    """
    plan = _require_plan(oracle, fixing)
    kind, detection_p, fix_p, _blind_ids = plan
    if kind == _COVERAGE:
        raise ModelError(
            "the compiled backend does not support coverage-aware testing "
            "pairs; use engine='batch'"
        )
    probs_a = _require_probs(population_a, "population_a")
    probs_b = _require_probs(population_b, "population_b")
    law_a, law_b, shared = _require_regime_laws(regime)
    universe_a, cov_a = _universe_spec(population_a)
    universe_b, cov_b = _universe_spec(population_b)
    spec = {
        "plan_kind": kind,
        "detection_p": detection_p,
        "fix_p": fix_p,
        "probs_a": probs_a,
        "probs_b": probs_b,
        "cov_a": cov_a,
        "cov_b": cov_b,
        "visible_a": _visible_mask(universe_a, plan),
        "visible_b": _visible_mask(universe_b, plan),
        "law_a": law_a,
        "law_b": law_b,
        "shared": shared,
    }
    base = 0
    spec["fa_base"] = base
    base += probs_a.shape[0]
    spec["fb_base"] = base
    base += probs_b.shape[0]
    spec["suite_a_base"] = base
    base += law_a.lanes
    if shared:
        spec["suite_b_base"] = spec["suite_a_base"]
    else:
        spec["suite_b_base"] = base
        base += law_b.lanes
    if kind == _BERNOULLI:
        spec["det_a_base"] = base
        base += law_a.width
        spec["det_b_base"] = base
        base += law_b.width
        spec["srv_a_base"] = base
        base += probs_a.shape[0]
        spec["srv_b_base"] = base
        base += probs_b.shape[0]
    spec["lane_top"] = base
    return spec


def _tested_pair(spec: dict, key: int, streams: np.ndarray):
    """Draw and test one replication block for a pair spec."""
    faults_a = _draw_faults(key, streams, spec["fa_base"], spec["probs_a"])
    faults_b = _draw_faults(key, streams, spec["fb_base"], spec["probs_b"])
    law_a, law_b = spec["law_a"], spec["law_b"]
    u_suite_a = _draw_block(key, streams, spec["suite_a_base"], law_a.lanes)
    if spec["shared"]:
        u_suite_b = u_suite_a
    else:
        u_suite_b = _draw_block(key, streams, spec["suite_b_base"], law_b.lanes)
    if spec["plan_kind"] == _BERNOULLI:
        seqs_a = law_a.sequences(u_suite_a)
        seqs_b = law_b.sequences(u_suite_b)
        detect_a = _draw_block(key, streams, spec["det_a_base"], law_a.width)
        detect_b = _draw_block(key, streams, spec["det_b_base"], law_b.width)
        surv_a = _draw_block(key, streams, spec["srv_a_base"], spec["probs_a"].shape[0])
        surv_b = _draw_block(key, streams, spec["srv_b_base"], spec["probs_b"].shape[0])
        tested_a = imperfect_closure(
            faults_a, seqs_a, spec["cov_a"], detect_a, surv_a,
            spec["detection_p"], spec["fix_p"],
        )
        tested_b = imperfect_closure(
            faults_b, seqs_b, spec["cov_b"], detect_b, surv_b,
            spec["detection_p"], spec["fix_p"],
        )
    else:
        masks_a = law_a.masks(u_suite_a)
        masks_b = law_b.masks(u_suite_b)
        tested_a = perfect_closure(
            faults_a, masks_a, spec["cov_a"], spec["visible_a"]
        )
        tested_b = perfect_closure(
            faults_b, masks_b, spec["cov_b"], spec["visible_b"]
        )
    return tested_a, tested_b


def _chunk_untested_joint(spec: dict, span: Tuple[int, int]) -> np.ndarray:
    streams = _span_streams(span)
    faults_a = _draw_faults(spec["key"], streams, spec["fa_base"], spec["probs_a"])
    faults_b = _draw_faults(spec["key"], streams, spec["fb_base"], spec["probs_b"])
    return joint_demand_failures(
        faults_a, faults_b, spec["ids_a"], spec["ids_b"]
    )


def _chunk_tested_joint(spec: dict, span: Tuple[int, int]) -> np.ndarray:
    streams = _span_streams(span)
    tested_a, tested_b = _tested_pair(spec, spec["key"], streams)
    return joint_demand_failures(
        tested_a, tested_b, spec["ids_a"], spec["ids_b"]
    )


def _chunk_marginal(spec: dict, span: Tuple[int, int]) -> np.ndarray:
    streams = _span_streams(span)
    tested_a, tested_b = _tested_pair(spec, spec["key"], streams)
    if spec["rao_blackwell"]:
        return joint_pfd_values(
            tested_a, tested_b, spec["cov_a"], spec["cov_b"], spec["q"]
        )
    u_demand = _draw_block(spec["key"], streams, spec["demand_base"], 1)
    demands = inverse_cdf_indices(spec["profile_cdf"], None, uniforms=u_demand[:, 0])
    joint = (tested_a & spec["cov_a"][:, demands].T).any(axis=1) & (
        tested_b & spec["cov_b"][:, demands].T
    ).any(axis=1)
    return joint.astype(np.float64)


def _chunk_version_pfd(spec: dict, span: Tuple[int, int]) -> np.ndarray:
    streams = _span_streams(span)
    key = spec["key"]
    faults = _draw_faults(key, streams, spec["f_base"], spec["probs"])
    law = spec["law"]
    u_suite = _draw_block(key, streams, spec["suite_base"], law.lanes)
    if spec["plan_kind"] == _BERNOULLI:
        seqs = law.sequences(u_suite)
        detect_u = _draw_block(key, streams, spec["det_base"], law.width)
        surv_u = _draw_block(key, streams, spec["srv_base"], spec["probs"].shape[0])
        tested = imperfect_closure(
            faults, seqs, spec["cov"], detect_u, surv_u,
            spec["detection_p"], spec["fix_p"],
        )
    else:
        tested = perfect_closure(
            faults, law.masks(u_suite), spec["cov"], spec["visible"]
        )
    return pfd_values(tested, spec["cov"], spec["q"])


def _chunk_back_to_back(spec: dict, span: Tuple[int, int]) -> np.ndarray:
    streams = _span_streams(span)
    key = spec["key"]
    count = span[1]
    faults_a = _draw_faults(key, streams, spec["fa_base"], spec["probs_a"])
    faults_b = _draw_faults(key, streams, spec["fb_base"], spec["probs_b"])
    law = spec["law"]
    seqs = law.sequences(_draw_block(key, streams, spec["suite_base"], law.lanes))
    masks = demand_sequences_to_counts(seqs, law.space_size) > 0
    cov_a, cov_b, q = spec["cov_a"], spec["cov_b"], spec["q"]
    all_visible_a = np.ones(spec["probs_a"].shape[0], dtype=bool)
    all_visible_b = np.ones(spec["probs_b"].shape[0], dtype=bool)

    out = np.empty((count, 9), dtype=np.float64)
    out[:, 0] = joint_pfd_values(faults_a, faults_b, cov_a, cov_b, q)
    out[:, 5] = 0.5 * (
        pfd_values(faults_a, cov_a, q) + pfd_values(faults_b, cov_b, q)
    )
    perfect_a = perfect_closure(faults_a, masks, cov_a, all_visible_a)
    perfect_b = perfect_closure(faults_b, masks, cov_b, all_visible_b)
    out[:, 1] = joint_pfd_values(perfect_a, perfect_b, cov_a, cov_b, q)
    stride = spec["probs_a"].shape[0] + spec["probs_b"].shape[0]
    for mode, sys_col, ver_col in (
        (_MODE_OPTIMISTIC, 2, 6),
        (_MODE_PESSIMISTIC, 3, 7),
        (_MODE_SHARED, 4, 8),
    ):
        mode_base = spec["b2b_base"] + mode * law.width * stride
        after_a, after_b = back_to_back_counter(
            faults_a, faults_b, seqs, cov_a, cov_b, mode, spec["fix_p"],
            key, streams, mode_base, stride,
        )
        out[:, sys_col] = joint_pfd_values(after_a, after_b, cov_a, cov_b, q)
        out[:, ver_col] = 0.5 * (
            pfd_values(after_a, cov_a, q) + pfd_values(after_b, cov_b, q)
        )
    return out


def _gather(kernel, spec, spans, n_jobs) -> np.ndarray:
    """Run the chunk kernel over all spans and concatenate in span order.

    Per-replication values are reduced *once* over the concatenated block,
    never per chunk, so the estimator a caller receives is bit-identical
    for every ``(chunk_size, n_jobs)`` — the counter-RNG guarantee extended
    through the floating-point reduction.
    """
    results = run_tasks(partial(kernel, spec), spans, n_jobs)
    return np.concatenate(results, axis=0)


def _proportion_from(hits: np.ndarray) -> ProportionEstimator:
    estimator = ProportionEstimator()
    estimator.add_many(int(np.count_nonzero(hits)), int(hits.shape[0]))
    return estimator


def _mean_from(values: np.ndarray) -> MeanEstimator:
    mean = float(values.mean())
    m2 = float(np.square(values - mean).sum())
    estimator = MeanEstimator()
    estimator.add_moments(int(values.shape[0]), mean, m2)
    return estimator


# ---------------------------------------------------------------------------
# compiled drop-in drivers
# ---------------------------------------------------------------------------


def simulate_untested_joint_on_demand_compiled(
    population_a,
    demand: int,
    population_b=None,
    n_replications: int = 2000,
    rng: SeedLike = None,
    chunk_size: int | None = None,
    n_jobs: int = 1,
) -> ProportionEstimator:
    """Compiled ``P(both untested versions fail on x)`` — eq. (4) check."""
    _check_replications(n_replications)
    population_b = population_b if population_b is not None else population_a
    demand = population_a.space.validate_demand(demand)
    probs_a = _require_probs(population_a, "population_a")
    probs_b = _require_probs(population_b, "population_b")
    _universe_a, cov_a = _universe_spec(population_a)
    _universe_b, cov_b = _universe_spec(population_b)
    spec = {
        "key": counter_key(rng),
        "probs_a": probs_a,
        "probs_b": probs_b,
        "fa_base": 0,
        "fb_base": probs_a.shape[0],
        "ids_a": np.flatnonzero(cov_a[:, demand]).astype(np.int64),
        "ids_b": np.flatnonzero(cov_b[:, demand]).astype(np.int64),
    }
    spans = _chunk_spans(n_replications, chunk_size)
    return _proportion_from(_gather(_chunk_untested_joint, spec, spans, n_jobs))


def simulate_joint_on_demand_compiled(
    regime,
    population_a,
    demand: int,
    population_b=None,
    n_replications: int = 2000,
    rng: SeedLike = None,
    oracle=None,
    fixing=None,
    chunk_size: int | None = None,
    n_jobs: int = 1,
) -> ProportionEstimator:
    """Compiled ``P(both tested versions fail on x)`` — eqs. (16)–(21)."""
    _check_replications(n_replications)
    population_b = population_b if population_b is not None else population_a
    demand = population_a.space.validate_demand(demand)
    spec = _pair_spec(regime, population_a, population_b, oracle, fixing)
    spec["key"] = counter_key(rng)
    spec["ids_a"] = np.flatnonzero(spec["cov_a"][:, demand]).astype(np.int64)
    spec["ids_b"] = np.flatnonzero(spec["cov_b"][:, demand]).astype(np.int64)
    spans = _chunk_spans(n_replications, chunk_size)
    return _proportion_from(_gather(_chunk_tested_joint, spec, spans, n_jobs))


def simulate_marginal_system_pfd_compiled(
    regime,
    population_a,
    profile,
    population_b=None,
    n_replications: int = 2000,
    rng: SeedLike = None,
    oracle=None,
    fixing=None,
    rao_blackwell: bool = True,
    chunk_size: int | None = None,
    n_jobs: int = 1,
) -> MeanEstimator:
    """Compiled marginal 1-out-of-2 system pfd — eqs. (22)–(25) check."""
    _check_replications(n_replications)
    population_b = population_b if population_b is not None else population_a
    population_a.space.require_same(profile.space)
    spec = _pair_spec(regime, population_a, population_b, oracle, fixing)
    spec["key"] = counter_key(rng)
    spec["rao_blackwell"] = bool(rao_blackwell)
    spec["q"] = np.asarray(profile.probabilities, dtype=np.float64)
    if not rao_blackwell:
        spec["demand_base"] = spec["lane_top"]
        spec["profile_cdf"] = np.cumsum(spec["q"])
    spans = _chunk_spans(n_replications, chunk_size)
    return _mean_from(_gather(_chunk_marginal, spec, spans, n_jobs))


def simulate_version_pfd_compiled(
    population,
    generator,
    profile,
    n_replications: int = 2000,
    rng: SeedLike = None,
    oracle=None,
    fixing=None,
    chunk_size: int | None = None,
    n_jobs: int = 1,
) -> MeanEstimator:
    """Compiled mean post-test pfd of one tested version — ``E_Q[ζ(X)]``."""
    _check_replications(n_replications)
    population.space.require_same(profile.space)
    plan = _require_plan(oracle, fixing)
    kind, detection_p, fix_p, _blind_ids = plan
    if kind == _COVERAGE:
        raise ModelError(
            "the compiled backend does not support coverage-aware testing "
            "pairs; use engine='batch'"
        )
    probs = _require_probs(population, "population")
    law = _require_law(generator, "generator")
    universe, cov = _universe_spec(population)
    spec = {
        "key": counter_key(rng),
        "plan_kind": kind,
        "detection_p": detection_p,
        "fix_p": fix_p,
        "probs": probs,
        "cov": cov,
        "visible": _visible_mask(universe, plan),
        "law": law,
        "q": np.asarray(profile.probabilities, dtype=np.float64),
        "f_base": 0,
        "suite_base": probs.shape[0],
    }
    base = spec["suite_base"] + law.lanes
    if kind == _BERNOULLI:
        spec["det_base"] = base
        base += law.width
        spec["srv_base"] = base
    spans = _chunk_spans(n_replications, chunk_size)
    return _mean_from(_gather(_chunk_version_pfd, spec, spans, n_jobs))


def back_to_back_envelope_compiled(
    population_a,
    generator,
    profile,
    population_b=None,
    fixing=None,
    n_replications: int = 400,
    rng: SeedLike = None,
    chunk_size: int | None = None,
    n_jobs: int = 1,
):
    """Compiled §4.2 envelope — back-to-back testing under all output models.

    All three comparator modes reuse one fault-matrix pair and one shared
    suite per replication (paired comparisons, as in the batch/scalar
    drivers); each mode's fixing coins live in a disjoint lane block so the
    modes stay mutually independent given the draws.

    Returns a :class:`repro.core.bounds.BackToBackEnvelope`.
    """
    from ..core.bounds import BackToBackEnvelope

    _check_replications(n_replications)
    if not back_to_back_supported(fixing):
        raise ModelError(
            "back-to-back compiled kernel cannot model custom fixing policy "
            f"{type(fixing).__name__}; use engine='scalar'"
        )
    population_b = population_b if population_b is not None else population_a
    population_a.space.require_same(profile.space)
    probs_a = _require_probs(population_a, "population_a")
    probs_b = _require_probs(population_b, "population_b")
    law = _require_law(generator, "generator")
    _universe_a, cov_a = _universe_spec(population_a)
    _universe_b, cov_b = _universe_spec(population_b)
    if fixing is None or type(fixing) is PerfectFixing:
        fix_p = 1.0
    else:
        fix_p = float(fixing.fix_probability)
    spec = {
        "key": counter_key(rng),
        "probs_a": probs_a,
        "probs_b": probs_b,
        "cov_a": cov_a,
        "cov_b": cov_b,
        "law": law,
        "q": np.asarray(profile.probabilities, dtype=np.float64),
        "fix_p": fix_p,
        "fa_base": 0,
        "fb_base": probs_a.shape[0],
        "suite_base": probs_a.shape[0] + probs_b.shape[0],
    }
    spec["b2b_base"] = spec["suite_base"] + law.lanes
    spans = _chunk_spans(n_replications, chunk_size)
    values = _gather(_chunk_back_to_back, spec, spans, n_jobs)
    sums = values.sum(axis=0)
    scale = 1.0 / values.shape[0]
    return BackToBackEnvelope(
        untested_system_pfd=sums[0] * scale,
        perfect_system_pfd=sums[1] * scale,
        optimistic_system_pfd=sums[2] * scale,
        pessimistic_system_pfd=sums[3] * scale,
        shared_fault_system_pfd=sums[4] * scale,
        untested_version_pfd=sums[5] * scale,
        optimistic_version_pfd=sums[6] * scale,
        pessimistic_version_pfd=sums[7] * scale,
        shared_fault_version_pfd=sums[8] * scale,
        n_replications=int(values.shape[0]),
    )
