"""Streaming estimators with confidence intervals.

:class:`ProportionEstimator` (Bernoulli outcomes — "did both versions fail
on x?") uses the Wilson score interval, which behaves sensibly at the very
small probabilities typical of reliability work.  :class:`MeanEstimator`
(bounded real outcomes — per-replication system pfd) uses Welford's online
algorithm with a normal-approximation interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats

from ..errors import ModelError

__all__ = ["ProportionEstimator", "MeanEstimator"]


def _z_value(confidence: float) -> float:
    if not 0.0 < confidence < 1.0:
        raise ModelError(f"confidence must be in (0, 1), got {confidence}")
    return float(stats.norm.ppf(0.5 + confidence / 2.0))


class ProportionEstimator(object):
    """Streaming estimator of a probability from Bernoulli observations."""

    def __init__(self) -> None:
        self._successes = 0
        self._count = 0

    def add(self, outcome: bool) -> None:
        """Record one Bernoulli observation."""
        self._count += 1
        if outcome:
            self._successes += 1

    def add_many(self, successes: int, count: int) -> None:
        """Record a batch of ``count`` observations with ``successes`` hits."""
        if count < 0 or successes < 0 or successes > count:
            raise ModelError(
                f"invalid batch: successes={successes}, count={count}"
            )
        self._successes += successes
        self._count += count

    @property
    def count(self) -> int:
        """Number of observations recorded."""
        return self._count

    @property
    def successes(self) -> int:
        """Number of positive observations recorded."""
        return self._successes

    @property
    def mean(self) -> float:
        """Point estimate of the probability."""
        if self._count == 0:
            raise ModelError("no observations recorded")
        return self._successes / self._count

    def std_error(self) -> float:
        """Standard error of the point estimate."""
        if self._count == 0:
            raise ModelError("no observations recorded")
        p = self.mean
        return math.sqrt(p * (1.0 - p) / self._count)

    def wilson_interval(self, confidence: float = 0.99) -> Tuple[float, float]:
        """Wilson score interval — robust near 0 and 1.

        Preferred over the normal interval for reliability probabilities,
        which are frequently close to zero where the normal interval
        collapses to a point and understates uncertainty.
        """
        if self._count == 0:
            raise ModelError("no observations recorded")
        z = _z_value(confidence)
        n = self._count
        p = self.mean
        denominator = 1.0 + z * z / n
        centre = (p + z * z / (2.0 * n)) / denominator
        spread = (
            z * math.sqrt(p * (1.0 - p) / n + z * z / (4.0 * n * n)) / denominator
        )
        return max(0.0, centre - spread), min(1.0, centre + spread)

    def half_width(self, confidence: float = 0.99) -> float:
        """Wilson-interval half-width — the adaptive stopping quantity.

        Deliberately *not* the normal half-width: a degenerate all-failure
        or no-failure sample keeps a small positive width (the Wilson
        interval never collapses to a point at finite ``n``), so a
        proportion target can only be met by genuine evidence.
        """
        low, high = self.wilson_interval(confidence)
        return (high - low) / 2.0

    @property
    def counts(self) -> Tuple[int, int]:
        """The sufficient statistics ``(successes, count)``.

        Integer totals merge exactly, so shipping these between processes
        (or into :class:`repro.adaptive.ProportionAccumulator` chunks)
        loses nothing.
        """
        return self._successes, self._count

    def contains(self, value: float, confidence: float = 0.99) -> bool:
        """True iff ``value`` lies in the Wilson interval."""
        low, high = self.wilson_interval(confidence)
        return low <= value <= high


@dataclass
class MeanEstimator:
    """Welford online mean/variance estimator for bounded real outcomes."""

    _count: int = 0
    _mean: float = 0.0
    _m2: float = 0.0

    def add(self, value: float) -> None:
        """Record one observation."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    def add_many(self, values: Sequence[float] | np.ndarray) -> None:
        """Record a whole batch of observations in one update.

        Uses Chan et al.'s parallel Welford merge, so interleaving
        :meth:`add` and :meth:`add_many` keeps ``mean`` exactly and
        ``variance`` up to floating-point reordering identical to feeding
        every observation through :meth:`add`.  This is how the batch
        Monte-Carlo engine streams chunk results into the estimator without
        changing its confidence-interval semantics.
        """
        array = np.asarray(values, dtype=np.float64).reshape(-1)
        if array.size == 0:
            return
        batch_mean = float(array.mean())
        batch_m2 = float(np.square(array - batch_mean).sum())
        self.add_moments(int(array.size), batch_mean, batch_m2)

    def add_moments(self, count: int, mean: float, m2: float) -> None:
        """Merge pre-reduced Welford moments of another sample.

        ``count``/``mean``/``m2`` are the observation count, sample mean and
        sum of squared deviations of a disjoint batch — what a worker
        process ships back instead of raw observations.  Merging follows
        Chan et al.'s pairwise update.
        """
        if count < 0:
            raise ModelError(f"count must be >= 0, got {count}")
        if m2 < 0.0:
            raise ModelError(f"m2 must be >= 0, got {m2}")
        if count == 0:
            return
        if self._count == 0:
            self._count, self._mean, self._m2 = count, mean, m2
            return
        total = self._count + count
        delta = mean - self._mean
        self._m2 += m2 + delta * delta * self._count * count / total
        self._mean += delta * count / total
        self._count = total

    @property
    def count(self) -> int:
        """Number of observations recorded."""
        return self._count

    @property
    def mean(self) -> float:
        """Point estimate of the mean."""
        if self._count == 0:
            raise ModelError("no observations recorded")
        return self._mean

    @property
    def moments(self) -> Tuple[int, float, float]:
        """The Welford sufficient statistics ``(count, mean, m2)``.

        The exact inverse of :meth:`add_moments` — what a worker process
        (or :class:`repro.adaptive.MeanAccumulator` chunk) ships instead
        of raw observations.
        """
        return self._count, self._mean, self._m2

    @property
    def variance(self) -> float:
        """Unbiased sample variance (clamped at the floating-point floor).

        The clamp guards merged moments: :meth:`add_moments` chains can
        leave ``m2`` a few ulps below zero for (near-)constant samples,
        and an unclamped value would surface as ``NaN`` from the square
        root in :meth:`std_error`.
        """
        if self._count < 2:
            return 0.0
        return max(self._m2, 0.0) / (self._count - 1)

    def std_error(self) -> float:
        """Standard error of the mean."""
        if self._count == 0:
            raise ModelError("no observations recorded")
        if self._count == 1:
            return float("inf")
        return math.sqrt(self.variance / self._count)

    def normal_interval(self, confidence: float = 0.99) -> Tuple[float, float]:
        """Normal-approximation confidence interval for the mean."""
        z = _z_value(confidence)
        half = z * self.std_error()
        return self.mean - half, self.mean + half

    def half_width(self, confidence: float = 0.99) -> float:
        """Normal-interval half-width — the adaptive stopping quantity.

        A *degenerate* sample — every observation identical, ``m2 = 0``,
        e.g. a stratum of versions that never fail — reports a zero
        half-width even at ``n = 1`` (the spread genuinely observed is
        zero, and NaN/inf would poison stratified combinations); any
        nonzero spread at ``n = 1`` is unreachable, and ``n = 1`` via
        :meth:`std_error` still reports ``inf`` for callers that want the
        conservative reading.  Samplers that need a minimum sample before
        trusting a zero width enforce it at the controller level
        (``PrecisionTarget.initial``).
        """
        if self._count == 0:
            raise ModelError("no observations recorded")
        if self._m2 <= 0.0:
            return 0.0
        return _z_value(confidence) * self.std_error()

    def contains(self, value: float, confidence: float = 0.99) -> bool:
        """True iff ``value`` lies in the normal interval."""
        low, high = self.normal_interval(confidence)
        return low <= value <= high
