"""Sequential estimation with a stopping rule (legacy thin wrapper).

The paper (§2) notes that "the size of the test suite ... is determined
with respect to some stopping rule which gives the tester sufficiently high
confidence that the goal has been achieved" (citing Littlewood & Wright's
conservative stopping rules).  That idea now lives in the **adaptive
precision engine** (:mod:`repro.adaptive`): declarative
:class:`~repro.adaptive.PrecisionTarget` criteria, exactly-mergeable chunk
accumulators, variance-reduction kernels, and an escalating-round
controller that integrates with the batch engine and the sweep layer.

:func:`estimate_until` predates that engine.  It is kept with its public
signature as a thin wrapper for callers that drive a mutable estimator
through a callback, but its stopping decision is now *defined by* the
shared primitives — :meth:`PrecisionTarget.met` on
:func:`repro.adaptive.estimator_half_width` — so there is exactly one
stopping rule in the codebase.  The callback protocol itself is the
deprecated part: it cannot merge with batch/worker results (the callback
owns the randomness and mutates in place), so new code should use
:func:`repro.adaptive.run_adaptive` or the ``precision=`` keyword on the
``simulate_*`` drivers instead.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Union

from ..errors import ConvergenceError, ModelError
from ..rng import as_generator, spawn
from ..types import SeedLike
from .estimator import MeanEstimator, ProportionEstimator

__all__ = ["SequentialResult", "estimate_until"]

Estimator = Union[MeanEstimator, ProportionEstimator]


@dataclass(frozen=True)
class SequentialResult:
    """Outcome of a sequential estimation run.

    Attributes
    ----------
    estimator:
        The final estimator (query ``mean`` and intervals from it).
    batches:
        Number of batches executed.
    converged:
        True iff the half-width target was met within budget.
    half_width:
        Final confidence-interval half-width.
    """

    estimator: Estimator
    batches: int
    converged: bool
    half_width: float


def estimate_until(
    run_batch: Callable[[Estimator, object], None],
    estimator: Estimator,
    target_half_width: float,
    confidence: float = 0.99,
    max_batches: int = 100,
    rng: SeedLike = None,
    raise_on_failure: bool = False,
) -> SequentialResult:
    """Run estimation batches until the CI half-width meets the target.

    .. deprecated::
        The callback protocol cannot merge with batch-engine or
        multi-process results; use :func:`repro.adaptive.run_adaptive`
        (or ``precision=`` on the ``simulate_*`` drivers) for new code.
        This wrapper remains for scalar callback loops and now delegates
        its stopping decision to the adaptive engine's shared predicate.

    Parameters
    ----------
    run_batch:
        Callback ``run_batch(estimator, rng)`` adding one batch of
        observations; it receives a fresh child generator per call.
    estimator:
        The estimator to fill (may already contain observations).
    target_half_width:
        Stop when the CI half-width is at most this.
    confidence:
        Confidence level of the interval.
    max_batches:
        Budget; on exhaustion either return with ``converged=False`` or
        raise, per ``raise_on_failure``.
    rng:
        Root randomness.

    Raises
    ------
    ConvergenceError
        If the budget is exhausted and ``raise_on_failure`` is set.
    """
    if target_half_width <= 0:
        raise ModelError(
            f"target_half_width must be > 0, got {target_half_width}"
        )
    if max_batches < 1:
        raise ModelError(f"max_batches must be >= 1, got {max_batches}")
    warnings.warn(
        "estimate_until is deprecated: its callback protocol cannot merge "
        "with batch/worker results; use repro.adaptive.run_adaptive (or "
        "precision= on the simulate_* drivers) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    # imported lazily: repro.adaptive builds on repro.mc.estimator, so a
    # module-level import here would be circular
    from ..adaptive.accumulators import estimator_half_width
    from ..adaptive.targets import PrecisionTarget

    target = PrecisionTarget(abs_hw=target_half_width, confidence=confidence)
    rng = as_generator(rng)
    batches = 0
    for _ in range(max_batches):
        run_batch(estimator, spawn(rng))
        batches += 1
        if estimator.count >= 2:
            width = estimator_half_width(estimator, confidence)
            if target.met(estimator.mean, width):
                return SequentialResult(estimator, batches, True, width)
    width = (
        estimator_half_width(estimator, confidence)
        if estimator.count >= 2
        else float("inf")
    )
    if raise_on_failure:
        raise ConvergenceError(
            f"half-width {width:.3g} above target {target_half_width:.3g} "
            f"after {batches} batches"
        )
    return SequentialResult(estimator, batches, False, width)
