"""Sequential estimation with a stopping rule.

The paper (§2) notes that "the size of the test suite ... is determined
with respect to some stopping rule which gives the tester sufficiently high
confidence that the goal has been achieved" (citing Littlewood & Wright's
conservative stopping rules).  The same idea applies to our own Monte-Carlo
runs: :func:`estimate_until` keeps adding replications in batches until the
confidence interval is narrow enough, and raises
:class:`~repro.errors.ConvergenceError` if the budget runs out first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

from ..errors import ConvergenceError, ModelError
from ..rng import as_generator, spawn
from ..types import SeedLike
from .estimator import MeanEstimator, ProportionEstimator

__all__ = ["SequentialResult", "estimate_until"]

Estimator = Union[MeanEstimator, ProportionEstimator]


@dataclass(frozen=True)
class SequentialResult:
    """Outcome of a sequential estimation run.

    Attributes
    ----------
    estimator:
        The final estimator (query ``mean`` and intervals from it).
    batches:
        Number of batches executed.
    converged:
        True iff the half-width target was met within budget.
    half_width:
        Final confidence-interval half-width.
    """

    estimator: Estimator
    batches: int
    converged: bool
    half_width: float


def _half_width(estimator: Estimator, confidence: float) -> float:
    if isinstance(estimator, ProportionEstimator):
        low, high = estimator.wilson_interval(confidence)
    else:
        low, high = estimator.normal_interval(confidence)
    return (high - low) / 2.0


def estimate_until(
    run_batch: Callable[[Estimator, object], None],
    estimator: Estimator,
    target_half_width: float,
    confidence: float = 0.99,
    max_batches: int = 100,
    rng: SeedLike = None,
    raise_on_failure: bool = False,
) -> SequentialResult:
    """Run estimation batches until the CI half-width meets the target.

    Parameters
    ----------
    run_batch:
        Callback ``run_batch(estimator, rng)`` adding one batch of
        observations; it receives a fresh child generator per call.
    estimator:
        The estimator to fill (may already contain observations).
    target_half_width:
        Stop when the CI half-width is at most this.
    confidence:
        Confidence level of the interval.
    max_batches:
        Budget; on exhaustion either return with ``converged=False`` or
        raise, per ``raise_on_failure``.
    rng:
        Root randomness.

    Raises
    ------
    ConvergenceError
        If the budget is exhausted and ``raise_on_failure`` is set.
    """
    if target_half_width <= 0:
        raise ModelError(
            f"target_half_width must be > 0, got {target_half_width}"
        )
    if max_batches < 1:
        raise ModelError(f"max_batches must be >= 1, got {max_batches}")
    rng = as_generator(rng)
    batches = 0
    for _ in range(max_batches):
        run_batch(estimator, spawn(rng))
        batches += 1
        if estimator.count >= 2:
            width = _half_width(estimator, confidence)
            if width <= target_half_width:
                return SequentialResult(estimator, batches, True, width)
    width = _half_width(estimator, confidence) if estimator.count >= 2 else float("inf")
    if raise_on_failure:
        raise ConvergenceError(
            f"half-width {width:.3g} above target {target_half_width:.3g} "
            f"after {batches} batches"
        )
    return SequentialResult(estimator, batches, False, width)
