"""Full-pipeline Monte-Carlo experiments.

Each function simulates the complete generative story of the paper — the
randomness of development (``S``), of test generation (``M``) with the
regime's coupling, and (optionally) of usage (``Q``) — and estimates the
probability the analytic layer predicts.  Nothing here reuses the analytic
shortcuts: versions are actually drawn, actually tested, and actually
scored, so agreement with :mod:`repro.core` / :mod:`repro.analytic` is a
genuine end-to-end validation.

Each estimator can run on one of three **engines**:

* ``"batch"`` — the vectorized replication engine of
  :mod:`repro.mc.batch`: whole blocks of versions, suites and scores as
  matrix kernels.  Covers the §3 perfect process, the §4.1
  :class:`~repro.testing.ImperfectOracle` /
  :class:`~repro.testing.ImperfectFixing` relaxations (binomial detection
  counts + Bernoulli survival masks) and matched blind-spot pairs.
* ``"compiled"`` — the native-code kernels of :mod:`repro.mc.kernels`
  (numba ``@njit``) on counter-based RNG, so results are bit-identical
  for every ``chunk_size`` / ``n_jobs``.  Requires the ``[compiled]``
  extra (numba); raises a did-you-mean :class:`~repro.errors.ModelError`
  when it is absent.  Supports Bernoulli populations and the concrete
  suite generators/regimes — see :doc:`docs/kernels`.
* ``"scalar"`` — the original per-replication Python loop: the reference
  implementation the batch path is validated against, and the only engine
  for *custom* oracle/fixing policies, whose per-demand dynamics the batch
  kernels cannot introspect.

The default ``engine="auto"`` picks the batch path whenever
:func:`repro.mc.batch.batch_supported` accepts the testing process and
falls back to the scalar loop otherwise, so existing callers transparently
get the fast path.  ``auto`` deliberately never resolves to ``compiled``:
the compiled backend draws from a different (counter-based) random stream,
and a default that silently depends on whether numba is installed would
make results machine-dependent.  Opt in explicitly with
``engine="compiled"``.

Every estimator also accepts ``precision=`` — a
:class:`repro.adaptive.PrecisionTarget` (or a mapping of its fields).
When set, the fixed ``n_replications`` becomes a *budget default* and the
adaptive precision engine (:mod:`repro.adaptive`) runs escalating rounds
until the target half-width is met, returning the same estimator type
(with the :class:`~repro.adaptive.AdaptiveReport` attached as an
``adaptive`` attribute).  Adaptive runs always use the batch kernels, so
``engine="scalar"`` and custom oracle/fixing policies are rejected with
``precision=``.
"""

from __future__ import annotations

from ..demand import UsageProfile
from ..errors import ModelError
from ..populations import VersionPopulation
from ..rng import as_generator, spawn_many
from ..testing import FixingPolicy, Oracle, SuiteGenerator, apply_testing
from ..types import SeedLike
from ..core.regimes import TestingRegime
from .estimator import MeanEstimator, ProportionEstimator

__all__ = [
    "simulate_untested_joint_on_demand",
    "simulate_joint_on_demand",
    "simulate_marginal_system_pfd",
    "simulate_version_pfd",
]

_DEFAULT_REPLICATIONS = 2000
_ENGINES = ("auto", "batch", "compiled", "fastest", "scalar")


def resolve_fastest(
    oracle: Oracle | None = None, fixing: FixingPolicy | None = None
) -> str:
    """Resolve the ``"fastest"`` alias to a concrete engine for one call.

    The compiled backend when numba is importable *and* the testing pair
    has compiled kernels, else the batch path.  Unlike ``"auto"``, the
    alias trades bit-stability across machines for speed: the same call
    can run different backends depending on what is installed.
    """
    from .kernels import HAVE_NUMBA, compiled_supported

    if HAVE_NUMBA and compiled_supported(oracle, fixing):
        return "compiled"
    return "batch"


def _check_replications(n_replications: int) -> None:
    if n_replications < 1:
        raise ModelError(f"n_replications must be >= 1, got {n_replications}")


def _coerce_precision(precision, engine: str):
    """Normalise a ``precision=`` argument, rejecting non-batch engines."""
    from ..adaptive.targets import PrecisionTarget

    target = PrecisionTarget.coerce(precision)
    if target is not None and engine in ("scalar", "compiled"):
        raise ModelError(
            "precision-targeted estimation runs on the batch kernels; "
            f"engine={engine!r} cannot be combined with precision="
        )
    return target


def _engine_choice(
    engine: str,
    oracle: Oracle | None = None,
    fixing: FixingPolicy | None = None,
) -> str:
    """Resolve ``engine=`` to the concrete backend for one call.

    ``"compiled"`` is only ever an explicit choice (and requires numba or
    the fallback env var — :func:`repro.mc.kernels.require_compiled`);
    ``"auto"`` resolves between batch and scalar exactly as before the
    compiled backend existed, so default results never depend on what is
    installed.
    """
    if engine not in _ENGINES:
        raise ModelError(f"engine must be one of {_ENGINES}, got {engine!r}")
    if engine == "fastest":
        engine = resolve_fastest(oracle, fixing)
    if engine == "compiled":
        from .kernels import require_compiled

        require_compiled()
        return "compiled"
    return "batch" if _use_batch(engine, oracle, fixing) else "scalar"


def _use_batch(
    engine: str,
    oracle: Oracle | None = None,
    fixing: FixingPolicy | None = None,
) -> bool:
    """Resolve the engine choice for one call."""
    if engine not in _ENGINES:
        raise ModelError(f"engine must be one of {_ENGINES}, got {engine!r}")
    if engine == "fastest":
        # never resolves to scalar: the alias fails as loudly as "batch"
        # on pairs the vectorized engines cannot model
        engine = "batch"
    if engine == "scalar":
        return False
    from .batch import batch_supported

    supported = batch_supported(oracle, fixing)
    if engine == "batch":
        if not supported:
            raise ModelError(
                "engine='batch' cannot model custom oracle/fixing policies "
                f"({type(oracle).__name__}/{type(fixing).__name__}); "
                "supported: Perfect/Imperfect oracles and fixing, and "
                "matched blind-spot or coverage pairs.  Use engine='auto' "
                "for automatic scalar fallback or engine='scalar'"
            )
        return True
    return supported


def _regime_policies(
    regime: TestingRegime,
    oracle: Oracle | None,
    fixing: FixingPolicy | None,
) -> tuple:
    """Resolve the effective (oracle, fixing) pair for one simulate call.

    A :class:`~repro.core.regimes.CoverageAwareRegime` carries its matched
    coverage pair as the experiment's default testing policies; explicit
    ``oracle=``/``fixing=`` arguments always win (even half-supplied —
    overriding one half of a matched pair is a deliberate, scalar-path
    choice).
    """
    if oracle is None and fixing is None:
        policies = getattr(regime, "testing_policies", None)
        if policies is not None:
            return policies
    return oracle, fixing


def simulate_untested_joint_on_demand(
    population_a: VersionPopulation,
    demand: int,
    population_b: VersionPopulation | None = None,
    n_replications: int = _DEFAULT_REPLICATIONS,
    rng: SeedLike = None,
    engine: str = "auto",
    chunk_size: int | None = None,
    n_jobs: int = 1,
    precision=None,
) -> ProportionEstimator:
    """Estimate ``P(both untested versions fail on x)`` — eq. (4) check.

    Draws independent version pairs and scores them on the fixed demand.
    The analytic prediction is ``θ_A(x) θ_B(x)``.
    """
    target = _coerce_precision(precision, engine)
    if target is not None:
        from ..adaptive.controller import adaptive_untested_joint_on_demand

        report = adaptive_untested_joint_on_demand(
            population_a,
            demand,
            target,
            population_b=population_b,
            rng=rng,
            n_jobs=n_jobs,
            chunk_size=chunk_size,
            default_budget=n_replications,
        )
        return report.only.as_estimator(report)
    choice = _engine_choice(engine)
    if choice == "compiled":
        from .kernels import simulate_untested_joint_on_demand_compiled

        return simulate_untested_joint_on_demand_compiled(
            population_a,
            demand,
            population_b,
            n_replications=n_replications,
            rng=rng,
            chunk_size=chunk_size,
            n_jobs=n_jobs,
        )
    if choice == "batch":
        from .batch import simulate_untested_joint_on_demand_batch

        return simulate_untested_joint_on_demand_batch(
            population_a,
            demand,
            population_b,
            n_replications=n_replications,
            rng=rng,
            chunk_size=chunk_size,
            n_jobs=n_jobs,
        )
    _check_replications(n_replications)
    population_b = population_b if population_b is not None else population_a
    rng = as_generator(rng)
    estimator = ProportionEstimator()
    for replication in spawn_many(rng, n_replications):
        stream_a, stream_b = spawn_many(replication, 2)
        version_a = population_a.sample(stream_a)
        version_b = population_b.sample(stream_b)
        estimator.add(version_a.fails_on(demand) and version_b.fails_on(demand))
    return estimator


def simulate_joint_on_demand(
    regime: TestingRegime,
    population_a: VersionPopulation,
    demand: int,
    population_b: VersionPopulation | None = None,
    n_replications: int = _DEFAULT_REPLICATIONS,
    rng: SeedLike = None,
    oracle: Oracle | None = None,
    fixing: FixingPolicy | None = None,
    engine: str = "auto",
    chunk_size: int | None = None,
    n_jobs: int = 1,
    precision=None,
) -> ProportionEstimator:
    """Estimate ``P(both tested versions fail on x)`` — eqs. (16)–(21) check.

    Each replication: draw a version pair, draw the suite pair per the
    regime's coupling, test each channel (perfect testing unless an oracle
    or fixing policy is supplied), then score both tested versions on the
    fixed demand.
    """
    oracle, fixing = _regime_policies(regime, oracle, fixing)
    target = _coerce_precision(precision, engine)
    if target is not None:
        from ..adaptive.controller import adaptive_joint_on_demand

        report = adaptive_joint_on_demand(
            regime,
            population_a,
            demand,
            target,
            population_b=population_b,
            oracle=oracle,
            fixing=fixing,
            rng=rng,
            n_jobs=n_jobs,
            chunk_size=chunk_size,
            default_budget=n_replications,
        )
        return report.only.as_estimator(report)
    choice = _engine_choice(engine, oracle, fixing)
    if choice == "compiled":
        from .kernels import simulate_joint_on_demand_compiled

        return simulate_joint_on_demand_compiled(
            regime,
            population_a,
            demand,
            population_b,
            n_replications=n_replications,
            rng=rng,
            oracle=oracle,
            fixing=fixing,
            chunk_size=chunk_size,
            n_jobs=n_jobs,
        )
    if choice == "batch":
        from .batch import simulate_joint_on_demand_batch

        return simulate_joint_on_demand_batch(
            regime,
            population_a,
            demand,
            population_b,
            n_replications=n_replications,
            rng=rng,
            oracle=oracle,
            fixing=fixing,
            chunk_size=chunk_size,
            n_jobs=n_jobs,
        )
    _check_replications(n_replications)
    population_b = population_b if population_b is not None else population_a
    rng = as_generator(rng)
    estimator = ProportionEstimator()
    for replication in spawn_many(rng, n_replications):
        streams = spawn_many(replication, 5)
        version_a = population_a.sample(streams[0])
        version_b = population_b.sample(streams[1])
        suite_a, suite_b = regime.draw_suites(streams[2])
        tested_a = apply_testing(
            version_a, suite_a, oracle, fixing, rng=streams[3]
        ).after
        tested_b = apply_testing(
            version_b, suite_b, oracle, fixing, rng=streams[4]
        ).after
        estimator.add(tested_a.fails_on(demand) and tested_b.fails_on(demand))
    return estimator


def simulate_marginal_system_pfd(
    regime: TestingRegime,
    population_a: VersionPopulation,
    profile: UsageProfile,
    population_b: VersionPopulation | None = None,
    n_replications: int = _DEFAULT_REPLICATIONS,
    rng: SeedLike = None,
    oracle: Oracle | None = None,
    fixing: FixingPolicy | None = None,
    rao_blackwell: bool = True,
    engine: str = "auto",
    chunk_size: int | None = None,
    n_jobs: int = 1,
    precision=None,
) -> MeanEstimator:
    """Estimate the marginal system pfd — eqs. (22)–(25) check.

    With ``rao_blackwell=True`` (default) the random demand is integrated
    out exactly given the realised tested pair: the per-replication
    observation is ``Q(joint failure set)``, which estimates the same
    quantity with strictly smaller variance than drawing ``X`` (a standard
    conditioning argument).  Set it to ``False`` to simulate the raw 0/1
    outcome on a drawn demand instead.
    """
    oracle, fixing = _regime_policies(regime, oracle, fixing)
    target = _coerce_precision(precision, engine)
    if target is not None:
        if not rao_blackwell:
            raise ModelError(
                "precision-targeted estimation is always Rao-Blackwellised; "
                "rao_blackwell=False cannot be combined with precision="
            )
        from ..adaptive.controller import adaptive_marginal_system_pfd

        report = adaptive_marginal_system_pfd(
            regime,
            population_a,
            profile,
            target,
            population_b=population_b,
            oracle=oracle,
            fixing=fixing,
            rng=rng,
            n_jobs=n_jobs,
            chunk_size=chunk_size,
            default_budget=n_replications,
        )
        return report.only.as_estimator(report)
    choice = _engine_choice(engine, oracle, fixing)
    if choice == "compiled":
        from .kernels import simulate_marginal_system_pfd_compiled

        return simulate_marginal_system_pfd_compiled(
            regime,
            population_a,
            profile,
            population_b,
            n_replications=n_replications,
            rng=rng,
            oracle=oracle,
            fixing=fixing,
            rao_blackwell=rao_blackwell,
            chunk_size=chunk_size,
            n_jobs=n_jobs,
        )
    if choice == "batch":
        from .batch import simulate_marginal_system_pfd_batch

        return simulate_marginal_system_pfd_batch(
            regime,
            population_a,
            profile,
            population_b,
            n_replications=n_replications,
            rng=rng,
            oracle=oracle,
            fixing=fixing,
            rao_blackwell=rao_blackwell,
            chunk_size=chunk_size,
            n_jobs=n_jobs,
        )
    _check_replications(n_replications)
    population_b = population_b if population_b is not None else population_a
    population_a.space.require_same(profile.space)
    rng = as_generator(rng)
    estimator = MeanEstimator()
    for replication in spawn_many(rng, n_replications):
        streams = spawn_many(replication, 6)
        version_a = population_a.sample(streams[0])
        version_b = population_b.sample(streams[1])
        suite_a, suite_b = regime.draw_suites(streams[2])
        tested_a = apply_testing(
            version_a, suite_a, oracle, fixing, rng=streams[3]
        ).after
        tested_b = apply_testing(
            version_b, suite_b, oracle, fixing, rng=streams[4]
        ).after
        joint_mask = tested_a.failure_mask & tested_b.failure_mask
        if rao_blackwell:
            estimator.add(float(profile.probabilities[joint_mask].sum()))
        else:
            demand = profile.sample(streams[5])
            estimator.add(float(joint_mask[demand]))
    return estimator


def simulate_version_pfd(
    population: VersionPopulation,
    generator: SuiteGenerator,
    profile: UsageProfile,
    n_replications: int = _DEFAULT_REPLICATIONS,
    rng: SeedLike = None,
    oracle: Oracle | None = None,
    fixing: FixingPolicy | None = None,
    engine: str = "auto",
    chunk_size: int | None = None,
    n_jobs: int = 1,
    precision=None,
) -> MeanEstimator:
    """Estimate the mean post-test pfd of a single tested version.

    The analytic prediction under perfect testing is ``E_Q[ζ(X)]``
    (eq. (14) integrated over the usage profile).
    """
    target = _coerce_precision(precision, engine)
    if target is not None:
        from ..adaptive.controller import adaptive_version_pfd

        report = adaptive_version_pfd(
            population,
            generator,
            profile,
            target,
            oracle=oracle,
            fixing=fixing,
            rng=rng,
            n_jobs=n_jobs,
            chunk_size=chunk_size,
            default_budget=n_replications,
        )
        return report.only.as_estimator(report)
    choice = _engine_choice(engine, oracle, fixing)
    if choice == "compiled":
        from .kernels import simulate_version_pfd_compiled

        return simulate_version_pfd_compiled(
            population,
            generator,
            profile,
            n_replications=n_replications,
            rng=rng,
            oracle=oracle,
            fixing=fixing,
            chunk_size=chunk_size,
            n_jobs=n_jobs,
        )
    if choice == "batch":
        from .batch import simulate_version_pfd_batch

        return simulate_version_pfd_batch(
            population,
            generator,
            profile,
            n_replications=n_replications,
            rng=rng,
            oracle=oracle,
            fixing=fixing,
            chunk_size=chunk_size,
            n_jobs=n_jobs,
        )
    _check_replications(n_replications)
    population.space.require_same(profile.space)
    rng = as_generator(rng)
    estimator = MeanEstimator()
    for replication in spawn_many(rng, n_replications):
        streams = spawn_many(replication, 3)
        version = population.sample(streams[0])
        suite = generator.sample(streams[1])
        tested = apply_testing(version, suite, oracle, fixing, rng=streams[2]).after
        estimator.add(tested.pfd(profile))
    return estimator
