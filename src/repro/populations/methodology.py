"""Methodologies and forced-design-diversity pairs.

The LM model's "methodology" (language, team type, development environment,
testing regime, ...) is a named measure over versions.  A
:class:`MethodologyPair` packages two methodologies over a common fault
universe and exposes the LM quantities: per-methodology difficulty
functions, their covariance over the usage profile, and sampling of
independently developed version pairs (the paper's eq. (8)).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..demand import UsageProfile
from ..errors import IncompatibleSpaceError, ModelError
from ..rng import as_generator, spawn_many
from ..types import SeedLike
from ..versions import Version
from .base import VersionPopulation

__all__ = ["Methodology", "MethodologyPair"]


@dataclass(frozen=True)
class Methodology:
    """A named development methodology: a label plus its measure ``S_A(·)``."""

    name: str
    population: VersionPopulation

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("methodology name must be non-empty")

    def sample(self, rng: SeedLike = None) -> Version:
        """One development effort under this methodology."""
        return self.population.sample(rng)

    def difficulty(self) -> np.ndarray:
        """``theta_A(x)`` for this methodology."""
        return self.population.difficulty()

    def tested_difficulty(self, suite_demands) -> np.ndarray:
        """``xi_A(x, t)`` for this methodology and a fixed suite."""
        return self.population.tested_difficulty(suite_demands)


@dataclass(frozen=True)
class MethodologyPair:
    """Two methodologies developing versions independently (forced diversity).

    Both methodologies must share one fault universe; identical measures
    reduce the pair to the single-methodology EL setting, which the library
    treats as the special case ``MethodologyPair.homogeneous``.
    """

    first: Methodology
    second: Methodology

    def __post_init__(self) -> None:
        if self.first.population.universe is not self.second.population.universe:
            raise IncompatibleSpaceError(
                "methodologies must share one fault universe"
            )

    @classmethod
    def homogeneous(cls, methodology: Methodology) -> "MethodologyPair":
        """Both channels developed under one methodology (EL setting)."""
        return cls(methodology, methodology)

    @property
    def universe(self):
        """The shared fault universe."""
        return self.first.population.universe

    @property
    def is_homogeneous(self) -> bool:
        """True iff both channels use the same measure object."""
        return self.first.population is self.second.population

    def sample_pair(self, rng: SeedLike = None) -> Tuple[Version, Version]:
        """Draw an independently developed version pair (eq. (8)).

        Independence across channels is enforced with spawned child
        streams: the two developments share no randomness.
        """
        generator = as_generator(rng)
        stream_a, stream_b = spawn_many(generator, 2)
        return self.first.sample(stream_a), self.second.sample(stream_b)

    def difficulties(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(theta_A, theta_B)`` as per-demand vectors."""
        return self.first.difficulty(), self.second.difficulty()

    def difficulty_covariance(self, profile: UsageProfile) -> float:
        """``Cov(Θ_A, Θ_B)`` over the usage profile — the LM key term (eq. (9)).

        Negative covariance is the forced-diversity prize: methodologies
        whose hard demands are each other's easy demands.
        """
        theta_a, theta_b = self.difficulties()
        return profile.covariance(theta_a, theta_b)

    def mean_difficulties(self, profile: UsageProfile) -> Tuple[float, float]:
        """``(E[Θ_A], E[Θ_B])`` — the marginal per-channel unreliabilities."""
        theta_a, theta_b = self.difficulties()
        return profile.expectation(theta_a), profile.expectation(theta_b)
