"""Bernoulli fault population.

A development methodology is summarised by a vector ``p`` of per-fault
inclusion probabilities: one development effort produces a version
containing fault ``f`` with probability ``p_f``, independently across
faults.  This is the simplest generative measure that

* makes independent version draws genuinely i.i.d. (the paper's eq. (3));
* yields **closed forms** for ``theta(x)``, ``xi(x, t)`` and — combined
  with i.i.d. operational suites — every moment the paper's results need
  (see :mod:`repro.analytic.bernoulli_exact`);
* expresses forced design diversity naturally: methodologies differ in
  their ``p`` vectors (possibly over overlapping fault sets).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from ..errors import ModelError, NotEnumerableError, ProbabilityError
from ..faults import (
    FaultUniverse,
    difficulty_from_bernoulli,
    tested_difficulty_given_suite,
)
from ..rng import as_generator
from ..types import SeedLike
from ..versions import Version
from .base import VersionPopulation

__all__ = ["BernoulliFaultPopulation"]

_MAX_ENUMERABLE_FAULTS = 14


class BernoulliFaultPopulation(VersionPopulation):
    """Versions as independent Bernoulli selections over a fault universe.

    Parameters
    ----------
    universe:
        The fault universe.
    presence_probs:
        Length-``len(universe)`` vector; ``presence_probs[f]`` is the
        probability that a random version contains fault ``f``.  A zero
        entry excludes the fault from this methodology entirely, which is
        how two methodologies over one universe model partially-overlapping
        fault propensities.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.demand import DemandSpace
    >>> from repro.faults import FaultUniverse
    >>> space = DemandSpace(4)
    >>> universe = FaultUniverse.from_regions(space, [[0, 1], [2]])
    >>> pop = BernoulliFaultPopulation(universe, [0.5, 0.25])
    >>> pop.difficulty()
    array([0.5 , 0.5 , 0.25, 0.  ])
    """

    def __init__(
        self,
        universe: FaultUniverse,
        presence_probs: Sequence[float] | np.ndarray,
    ) -> None:
        super().__init__(universe)
        probs = np.asarray(presence_probs, dtype=np.float64)
        if probs.shape != (len(universe),):
            raise ModelError(
                f"presence_probs length {probs.shape} does not match "
                f"universe size {len(universe)}"
            )
        if np.any(probs < 0.0) or np.any(probs > 1.0) or np.any(~np.isfinite(probs)):
            raise ProbabilityError("presence probabilities must lie in [0, 1]")
        self._probs = probs

    @property
    def presence_probs(self) -> np.ndarray:
        """Per-fault inclusion probabilities (read-only copy)."""
        return self._probs.copy()

    @classmethod
    def uniform(
        cls, universe: FaultUniverse, probability: float
    ) -> "BernoulliFaultPopulation":
        """Every fault present with the same probability."""
        probs = np.full(len(universe), float(probability))
        return cls(universe, probs)

    @classmethod
    def over_fault_subset(
        cls,
        universe: FaultUniverse,
        fault_ids: Sequence[int] | np.ndarray,
        probability: float,
    ) -> "BernoulliFaultPopulation":
        """Faults in ``fault_ids`` present with ``probability``; others never.

        The building block for forced-diversity constructions where
        methodology A is prone to one subset of faults and methodology B to
        another.
        """
        ids = universe.validate_fault_ids(fault_ids)
        probs = np.zeros(len(universe))
        probs[ids] = float(probability)
        return cls(universe, probs)

    def sample(self, rng: SeedLike = None) -> Version:
        """Draw a version: include each fault independently."""
        generator = as_generator(rng)
        include = generator.random(len(self._universe)) < self._probs
        return Version(self._universe, np.flatnonzero(include).astype(np.int64))

    def sample_fault_matrix(self, count: int, rng: SeedLike = None) -> np.ndarray:
        """Draw ``count`` versions as one ``[count, n_faults]`` Bernoulli block.

        The whole replication batch is a single uniform draw compared
        against ``p`` — the vectorised form of eq. (3)'s i.i.d. development
        measure and the entry point of the batch Monte-Carlo engine.
        """
        if count < 0:
            raise ModelError(f"count must be non-negative, got {count}")
        generator = as_generator(rng)
        return generator.random((count, len(self._universe))) < self._probs

    def difficulty(self) -> np.ndarray:
        """Closed-form ``theta(x)`` (see :func:`difficulty_from_bernoulli`)."""
        return difficulty_from_bernoulli(self._universe, self._probs)

    def tested_difficulty(
        self, suite_demands: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Closed-form ``xi(x, t)`` for a fixed suite ``t``."""
        return tested_difficulty_given_suite(
            self._universe, self._probs, suite_demands
        )

    def enumerate(self) -> Iterable[Tuple[Version, float]]:
        """Yield every positive-probability version with its probability.

        The support is the power set of the faults with ``0 < p_f``, so
        enumeration is limited to universes with at most
        ``_MAX_ENUMERABLE_FAULTS`` such faults; beyond that, sample.
        Versions containing only impossible faults are skipped, and the
        yielded probabilities sum to one.
        """
        active = np.flatnonzero(self._probs > 0.0)
        if active.size > _MAX_ENUMERABLE_FAULTS:
            raise NotEnumerableError(
                f"{active.size} faults have positive probability; "
                f"enumeration is capped at {_MAX_ENUMERABLE_FAULTS}"
            )
        certain_mask = self._probs[active] >= 1.0
        for bits in range(1 << int(active.size)):
            probability = 1.0
            included = []
            skip = False
            for position, fault_id in enumerate(active):
                p = float(self._probs[fault_id])
                if bits >> position & 1:
                    probability *= p
                    included.append(int(fault_id))
                else:
                    if certain_mask[position]:
                        skip = True
                        break
                    probability *= 1.0 - p
            if skip or probability <= 0.0:
                continue
            yield Version(
                self._universe, np.asarray(included, dtype=np.int64)
            ), probability

    def expected_fault_count(self) -> float:
        """Mean number of faults per version — a cheap sanity statistic."""
        return float(self._probs.sum())

    def scaled(self, factor: float) -> "BernoulliFaultPopulation":
        """A population with all presence probabilities scaled by ``factor``.

        Clipped to ``[0, 1]``.  Useful for ablations sweeping overall
        fault-proneness at a fixed fault structure.
        """
        if factor < 0:
            raise ModelError(f"factor must be >= 0, got {factor}")
        return BernoulliFaultPopulation(
            self._universe, np.clip(self._probs * factor, 0.0, 1.0)
        )
