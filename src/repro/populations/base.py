"""The population interface.

The abstract contract mirrors how the paper uses the measure ``S(·)``:
independent draws with replacement (the "urn model" of its ref. [4]), plus
expectations of score functions over the measure.  Implementations either
expose exact difficulty functions or raise :class:`NotEnumerableError` and
leave estimation to the Monte-Carlo layer.
"""

from __future__ import annotations

import abc
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..demand import DemandSpace
from ..errors import ModelError, NotEnumerableError
from ..faults import FaultUniverse
from ..rng import as_generator, spawn_many
from ..types import SeedLike
from ..versions import Version

__all__ = ["VersionPopulation"]


class VersionPopulation(abc.ABC):
    """Abstract development measure ``S(·)`` over program versions.

    Concrete populations share a fault universe so that versions drawn from
    *different* populations (forced diversity) remain comparable demand-wise
    and can share faults.
    """

    def __init__(self, universe: FaultUniverse) -> None:
        self._universe = universe

    @property
    def universe(self) -> FaultUniverse:
        """The fault universe versions are composed from."""
        return self._universe

    @property
    def space(self) -> DemandSpace:
        """The demand space of the underlying universe."""
        return self._universe.space

    @abc.abstractmethod
    def sample(self, rng: SeedLike = None) -> Version:
        """Draw one version — one independent development effort."""

    def sample_many(self, count: int, rng: SeedLike = None) -> List[Version]:
        """Draw ``count`` independent versions (with replacement).

        Independent child streams are used per draw so that the draws stay
        independent even if a sampler consumes a data-dependent amount of
        randomness.
        """
        generator = as_generator(rng)
        streams = spawn_many(generator, count)
        return [self.sample(stream) for stream in streams]

    def sample_fault_matrix(self, count: int, rng: SeedLike = None) -> np.ndarray:
        """Draw ``count`` versions as a boolean fault-presence matrix.

        Returns a ``[count, n_faults]`` matrix whose row ``r`` marks the
        faults of the ``r``-th independently drawn version — the batch
        Monte-Carlo engine's representation of a replication block.  The
        default implementation loops :meth:`sample` (correct for any
        population); subclasses with vectorisable measures override it with
        a single array draw.
        """
        if count < 0:
            raise ModelError(f"count must be non-negative, got {count}")
        matrix = np.zeros((count, len(self._universe)), dtype=bool)
        generator = as_generator(rng)
        for row, stream in enumerate(spawn_many(generator, count)):
            matrix[row, self.sample(stream).fault_ids] = True
        return matrix

    @abc.abstractmethod
    def difficulty(self) -> np.ndarray:
        """Exact ``theta(x) = E_S[υ(Π, x)]`` (eq. (1)), per demand.

        Raises
        ------
        NotEnumerableError
            If the population cannot compute this exactly.
        """

    @abc.abstractmethod
    def tested_difficulty(self, suite_demands: Sequence[int] | np.ndarray) -> np.ndarray:
        """Exact ``xi(x, t) = E_S[υ(Π, x, t)]`` (eq. (13)) for a fixed suite.

        Under perfect detection/fixing a random version tested on ``t``
        fails on ``x`` iff it contains a fault covering ``x`` whose region
        ``t`` misses.

        Raises
        ------
        NotEnumerableError
            If the population cannot compute this exactly.
        """

    def enumerate(self) -> Iterable[Tuple[Version, float]]:
        """Yield ``(version, probability)`` pairs when finitely enumerable.

        Raises
        ------
        NotEnumerableError
            By default; finite populations override.
        """
        raise NotEnumerableError(
            f"{type(self).__name__} does not support exact enumeration"
        )

    def pfd(self, profile) -> float:
        """Marginal untested unreliability ``E_{S,Q}[υ(Π, X)]`` (eq. (2))."""
        return float(profile.expectation(self.difficulty()))
