"""Version populations — the development measures ``S(·)`` of the paper.

A population answers two questions: *sample a random version* (the product
of one development effort) and, where possible, *compute exactly* the
difficulty functions ``theta(x)`` and post-test ``xi(x, t)``.  Two concrete
measures are provided:

* :class:`BernoulliFaultPopulation` — every fault of a universe is present
  independently with its own probability.  Difficulty functions have closed
  forms, making it the workhorse for exact-vs-Monte-Carlo validation.
* :class:`FinitePopulation` — an explicit list of versions with
  probabilities; fully enumerable, used for exact enumeration of every
  moment in small models.

:class:`Methodology` names a population, and :class:`MethodologyPair`
packages the forced-design-diversity setting of the LM model.
"""

from .base import VersionPopulation
from .bernoulli import BernoulliFaultPopulation
from .finite import FinitePopulation
from .methodology import Methodology, MethodologyPair

__all__ = [
    "VersionPopulation",
    "BernoulliFaultPopulation",
    "FinitePopulation",
    "Methodology",
    "MethodologyPair",
]
