"""Explicit finite population — a fully enumerable measure ``S(·)``.

For small models every expectation in the paper can be computed by direct
summation over ``℘`` (and, with an enumerable suite measure, over ``Ξ``).
The enumeration engine in :mod:`repro.analytic.enumeration` uses this class
to produce ground-truth values against which both the Bernoulli closed
forms and the Monte-Carlo estimates are tested.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import EmptyPopulationError, ModelError, ProbabilityError
from ..faults import FaultUniverse
from ..rng import inverse_cdf_indices
from ..types import SeedLike
from ..versions import Version
from .base import VersionPopulation

__all__ = ["FinitePopulation"]

_SUM_TOLERANCE = 1e-9


class FinitePopulation(VersionPopulation):
    """A finite set of versions with explicit selection probabilities.

    Parameters
    ----------
    universe:
        Shared fault universe.
    versions:
        The distinct versions in the support of ``S``.
    probabilities:
        Selection probability of each version; must sum to one.

    Notes
    -----
    Duplicated versions in ``versions`` are rejected — a measure assigns one
    probability per distinct program; merge duplicates before construction.
    """

    def __init__(
        self,
        universe: FaultUniverse,
        versions: Sequence[Version],
        probabilities: Sequence[float] | np.ndarray,
    ) -> None:
        super().__init__(universe)
        versions = list(versions)
        if not versions:
            raise EmptyPopulationError("finite population needs at least one version")
        for index, version in enumerate(versions):
            if version.universe is not universe:
                raise ModelError(
                    f"version {index} belongs to a different fault universe"
                )
        keys = {version.fault_ids.tobytes() for version in versions}
        if len(keys) != len(versions):
            raise ModelError("duplicate versions in finite population support")
        probs = np.asarray(probabilities, dtype=np.float64)
        if probs.shape != (len(versions),):
            raise ModelError(
                f"got {len(versions)} versions but probability vector of "
                f"shape {probs.shape}"
            )
        if np.any(probs < 0.0) or np.any(~np.isfinite(probs)):
            raise ProbabilityError("selection probabilities must be finite and >= 0")
        if abs(float(probs.sum()) - 1.0) > _SUM_TOLERANCE:
            raise ProbabilityError(
                f"selection probabilities must sum to 1, got {probs.sum():.12f}"
            )
        self._versions = versions
        self._probs = probs
        self._cdf = np.cumsum(probs)
        self._presence_table: np.ndarray | None = None

    @classmethod
    def uniform_over(
        cls, universe: FaultUniverse, versions: Sequence[Version]
    ) -> "FinitePopulation":
        """Equal selection probability over the given versions."""
        count = len(list(versions))
        if count == 0:
            raise EmptyPopulationError("finite population needs at least one version")
        return cls(universe, versions, np.full(count, 1.0 / count))

    @property
    def versions(self) -> List[Version]:
        """The support of the measure (copy)."""
        return list(self._versions)

    @property
    def probabilities(self) -> np.ndarray:
        """Selection probabilities (copy)."""
        return self._probs.copy()

    def __len__(self) -> int:
        return len(self._versions)

    def sample(self, rng: SeedLike = None) -> Version:
        """Draw one version according to the selection probabilities."""
        return self._versions[inverse_cdf_indices(self._cdf, rng)]

    def sample_fault_matrix(self, count: int, rng: SeedLike = None) -> np.ndarray:
        """Draw ``count`` versions as presence rows gathered from the support.

        One inverse-CDF draw selects all ``count`` support indices; the
        result rows are gathered from a cached ``[support, n_faults]``
        presence table, so the batch engine never touches Version objects.
        """
        if count < 0:
            raise ModelError(f"count must be non-negative, got {count}")
        if self._presence_table is None:
            table = np.zeros((len(self._versions), len(self._universe)), dtype=bool)
            for row, version in enumerate(self._versions):
                table[row, version.fault_ids] = True
            self._presence_table = table
        return self._presence_table[inverse_cdf_indices(self._cdf, rng, count)]

    def enumerate(self) -> Iterable[Tuple[Version, float]]:
        """Yield every ``(version, probability)`` pair."""
        return zip(list(self._versions), self._probs.tolist())

    def difficulty(self) -> np.ndarray:
        """Exact ``theta(x)`` by direct summation over the support."""
        theta = np.zeros(self.space.size, dtype=np.float64)
        for version, probability in self.enumerate():
            theta += probability * version.failure_mask
        return theta

    def tested_difficulty(
        self, suite_demands: Sequence[int] | np.ndarray
    ) -> np.ndarray:
        """Exact ``xi(x, t)`` by summing post-test failure masks.

        Each support version is put through perfect testing with the fixed
        suite (faults triggered by the suite removed) and the resulting
        failure masks are averaged under ``S``.
        """
        triggered = self._universe.triggered_by(suite_demands)
        xi = np.zeros(self.space.size, dtype=np.float64)
        for version, probability in self.enumerate():
            tested = version.without_faults(triggered)
            xi += probability * tested.failure_mask
        return xi

    def score_expectation(self, demand: int) -> float:
        """``E_S[υ(Π, x)]`` for one demand — scalar form of eq. (1)."""
        demand = self.space.validate_demand(demand)
        return float(self.difficulty()[demand])
