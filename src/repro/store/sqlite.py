"""SQLite result-store backend: WAL mode, indexed lookups, SQL aggregation.

The scale backend behind :func:`repro.store.open_store`.  Each record is
one row keyed by its cache key (primary key — duplicate puts are upserts,
so the file never accumulates superseded lines the way an append-only
JSONL does), with the identity fields broken out into indexed columns and
the full canonical-JSON record kept verbatim, so reads return byte-wise
the same payloads the JSONL backend would.

Differences from the JSONL backend that matter operationally:

* **lookups don't load the store** — ``get``/``__contains__`` are
  single-row indexed queries, so a service fronting a multi-million-record
  store pays per-lookup cost, not per-open cost;
* **durability is transactional** — every ``put`` commits a WAL
  transaction (``synchronous=NORMAL``: a killed process never loses a
  committed record and never corrupts the file; only an OS crash can drop
  the very last commits).  Concurrent writers serialise on SQLite's write
  lock with a generous ``busy_timeout`` instead of interleaving appends;
* **aggregation pushes into SQL** — :meth:`summary_rows` computes the
  sweep summary's per-record claim counts inside SQLite (``json_each``
  over the stored result), so ``aggregate`` never transfers or parses the
  result payloads at all;
* **compaction is a checkpoint + VACUUM** — upserts already keep one row
  per key, so ``compact`` only reclaims free pages and folds the WAL back
  into the main file.

First-written key order (what JSONL's dict semantics give for free) is
kept by an explicit monotonic ``seq`` column assigned when a key first
appears and *not* touched by upserts.

The connection is shared and guarded by a lock, so one store object can
be used from several threads (the sweep layer's ``--via-service`` mirror
threads do); cross-*process* sharing goes through SQLite itself.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional

from ..errors import ModelError
from .records import canonical_json, validate_record

__all__ = ["SqliteStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    key            TEXT PRIMARY KEY,
    seq            INTEGER NOT NULL,
    experiment_id  TEXT NOT NULL,
    seed           INTEGER NOT NULL,
    fast           INTEGER NOT NULL,
    engine         TEXT NOT NULL,
    version        TEXT NOT NULL,
    params         TEXT NOT NULL,
    result         TEXT,
    record         TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS records_seq_idx ON records(seq);
CREATE INDEX IF NOT EXISTS records_experiment_idx ON records(experiment_id, seq);
"""

_UPSERT = """
INSERT INTO records (key, seq, experiment_id, seed, fast, engine, version,
                     params, result, record)
VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
ON CONFLICT(key) DO UPDATE SET
    experiment_id = excluded.experiment_id,
    seed          = excluded.seed,
    fast          = excluded.fast,
    engine        = excluded.engine,
    version       = excluded.version,
    params        = excluded.params,
    result        = excluded.result,
    record        = excluded.record
"""

_SUMMARY_SQL = """
SELECT experiment_id, seed, fast, engine, version, params,
       (SELECT COUNT(*) FROM json_each(records.result, '$.claims') claim
         WHERE json_extract(claim.value, '$.holds')),
       json_array_length(records.result, '$.claims'),
       json_extract(records.result, '$.passed')
FROM records
WHERE result IS NOT NULL
ORDER BY seq
"""


class SqliteStore:
    """A persistent, resumable map from cache key to experiment record."""

    #: file name used when the store path is a directory
    RECORDS_FILE = "records.sqlite"

    def __init__(self, path: os.PathLike | str) -> None:
        path = Path(path)
        if path.suffix in (".sqlite", ".db"):
            self._file = path
        else:
            self._file = path / self.RECORDS_FILE
        self._connection: Optional[sqlite3.Connection] = None
        self._lock = threading.RLock()

    @property
    def path(self) -> Path:
        """The backing SQLite file."""
        return self._file

    # -- connection ------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        if self._connection is None:
            self._file.parent.mkdir(parents=True, exist_ok=True)
            connection = sqlite3.connect(
                self._file,
                timeout=30.0,
                isolation_level=None,  # autocommit; puts use BEGIN IMMEDIATE
                check_same_thread=False,  # guarded by self._lock instead
            )
            try:
                connection.execute("PRAGMA journal_mode=WAL")
                connection.execute("PRAGMA synchronous=NORMAL")
                connection.execute("PRAGMA busy_timeout=30000")
                connection.executescript(_SCHEMA)
            except sqlite3.DatabaseError as error:
                connection.close()
                raise ModelError(
                    f"cannot open SQLite store {self._file}: {error}"
                ) from error
            self._connection = connection
        return self._connection

    def close(self) -> None:
        """Close the connection (reopened lazily by the next operation)."""
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None

    def load(self) -> "SqliteStore":
        """Reopen the backing file; missing file = empty store.

        SQLite reads always see the committed state, so unlike the JSONL
        backend there is no in-memory index to rebuild — ``load`` exists
        to satisfy the backend protocol and to force crash recovery (a
        stale WAL left by a killed writer is rolled in on open).
        """
        self.close()
        if self._file.exists():
            self._connect()
        return self

    # -- reading ---------------------------------------------------------

    def _query(self, sql: str, parameters=()) -> list:
        if self._connection is None and not self._file.exists():
            return []
        with self._lock:
            return self._connect().execute(sql, parameters).fetchall()

    def __contains__(self, key: str) -> bool:
        return bool(
            self._query("SELECT 1 FROM records WHERE key = ?", (key,))
        )

    def __len__(self) -> int:
        rows = self._query("SELECT COUNT(*) FROM records")
        return rows[0][0] if rows else 0

    def __iter__(self) -> Iterator[dict]:
        return iter(self.records())

    def get(self, key: str) -> Optional[dict]:
        """The record under ``key``, or None (one indexed row lookup)."""
        rows = self._query(
            "SELECT record FROM records WHERE key = ?", (key,)
        )
        return json.loads(rows[0][0]) if rows else None

    def keys(self) -> List[str]:
        """All keys, in first-written order."""
        return [
            row[0]
            for row in self._query("SELECT key FROM records ORDER BY seq")
        ]

    def records(self, experiment_id: Optional[str] = None) -> List[dict]:
        """All records (optionally restricted to one experiment id)."""
        if experiment_id is not None:
            rows = self._query(
                "SELECT record FROM records WHERE experiment_id = ? "
                "ORDER BY seq",
                (experiment_id,),
            )
        else:
            rows = self._query("SELECT record FROM records ORDER BY seq")
        return [json.loads(row[0]) for row in rows]

    def experiment_ids(self) -> List[str]:
        """Distinct experiment ids present, in first-written order."""
        return [
            row[0]
            for row in self._query(
                "SELECT experiment_id FROM records GROUP BY experiment_id "
                "ORDER BY MIN(seq)"
            )
        ]

    # -- aggregation pushdown --------------------------------------------

    def summary_rows(self) -> List[Dict[str, object]]:
        """Per-record summary entries computed inside SQL.

        The columnar fast path behind :func:`repro.sweeps.summary_table`:
        claim counts and the pass verdict come from ``json_each`` /
        ``json_extract`` over the stored result column, so the (large)
        result payloads never cross the connection.  Entries match the
        JSONL backend's Python-side scan field for field.
        """
        entries = []
        for (
            experiment_id,
            seed,
            fast,
            engine,
            version,
            params,
            held,
            claims,
            passed,
        ) in self._query(_SUMMARY_SQL):
            entries.append(
                {
                    "experiment_id": experiment_id,
                    "seed": seed,
                    "fast": bool(fast),
                    "engine": engine,
                    "version": version,
                    "params": json.loads(params),
                    "held": held,
                    "claims": claims,
                    "passed": bool(passed),
                }
            )
        return entries

    # -- writing ---------------------------------------------------------

    def put(self, record: Mapping[str, object]) -> str:
        """Validate and upsert the record in one committed transaction.

        Returns the record's key.  ``BEGIN IMMEDIATE`` takes the write
        lock up front so the first-written ``seq`` computed for a new key
        cannot race another process's insert; duplicate keys update in
        place (last-wins) keeping their original ``seq``.
        """
        validate_record(record)
        payload = canonical_json(record)
        result = record.get("result")
        with self._lock:
            connection = self._connect()
            connection.execute("BEGIN IMMEDIATE")
            try:
                (next_seq,) = connection.execute(
                    "SELECT COALESCE(MAX(seq), 0) + 1 FROM records"
                ).fetchone()
                connection.execute(
                    _UPSERT,
                    (
                        record["key"],
                        next_seq,
                        record["experiment_id"],
                        int(record["seed"]),
                        int(bool(record["fast"])),
                        record["engine"],
                        record["version"],
                        canonical_json(record["params"]),
                        canonical_json(result) if result is not None else None,
                        payload,
                    ),
                )
                connection.execute("COMMIT")
            except BaseException:
                connection.execute("ROLLBACK")
                raise
        return record["key"]

    # -- maintenance -----------------------------------------------------

    def compact(self) -> Dict[str, int]:
        """Checkpoint the WAL and VACUUM; returns the shared stats mapping.

        Upserts keep one row per key, so there are never superseded
        duplicates to drop — compaction reclaims free pages and folds the
        WAL back into the main database file.  Safe against crashes
        (VACUUM is transactional) and reports the same stats keys as the
        JSONL backend, with the duplicate/unreadable counts always zero.
        """
        stats = {
            "records": 0,
            "dropped_duplicates": 0,
            "dropped_unreadable": 0,
            "bytes_before": 0,
            "bytes_after": 0,
        }
        if not self._file.exists():
            return stats
        wal = self._file.with_name(self._file.name + "-wal")
        stats["bytes_before"] = self._file.stat().st_size + (
            wal.stat().st_size if wal.exists() else 0
        )
        with self._lock:
            connection = self._connect()
            connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            connection.execute("VACUUM")
            connection.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        stats["records"] = len(self)
        stats["bytes_after"] = self._file.stat().st_size + (
            wal.stat().st_size if wal.exists() else 0
        )
        return stats
