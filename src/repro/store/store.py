"""Append-only JSONL result store with interrupt-safe resume semantics.

The on-disk format is one JSON record per line (``records.jsonl`` inside
the store directory, or any explicit ``*.jsonl`` path).  Writes are
append-and-flush, so a killed sweep loses at most the record being written
when it died; on load, a trailing partial line (the signature of that
interrupt) is skipped with a warning instead of poisoning the store, and
every complete record written before the interrupt is served as a cache
hit on resume.

Duplicate keys are legal on disk (append-only stores cannot retract) and
resolve last-wins in memory, so re-running a point after a code rollback
simply shadows the older record.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional

from ..errors import ModelError
from .records import canonical_json, validate_record

__all__ = ["ResultStore"]


class ResultStore:
    """A persistent, resumable map from cache key to experiment record."""

    #: file name used when the store path is a directory
    RECORDS_FILE = "records.jsonl"

    def __init__(self, path: os.PathLike | str) -> None:
        path = Path(path)
        if path.suffix == ".jsonl":
            self._file = path
        else:
            self._file = path / self.RECORDS_FILE
        self._records: Dict[str, dict] = {}
        self._loaded = False
        self._needs_newline = False

    @property
    def path(self) -> Path:
        """The backing JSONL file."""
        return self._file

    # -- loading ---------------------------------------------------------

    def load(self) -> "ResultStore":
        """(Re)read the backing file into memory; missing file = empty store."""
        self._records = {}
        self._loaded = True
        self._needs_newline = False
        if not self._file.exists():
            return self
        with open(self._file, "r", encoding="utf-8") as handle:
            content = handle.read()
        # a file not ending in a newline has a partial trailing record (an
        # interrupted append); the next put() must start on a fresh line or
        # it would merge into the garbage and itself become unreadable
        self._needs_newline = bool(content) and not content.endswith("\n")
        lines = content.split("\n")
        for number, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                validate_record(record)
            except (json.JSONDecodeError, ModelError) as error:
                # a partial trailing line is the normal signature of an
                # interrupted sweep; anything else is worth a warning too,
                # but never fatal — resume must always be possible
                warnings.warn(
                    f"{self._file}:{number}: skipping unreadable record "
                    f"({error})",
                    stacklevel=2,
                )
                continue
            self._records[record["key"]] = record
        return self

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            self.load()

    # -- reading ---------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        self._ensure_loaded()
        return key in self._records

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._records)

    def __iter__(self) -> Iterator[dict]:
        self._ensure_loaded()
        return iter(list(self._records.values()))

    def get(self, key: str) -> Optional[dict]:
        """The record under ``key``, or None."""
        self._ensure_loaded()
        return self._records.get(key)

    def keys(self) -> List[str]:
        """All keys, in first-written order."""
        self._ensure_loaded()
        return list(self._records)

    def records(
        self, experiment_id: Optional[str] = None
    ) -> List[dict]:
        """All records (optionally restricted to one experiment id)."""
        self._ensure_loaded()
        out = list(self._records.values())
        if experiment_id is not None:
            out = [r for r in out if r["experiment_id"] == experiment_id]
        return out

    def experiment_ids(self) -> List[str]:
        """Distinct experiment ids present, in first-written order."""
        self._ensure_loaded()
        seen: Dict[str, None] = {}
        for record in self._records.values():
            seen.setdefault(record["experiment_id"], None)
        return list(seen)

    # -- writing ---------------------------------------------------------

    def put(self, record: Mapping[str, object]) -> str:
        """Validate, append to disk, flush, and index the record.

        Returns the record's key.  The flush guarantees the record survives
        a subsequent interrupt — the property the resume path relies on.
        """
        validate_record(record)
        self._ensure_loaded()
        self._file.parent.mkdir(parents=True, exist_ok=True)
        with open(self._file, "a", encoding="utf-8") as handle:
            if self._needs_newline:
                # terminate a partial trailing record left by an interrupt
                handle.write("\n")
                self._needs_newline = False
            handle.write(canonical_json(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        key = record["key"]
        self._records[key] = dict(record)
        return key
