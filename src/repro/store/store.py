"""Append-only JSONL result store with interrupt-safe resume semantics.

The on-disk format is one JSON record per line (``records.jsonl`` inside
the store directory, or any explicit ``*.jsonl`` path).  Writes are
append-and-flush, so a killed sweep loses at most the record being written
when it died; on load, a trailing partial line (the signature of that
interrupt) is skipped with a warning instead of poisoning the store, and
every complete record written before the interrupt is served as a cache
hit on resume.

Concurrent writers are safe: each record is appended as a **single
``write(2)`` on an ``O_APPEND`` descriptor**, so two processes appending
to one store cannot interleave bytes inside each other's lines — the
kernel serialises whole-buffer appends on regular files.  (The previous
implementation used buffered ``"a"``-mode writes, which can split one
logical record across several syscalls and let a concurrent writer land
in the middle.)

Duplicate keys are legal on disk (append-only stores cannot retract) and
resolve last-wins in memory, so re-running a point after a code rollback
simply shadows the older record.  Long-lived stores (e.g. behind
``repro.service``) accumulate those superseded duplicates forever;
:meth:`ResultStore.compact` rewrites the file keeping only the surviving
record per key (``tools/compact_store.py`` is the CLI for it).
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from ..errors import ModelError
from .records import canonical_json, validate_record

__all__ = ["ResultStore"]


def _scan(content: str, origin: str) -> Tuple[Dict[str, dict], int, int]:
    """Parse a store file's content into a last-wins key index.

    Returns ``(records, parsed_lines, unreadable_lines)``.  Shared by
    :meth:`ResultStore.load` (which warns per unreadable line) and
    :meth:`ResultStore.compact` (which reports them as dropped).
    """
    records: Dict[str, dict] = {}
    parsed = 0
    unreadable = 0
    for number, line in enumerate(content.split("\n"), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            validate_record(record)
        except (json.JSONDecodeError, ModelError) as error:
            # a partial trailing line is the normal signature of an
            # interrupted append; anything else is worth a warning too,
            # but never fatal — resume must always be possible
            unreadable += 1
            warnings.warn(
                f"{origin}:{number}: skipping unreadable record ({error})",
                stacklevel=3,
            )
            continue
        parsed += 1
        records[record["key"]] = record
    return records, parsed, unreadable


class ResultStore:
    """A persistent, resumable map from cache key to experiment record."""

    #: file name used when the store path is a directory
    RECORDS_FILE = "records.jsonl"

    def __init__(self, path: os.PathLike | str) -> None:
        path = Path(path)
        if path.suffix == ".jsonl":
            self._file = path
        else:
            self._file = path / self.RECORDS_FILE
        self._records: Dict[str, dict] = {}
        self._loaded = False
        self._needs_newline = False

    @property
    def path(self) -> Path:
        """The backing JSONL file."""
        return self._file

    # -- loading ---------------------------------------------------------

    def load(self) -> "ResultStore":
        """(Re)read the backing file into memory; missing file = empty store."""
        self._records = {}
        self._loaded = True
        self._needs_newline = False
        if not self._file.exists():
            return self
        with open(self._file, "r", encoding="utf-8") as handle:
            content = handle.read()
        # a file not ending in a newline has a partial trailing record (an
        # interrupted append); the next put() must start on a fresh line or
        # it would merge into the garbage and itself become unreadable
        self._needs_newline = bool(content) and not content.endswith("\n")
        self._records, _, _ = _scan(content, str(self._file))
        return self

    def _ensure_loaded(self) -> None:
        if not self._loaded:
            self.load()

    # -- reading ---------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        self._ensure_loaded()
        return key in self._records

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._records)

    def __iter__(self) -> Iterator[dict]:
        self._ensure_loaded()
        return iter(list(self._records.values()))

    def get(self, key: str) -> Optional[dict]:
        """The record under ``key``, or None."""
        self._ensure_loaded()
        return self._records.get(key)

    def keys(self) -> List[str]:
        """All keys, in first-written order."""
        self._ensure_loaded()
        return list(self._records)

    def records(
        self, experiment_id: Optional[str] = None
    ) -> List[dict]:
        """All records (optionally restricted to one experiment id)."""
        self._ensure_loaded()
        out = list(self._records.values())
        if experiment_id is not None:
            out = [r for r in out if r["experiment_id"] == experiment_id]
        return out

    def experiment_ids(self) -> List[str]:
        """Distinct experiment ids present, in first-written order."""
        self._ensure_loaded()
        seen: Dict[str, None] = {}
        for record in self._records.values():
            seen.setdefault(record["experiment_id"], None)
        return list(seen)

    # -- writing ---------------------------------------------------------

    def put(self, record: Mapping[str, object]) -> str:
        """Validate, append to disk, fsync, and index the record.

        Returns the record's key.  The record (plus, after an interrupted
        append, the newline terminating the partial line it left behind)
        goes to disk as one ``write(2)`` on an ``O_APPEND`` descriptor:
        concurrent writers from other processes cannot interleave inside
        it, and the fsync guarantees it survives a subsequent interrupt —
        the property the resume path relies on.
        """
        validate_record(record)
        self._ensure_loaded()
        self._file.parent.mkdir(parents=True, exist_ok=True)
        data = (canonical_json(record) + "\n").encode("utf-8")
        if self._needs_newline:
            # terminate a partial trailing record left by an interrupt
            data = b"\n" + data
        fd = os.open(
            self._file, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            written = os.write(fd, data)
            while written < len(data):  # regular files write fully in
                written += os.write(fd, data[written:])  # practice
            os.fsync(fd)
        finally:
            os.close(fd)
        self._needs_newline = False
        key = record["key"]
        self._records[key] = dict(record)
        return key

    # -- maintenance -----------------------------------------------------

    def compact(self) -> Dict[str, int]:
        """Rewrite the backing file keeping one surviving record per key.

        Drops superseded duplicates (last-wins, exactly as :meth:`load`
        resolves them) and unreadable/partial lines, preserving
        first-written key order.  The rewrite is atomic — records are
        written to a temporary sibling file, fsynced, then ``os.replace``d
        over the original — so a crash mid-compaction leaves the store
        either untouched or fully compacted, never truncated.

        Returns a stats mapping: ``records`` kept, ``dropped_duplicates``,
        ``dropped_unreadable``, ``bytes_before`` and ``bytes_after``.
        Compacting a missing store is a no-op reporting zeros.
        """
        stats = {
            "records": 0,
            "dropped_duplicates": 0,
            "dropped_unreadable": 0,
            "bytes_before": 0,
            "bytes_after": 0,
        }
        if not self._file.exists():
            self._records = {}
            self._loaded = True
            self._needs_newline = False
            return stats
        with open(self._file, "r", encoding="utf-8") as handle:
            content = handle.read()
        records, parsed, unreadable = _scan(content, str(self._file))
        lines = [canonical_json(record) + "\n" for record in records.values()]
        payload = "".join(lines).encode("utf-8")
        temporary = self._file.with_name(self._file.name + ".compact")
        fd = os.open(
            temporary, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644
        )
        try:
            written = 0
            while written < len(payload):
                written += os.write(fd, payload[written:])
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(temporary, self._file)
        self._records = records
        self._loaded = True
        self._needs_newline = False
        stats["records"] = len(records)
        stats["dropped_duplicates"] = parsed - len(records)
        stats["dropped_unreadable"] = unreadable
        stats["bytes_before"] = len(content.encode("utf-8"))
        stats["bytes_after"] = len(payload)
        return stats
