"""Persistent experiment-result store.

Sweeps (and any caller that wants cached experiment runs) persist results
as records keyed by a content hash of *what was run*: experiment id,
knob params, seed, fast/full mode and the package version.  Re-running the
same point is a cache hit; an interrupted sweep resumes from the last
record that reached disk.

Two interchangeable backends implement the :class:`StoreBackend` protocol
(see :mod:`repro.store.backend`): the append-only JSONL
:class:`ResultStore` (the default — human-greppable, diff-able) and the
WAL-mode :class:`SqliteStore` (indexed lookups and SQL-side aggregation
for stores holding millions of records).  :func:`open_store` picks one
from a path and an optional ``--store-backend`` style override.

>>> from repro.store import ResultStore, make_record
>>> from repro.experiments import run_experiment
>>> store = ResultStore("results")            # doctest: +SKIP
>>> record = make_record("a5", seed=0, fast=True,
...                      result=run_experiment("a5"))  # doctest: +SKIP
>>> store.put(record)                          # doctest: +SKIP
>>> record["key"] in store                     # doctest: +SKIP
True
"""

from .backend import STORE_BACKENDS, StoreBackend, detect_backend, open_store
from .records import (
    cache_key,
    canonical_json,
    canonical_params,
    make_record,
    record_result,
    validate_record,
)
from .sqlite import SqliteStore
from .store import ResultStore

__all__ = [
    "ResultStore",
    "SqliteStore",
    "STORE_BACKENDS",
    "StoreBackend",
    "cache_key",
    "canonical_json",
    "canonical_params",
    "detect_backend",
    "make_record",
    "open_store",
    "record_result",
    "validate_record",
]
