"""Persistent experiment-result store.

Sweeps (and any caller that wants cached experiment runs) persist results
as JSONL records keyed by a content hash of *what was run*: experiment id,
knob params, seed, fast/full mode and the package version.  Re-running the
same point is a cache hit; an interrupted sweep resumes from the last
record that reached disk.

>>> from repro.store import ResultStore, make_record
>>> from repro.experiments import run_experiment
>>> store = ResultStore("results")            # doctest: +SKIP
>>> record = make_record("a5", seed=0, fast=True,
...                      result=run_experiment("a5"))  # doctest: +SKIP
>>> store.put(record)                          # doctest: +SKIP
>>> record["key"] in store                     # doctest: +SKIP
True
"""

from .records import (
    cache_key,
    canonical_json,
    canonical_params,
    make_record,
    record_result,
    validate_record,
)
from .store import ResultStore

__all__ = [
    "ResultStore",
    "cache_key",
    "canonical_json",
    "canonical_params",
    "make_record",
    "record_result",
    "validate_record",
]
