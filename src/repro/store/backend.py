"""The store-backend seam: protocol, detection and the ``open_store`` factory.

``repro`` persists experiment records through a small, stable surface —
what :class:`StoreBackend` spells out — so the layers above it (sweeps,
the serving stack, mutation campaigns, aggregation) never care *how*
records reach disk.  Two backends implement it:

===========  ==============================================================
``jsonl``    :class:`~repro.store.store.ResultStore` — append-only JSONL,
             one canonical-JSON record per line, human-greppable,
             interrupt-safe by construction (a torn append is a skipped
             trailing line).  The right default for small stores and for
             stores that double as reviewable artifacts.
``sqlite``   :class:`~repro.store.sqlite.SqliteStore` — a WAL-mode SQLite
             database with a primary-key upsert per record, indexed
             cache-key and experiment-id lookups and summary aggregation
             pushed into SQL.  The right choice once a store holds more
             records than you want re-parsed on every open (the service
             behind millions of requests, long campaign histories).
===========  ==============================================================

Both backends store byte-identical record payloads (the canonical-JSON
form of :func:`repro.store.records.make_record`), agree on last-wins
duplicate semantics and first-written key order, and pass one shared
conformance suite (``tests/store/test_backend_contract.py``) — so a store
can be re-hosted from one backend to the other by replaying
``records()`` into ``put()``.

Callers pick a backend with :func:`open_store`; ``"auto"`` detects from
the path (suffix first, then which backend's file already exists in a
store directory), so existing stores keep opening with no flag at all.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Protocol, runtime_checkable

from ..errors import ModelError

__all__ = ["STORE_BACKENDS", "StoreBackend", "detect_backend", "open_store"]

#: backend names accepted by :func:`open_store` and the CLI flags
STORE_BACKENDS = ("auto", "jsonl", "sqlite")


@runtime_checkable
class StoreBackend(Protocol):
    """What every result-store backend must provide.

    The semantic contract (enforced by the shared conformance suite):

    * :meth:`put` validates the record, makes it durable before returning,
      and resolves duplicate keys **last-wins** while preserving the key's
      first-written position in iteration order;
    * a writer killed mid-:meth:`put` leaves the store loadable with every
      previously acknowledged record intact (interrupt safety);
    * concurrent multi-process :meth:`put` calls never corrupt the store
      or each other's records;
    * :meth:`compact` reclaims space from superseded data atomically — a
      crash mid-compaction leaves the store either untouched or fully
      compacted.
    """

    @property
    def path(self) -> Path:
        """The backing file on disk."""
        ...

    def load(self) -> "StoreBackend":
        """(Re)read the backing file; missing file = empty store."""
        ...

    def get(self, key: str) -> Optional[dict]:
        """The record under ``key``, or None."""
        ...

    def put(self, record: Mapping[str, object]) -> str:
        """Validate, durably persist and index the record; returns its key."""
        ...

    def keys(self) -> List[str]:
        """All keys, in first-written order."""
        ...

    def records(self, experiment_id: Optional[str] = None) -> List[dict]:
        """All records (optionally restricted to one experiment id)."""
        ...

    def experiment_ids(self) -> List[str]:
        """Distinct experiment ids present, in first-written order."""
        ...

    def compact(self) -> Dict[str, int]:
        """Reclaim space; returns the stats mapping every backend shares."""
        ...

    def __contains__(self, key: str) -> bool: ...

    def __len__(self) -> int: ...

    def __iter__(self) -> Iterator[dict]: ...


def detect_backend(path: os.PathLike | str) -> str:
    """The backend a path refers to, without opening it.

    An explicit file suffix decides (``.jsonl`` → jsonl, ``.sqlite`` /
    ``.db`` → sqlite).  A store *directory* is inspected: whichever
    backend's records file already exists wins (sqlite only when the JSONL
    file is absent, so legacy stores never silently change backend), and a
    fresh directory defaults to jsonl — the seed behaviour.
    """
    from .sqlite import SqliteStore
    from .store import ResultStore

    path = Path(path)
    if path.suffix == ".jsonl":
        return "jsonl"
    if path.suffix in (".sqlite", ".db"):
        return "sqlite"
    if (path / SqliteStore.RECORDS_FILE).exists() and not (
        path / ResultStore.RECORDS_FILE
    ).exists():
        return "sqlite"
    return "jsonl"


def open_store(path: os.PathLike | str, backend: str = "auto") -> StoreBackend:
    """Open (or create) the result store at ``path`` with ``backend``.

    ``backend="auto"`` resolves via :func:`detect_backend`.  Asking for a
    backend that contradicts an explicit file suffix is an error — it
    would create a JSONL file named ``.sqlite`` or vice versa, and every
    later ``auto`` open would mis-detect it.
    """
    if backend not in STORE_BACKENDS:
        raise ModelError(
            f"unknown store backend {backend!r}; known: "
            f"{', '.join(STORE_BACKENDS)}"
        )
    path = Path(path)
    if backend == "auto":
        backend = detect_backend(path)
    elif path.suffix == ".jsonl" and backend != "jsonl":
        raise ModelError(
            f"store path {path} is a .jsonl file but backend={backend!r} "
            f"was requested"
        )
    elif path.suffix in (".sqlite", ".db") and backend != "sqlite":
        raise ModelError(
            f"store path {path} is a SQLite file but backend={backend!r} "
            f"was requested"
        )
    if backend == "sqlite":
        from .sqlite import SqliteStore

        return SqliteStore(path)
    from .store import ResultStore

    return ResultStore(path)
