"""Record schema, canonical JSON and cache keys for the result store.

A *record* is one completed experiment run:

.. code-block:: json

    {
      "key":           "<sha256 of the run identity>",
      "experiment_id": "a2",
      "seed":          0,
      "fast":          true,
      "params":        {"presence_prob": 0.3},
      "version":       "1.0.0",
      "result":        { ... ExperimentResult.to_payload() ... }
    }

The **cache key** hashes the run *identity* — ``(experiment_id, params,
seed, fast, version)`` — never the result, so a stored record answers "has
this exact point already been computed by this code?".  Identity fields are
serialized with :func:`canonical_json` (sorted keys, no whitespace,
``repr``-stable floats), which makes the key independent of dict insertion
order and of the platform the hash is computed on.

Records carry no timestamps: the same run produces byte-identical records
everywhere, so stores themselves are reproducible artifacts and golden
tests can diff them directly.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Mapping, Optional

from .._version import __version__
from ..errors import ModelError
from ..experiments.base import ExperimentResult, canonical_cell

__all__ = [
    "cache_key",
    "canonical_json",
    "canonical_params",
    "make_record",
    "record_result",
    "validate_record",
]

_REQUIRED_FIELDS = (
    "key",
    "experiment_id",
    "seed",
    "fast",
    "params",
    "engine",
    "version",
)


def canonical_json(value: object) -> str:
    """Deterministic JSON: sorted keys, compact separators, strict floats.

    ``allow_nan=False`` forces non-finite floats to be tagged up front (via
    :func:`~repro.experiments.base.canonical_cell`) instead of leaking the
    non-standard ``NaN``/``Infinity`` literals into records.
    """
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def canonical_params(params: Optional[Mapping[str, object]]) -> Dict[str, object]:
    """Knob params as a JSON-safe dict (numpy scalars and sequences included)."""
    if not params:
        return {}
    return {str(name): canonical_cell(value) for name, value in params.items()}


def cache_key(
    experiment_id: str,
    seed: int = 0,
    fast: bool = True,
    params: Optional[Mapping[str, object]] = None,
    version: str = __version__,
    engine: str = "auto",
) -> str:
    """The content hash identifying one sweep point.

    Two calls with the same identity produce the same key regardless of the
    ``params`` dict's insertion order; any change to the experiment id, a
    knob value, the seed, the mode, the engine or the package version
    changes the key (so results computed by older code — or by a different
    Monte-Carlo engine, whose stream layout differs — are never served as
    cache hits).  ``n_jobs`` is deliberately *not* part of the identity:
    results are bit-identical for any worker count.
    """
    identity = {
        "experiment_id": str(experiment_id),
        "seed": int(seed),
        "fast": bool(fast),
        "params": canonical_params(params),
        "engine": str(engine),
        "version": str(version),
    }
    return hashlib.sha256(canonical_json(identity).encode("utf-8")).hexdigest()


def make_record(
    experiment_id: str,
    seed: int = 0,
    fast: bool = True,
    params: Optional[Mapping[str, object]] = None,
    result: Optional[ExperimentResult] = None,
    version: str = __version__,
    engine: str = "auto",
) -> Dict[str, object]:
    """Build a store record for one completed run."""
    record: Dict[str, object] = {
        "key": cache_key(experiment_id, seed, fast, params, version, engine),
        "experiment_id": str(experiment_id),
        "seed": int(seed),
        "fast": bool(fast),
        "params": canonical_params(params),
        "engine": str(engine),
        "version": str(version),
    }
    if result is not None:
        if result.experiment_id != experiment_id:
            raise ModelError(
                f"record for {experiment_id!r} given a result of "
                f"{result.experiment_id!r}"
            )
        record["result"] = result.to_payload()
    return record


def record_result(record: Mapping[str, object]) -> ExperimentResult:
    """The stored :class:`ExperimentResult`, rebuilt bit-for-bit."""
    try:
        payload = record["result"]
    except KeyError:
        raise ModelError(
            f"record {record.get('key', '<unkeyed>')!r} has no result payload"
        ) from None
    return ExperimentResult.from_payload(payload)


def validate_record(record: Mapping[str, object]) -> None:
    """Check the record schema and that the key matches the identity fields.

    Raises
    ------
    ModelError
        For missing fields or a key that does not hash the record's own
        identity (a corrupted or hand-edited store line).
    """
    missing = [field for field in _REQUIRED_FIELDS if field not in record]
    if missing:
        raise ModelError(f"record is missing field(s): {', '.join(missing)}")
    expected = cache_key(
        record["experiment_id"],
        record["seed"],
        record["fast"],
        record["params"],
        record["version"],
        record["engine"],
    )
    if record["key"] != expected:
        raise ModelError(
            f"record key {record['key']!r} does not match its identity "
            f"(expected {expected!r})"
        )
