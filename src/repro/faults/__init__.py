"""Fault model substrate.

Section 3 of the paper describes faults through their *failure regions*:
"within this space a set of points (failure regions) will be associated with
a fault: typically there will be many demands that would trigger a particular
fault".  A :class:`Fault` is therefore a named failure region over the demand
space; a :class:`FaultUniverse` is the finite set of faults a population of
versions may contain.  Generators create universes with controlled region
size, locality and overlap, because overlap between the fault sets of two
methodologies is what drives the covariance terms in the forced-diversity
results (eqs. (9), (21), (25)).
"""

from .fault import Fault
from .universe import FaultUniverse
from .generators import (
    blockwise_universe,
    clustered_universe,
    disjoint_universe,
    overlapping_pair,
    uniform_random_universe,
    zipf_sized_universe,
)
from .difficulty import (
    difficulty_from_bernoulli,
    tested_difficulty_given_suite,
)

__all__ = [
    "Fault",
    "FaultUniverse",
    "uniform_random_universe",
    "clustered_universe",
    "blockwise_universe",
    "disjoint_universe",
    "zipf_sized_universe",
    "overlapping_pair",
    "difficulty_from_bernoulli",
    "tested_difficulty_given_suite",
]
