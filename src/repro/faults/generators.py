"""Random fault-universe generators.

The experiments need fault structures with controllable:

* **region size** — how many demands each fault breaks (drives per-fault
  detectability and the speed of reliability growth);
* **locality** — whether regions are scattered or clustered (clustered
  regions create demand-difficulty variation, the engine of the EL penalty);
* **overlap between methodologies** — shared faults between two version
  populations create positive difficulty covariance; disjoint fault sets
  with complementary placement can create negative covariance (the LM
  better-than-independence case).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..demand import DemandPartition, DemandSpace
from ..errors import ModelError
from ..rng import as_generator
from ..types import SeedLike
from .universe import FaultUniverse

__all__ = [
    "uniform_random_universe",
    "clustered_universe",
    "blockwise_universe",
    "disjoint_universe",
    "zipf_sized_universe",
    "overlapping_pair",
]


def _validate_counts(space: DemandSpace, n_faults: int, region_size: int) -> None:
    if n_faults < 0:
        raise ModelError(f"n_faults must be >= 0, got {n_faults}")
    if not 1 <= region_size <= space.size:
        raise ModelError(
            f"region_size must be in 1..{space.size}, got {region_size}"
        )


def uniform_random_universe(
    space: DemandSpace,
    n_faults: int,
    region_size: int,
    rng: SeedLike = None,
) -> FaultUniverse:
    """Faults with regions drawn uniformly without replacement.

    Every fault breaks exactly ``region_size`` demands chosen uniformly at
    random.  With many faults this approaches a flat difficulty function;
    use :func:`clustered_universe` when difficulty variation is wanted.
    """
    _validate_counts(space, n_faults, region_size)
    generator = as_generator(rng)
    regions = [
        generator.choice(space.size, size=region_size, replace=False)
        for _ in range(n_faults)
    ]
    return FaultUniverse.from_regions(space, regions)


def clustered_universe(
    space: DemandSpace,
    n_faults: int,
    region_size: int,
    concentration: float = 4.0,
    rng: SeedLike = None,
) -> FaultUniverse:
    """Faults whose regions cluster around random anchor demands.

    Each fault picks an anchor uniformly, then draws its region from a
    geometric-decay kernel around the anchor (wrap-around).  Larger
    ``concentration`` makes regions tighter, which concentrates failures on
    few demands and **raises the variance of the difficulty function** —
    the key quantity in the EL penalty of eq. (6).
    """
    _validate_counts(space, n_faults, region_size)
    if concentration <= 0:
        raise ModelError(f"concentration must be > 0, got {concentration}")
    generator = as_generator(rng)
    positions = np.arange(space.size)
    regions = []
    for _ in range(n_faults):
        anchor = int(generator.integers(space.size))
        distance = np.abs(positions - anchor)
        distance = np.minimum(distance, space.size - distance)
        weights = np.exp(-concentration * distance / space.size)
        weights /= weights.sum()
        region = generator.choice(
            space.size, size=region_size, replace=False, p=weights
        )
        regions.append(region)
    return FaultUniverse.from_regions(space, regions)


def blockwise_universe(
    partition: DemandPartition,
    faults_per_block: int,
    region_size: int,
    rng: SeedLike = None,
) -> FaultUniverse:
    """Faults confined to single partition blocks.

    Gives exact locality control: a fault in block ``b`` breaks only
    demands of block ``b``.  Used by the forced-diversity experiments to
    place the faults of methodology A and methodology B in chosen blocks.
    """
    if faults_per_block < 0:
        raise ModelError(f"faults_per_block must be >= 0, got {faults_per_block}")
    generator = as_generator(rng)
    regions = []
    for block in partition.blocks():
        size = min(region_size, block.size)
        if size < 1:
            raise ModelError("encountered an empty partition block")
        for _ in range(faults_per_block):
            region = generator.choice(block, size=size, replace=False)
            regions.append(region)
    return FaultUniverse.from_regions(partition.space, regions)


def disjoint_universe(
    space: DemandSpace,
    n_faults: int,
    region_size: int,
    rng: SeedLike = None,
) -> FaultUniverse:
    """Faults with mutually disjoint failure regions.

    The disjoint-regions assumption is the analysable special case the
    paper cites from refs. [6] and [7].  With disjoint regions each demand
    is covered by at most one fault, so difficulty functions and testing
    closures take particularly simple forms — useful as an oracle for the
    general machinery.
    """
    _validate_counts(space, n_faults, region_size)
    if n_faults * region_size > space.size:
        raise ModelError(
            f"cannot fit {n_faults} disjoint regions of size {region_size} "
            f"into {space.size} demands"
        )
    generator = as_generator(rng)
    permuted = generator.permutation(space.size)
    regions = [
        permuted[i * region_size : (i + 1) * region_size] for i in range(n_faults)
    ]
    return FaultUniverse.from_regions(space, regions)


def zipf_sized_universe(
    space: DemandSpace,
    n_faults: int,
    max_region_size: int,
    exponent: float = 1.0,
    rng: SeedLike = None,
) -> FaultUniverse:
    """Faults with Zipf-distributed region sizes.

    Real fault populations mix a few "large" faults (easy to find, broken
    on many demands) with many "small" ones (the long tail that dominates
    late testing).  Fault ``k`` gets region size
    ``max(1, round(max_region_size / (k+1)**exponent))``, placed uniformly.
    This produces the law-of-diminishing-returns growth curves of E14.
    """
    _validate_counts(space, n_faults, max_region_size)
    if exponent < 0:
        raise ModelError(f"exponent must be >= 0, got {exponent}")
    generator = as_generator(rng)
    regions = []
    for rank in range(n_faults):
        size = max(1, round(max_region_size / (rank + 1) ** exponent))
        size = min(size, space.size)
        region = generator.choice(space.size, size=size, replace=False)
        regions.append(region)
    return FaultUniverse.from_regions(space, regions)


def overlapping_pair(
    space: DemandSpace,
    n_shared: int,
    n_unique_each: int,
    region_size: int,
    rng: SeedLike = None,
    disjoint_unique_regions: bool = False,
) -> Tuple[FaultUniverse, np.ndarray, np.ndarray]:
    """A universe plus fault-id sets for two methodologies with controlled overlap.

    Builds ``n_shared + 2 * n_unique_each`` faults and returns
    ``(universe, ids_a, ids_b)`` where methodologies A and B share exactly
    the first ``n_shared`` faults.  Sweeping ``n_shared`` moves the
    difficulty covariance ``Cov(Θ_A, Θ_B)`` (and the same-suite testing
    covariance of eq. (21)) from strongly positive towards zero or negative
    — the A3 ablation.

    With ``disjoint_unique_regions=True`` the unique faults of A and B are
    placed on disjoint halves of the demand space, the classic construction
    for *negative* difficulty covariance: where A tends to fail, B does not,
    and vice versa.
    """
    total = n_shared + 2 * n_unique_each
    _validate_counts(space, total, region_size)
    generator = as_generator(rng)
    regions = []
    if disjoint_unique_regions:
        half = space.size // 2
        if half < region_size or n_shared * region_size > space.size:
            raise ModelError(
                "demand space too small for disjoint unique regions of "
                f"size {region_size}"
            )
        low = np.arange(half)
        high = np.arange(half, space.size)
        for _ in range(n_shared):
            regions.append(generator.choice(space.size, region_size, replace=False))
        for _ in range(n_unique_each):
            regions.append(generator.choice(low, region_size, replace=False))
        for _ in range(n_unique_each):
            regions.append(generator.choice(high, region_size, replace=False))
    else:
        for _ in range(total):
            regions.append(generator.choice(space.size, region_size, replace=False))
    universe = FaultUniverse.from_regions(space, regions)
    shared = np.arange(n_shared, dtype=np.int64)
    ids_a = np.concatenate(
        [shared, np.arange(n_shared, n_shared + n_unique_each, dtype=np.int64)]
    )
    ids_b = np.concatenate(
        [
            shared,
            np.arange(
                n_shared + n_unique_each,
                n_shared + 2 * n_unique_each,
                dtype=np.int64,
            ),
        ]
    )
    return universe, ids_a, ids_b
