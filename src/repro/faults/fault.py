"""A fault and its failure region.

The paper's testing mechanics (section 3) revolve around the sets
``O_x = {f1, f2, ...}`` (faults causing a failure on demand ``x``) and
``D_X`` (all demands those faults break).  Making the fault-to-region map a
first-class object lets the testing engine implement exactly the described
behaviour: fixing a fault converts *every* demand in its region — "the
tested software will have more demands converted from failures to successes
than the number of failures observed during the testing".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..demand import DemandSpace
from ..errors import ModelError

__all__ = ["Fault"]


@dataclass(frozen=True)
class Fault:
    """A single fault: an identifier plus the demands it breaks.

    Parameters
    ----------
    space:
        Demand space the region lives in.
    region:
        Demand indices on which a version containing this fault fails.
        Must be non-empty — a fault with an empty region would be
        unobservable and irremovable, contributing nothing to any model.
    identifier:
        Index of this fault within its universe.  Also used by the
        back-to-back output model: coincident failures caused by the *same*
        fault are the canonical "identical failure" case.
    """

    space: DemandSpace
    region: np.ndarray
    identifier: int
    _mask: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        region = self.space.validate_demands(self.region)
        if region.size == 0:
            raise ModelError(f"fault {self.identifier} has an empty failure region")
        if self.identifier < 0:
            raise ModelError(f"fault identifier must be >= 0, got {self.identifier}")
        object.__setattr__(self, "region", region)
        mask = np.zeros(self.space.size, dtype=bool)
        mask[region] = True
        object.__setattr__(self, "_mask", mask)

    @property
    def mask(self) -> np.ndarray:
        """Boolean indicator of the failure region over the demand space."""
        return self._mask

    @property
    def size(self) -> int:
        """Number of demands in the failure region."""
        return int(self.region.size)

    def covers(self, demand: int) -> bool:
        """True iff this fault causes a failure on ``demand``."""
        return bool(self._mask[self.space.validate_demand(demand)])

    def triggered_by(self, demands: Sequence[int] | np.ndarray) -> bool:
        """True iff any demand in ``demands`` lies in the failure region.

        This is the activation condition of the testing process: a suite
        containing any demand of the region reveals the fault (under a
        perfect oracle), after which perfect fixing removes it entirely.
        """
        demands = self.space.validate_demands(demands)
        return bool(self._mask[demands].any())

    def overlap(self, other: "Fault") -> int:
        """Number of demands in both failure regions."""
        self.space.require_same(other.space)
        return int(np.count_nonzero(self._mask & other._mask))
