"""Difficulty functions derived from fault structure.

Under the Bernoulli population model — each fault ``f`` independently
present in a random version with probability ``p_f`` — the EL difficulty
function has the closed form

    theta(x) = P(some fault covering x is present)
             = 1 - prod_{f : x in R_f} (1 - p_f)                       (eq. (1))

and, for a *fixed* test suite ``t`` under perfect detection and fixing, the
post-test difficulty (the paper's ``ξ(x, t)``, eq. (13)) is the same product
restricted to faults whose regions the suite misses:

    xi(x, t) = 1 - prod_{f : x in R_f, R_f ∩ t = ∅} (1 - p_f)

These two functions are the bridge between the concrete fault substrate and
the abstract measure-theoretic quantities of the paper, and they are exact,
not sampled.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ModelError, ProbabilityError
from .universe import FaultUniverse

__all__ = ["difficulty_from_bernoulli", "tested_difficulty_given_suite"]


def _validate_presence_probs(
    universe: FaultUniverse, presence_probs: Sequence[float] | np.ndarray
) -> np.ndarray:
    probs = np.asarray(presence_probs, dtype=np.float64)
    if probs.shape != (len(universe),):
        raise ModelError(
            f"presence probability vector length {probs.shape} does not "
            f"match universe size {len(universe)}"
        )
    if np.any(probs < 0.0) or np.any(probs > 1.0) or np.any(~np.isfinite(probs)):
        raise ProbabilityError("fault presence probabilities must lie in [0, 1]")
    return probs


def difficulty_from_bernoulli(
    universe: FaultUniverse, presence_probs: Sequence[float] | np.ndarray
) -> np.ndarray:
    """Exact ``theta(x)`` for a Bernoulli fault population.

    Parameters
    ----------
    universe:
        The fault universe.
    presence_probs:
        Per-fault inclusion probability ``p_f``.

    Returns
    -------
    numpy.ndarray
        Length-``n_demands`` vector of ``theta(x)``.

    Notes
    -----
    Computed in log-space as ``1 - exp(sum log(1-p_f))`` over covering
    faults, which is vectorised as a matrix product of the coverage matrix
    with ``log1p(-p)``.  Faults with ``p_f = 1`` force ``theta(x) = 1`` on
    their region; handled exactly.
    """
    probs = _validate_presence_probs(universe, presence_probs)
    coverage = universe.coverage.astype(np.float64)
    certain = probs >= 1.0
    with np.errstate(divide="ignore"):
        log_miss = np.where(certain, 0.0, np.log1p(-np.where(certain, 0.0, probs)))
    log_prod = coverage.T @ log_miss
    theta = 1.0 - np.exp(log_prod)
    if certain.any():
        forced = universe.coverage[certain].any(axis=0)
        theta = np.where(forced, 1.0, theta)
    return np.clip(theta, 0.0, 1.0)


def tested_difficulty_given_suite(
    universe: FaultUniverse,
    presence_probs: Sequence[float] | np.ndarray,
    suite_demands: Sequence[int] | np.ndarray,
) -> np.ndarray:
    """Exact ``xi(x, t)`` — difficulty after perfect testing with suite ``t``.

    Only faults whose failure regions the suite misses survive testing;
    the difficulty restricted to those survivors is again a Bernoulli
    product.  Demand-wise, ``xi(x, t) <= theta(x)`` always holds, which is
    the paper's score-monotonicity property lifted to the population level.
    """
    probs = _validate_presence_probs(universe, presence_probs)
    survivors = universe.surviving(suite_demands)
    restricted = np.zeros_like(probs)
    restricted[survivors] = probs[survivors]
    return difficulty_from_bernoulli(universe, restricted)
