"""The fault universe: every fault a version might contain.

The Bernoulli population model (``repro.populations.bernoulli``) draws a
version as a random subset of a :class:`FaultUniverse`.  The universe also
precomputes the dense fault-by-demand coverage matrix that all vectorised
analytics (difficulty functions, inclusion-exclusion closed forms, testing
closure) operate on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence

import numpy as np

from ..demand import DemandSpace
from ..errors import IncompatibleSpaceError, ModelError
from ..types import as_index_array
from .fault import Fault

__all__ = ["FaultUniverse"]


@dataclass(frozen=True)
class FaultUniverse:
    """An immutable, indexed collection of faults over one demand space.

    Parameters
    ----------
    space:
        The shared demand space.
    faults:
        Faults with identifiers ``0 .. len(faults)-1`` in order.  The
        constructor enforces the identifier convention so that boolean
        fault-presence vectors index consistently everywhere.
    """

    space: DemandSpace
    faults: tuple
    _coverage: np.ndarray = field(init=False, repr=False, compare=False)
    _coverage_f64: np.ndarray | None = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        faults = tuple(self.faults)
        for index, fault in enumerate(faults):
            if not isinstance(fault, Fault):
                raise ModelError(f"item {index} is not a Fault: {fault!r}")
            self.space.require_same(fault.space)
            if fault.identifier != index:
                raise ModelError(
                    f"fault at position {index} has identifier "
                    f"{fault.identifier}; identifiers must equal positions"
                )
        object.__setattr__(self, "faults", faults)
        if faults:
            coverage = np.stack([fault.mask for fault in faults])
        else:
            coverage = np.zeros((0, self.space.size), dtype=bool)
        object.__setattr__(self, "_coverage", coverage)

    @classmethod
    def from_regions(
        cls, space: DemandSpace, regions: Sequence[Sequence[int] | np.ndarray]
    ) -> "FaultUniverse":
        """Build a universe from raw failure regions (identifiers assigned)."""
        faults = tuple(
            Fault(space, np.asarray(region), identifier=index)
            for index, region in enumerate(regions)
        )
        return cls(space, faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self.faults)

    def __getitem__(self, index: int) -> Fault:
        return self.faults[index]

    @property
    def coverage(self) -> np.ndarray:
        """Boolean matrix ``[n_faults, n_demands]``; row ``f`` is fault ``f``'s region."""
        return self._coverage

    def faults_covering(self, demand: int) -> np.ndarray:
        """Identifiers of faults whose region contains ``demand``.

        This is the paper's ``O_x`` for the *maximal* version containing
        every fault; an actual version's ``O_x`` is the intersection with
        its fault set.
        """
        demand = self.space.validate_demand(demand)
        return np.flatnonzero(self._coverage[:, demand]).astype(np.int64)

    def coverage_counts(self) -> np.ndarray:
        """Per-demand count of faults covering each demand."""
        return self._coverage.sum(axis=0).astype(np.int64)

    def triggered_by(self, demands: Sequence[int] | np.ndarray) -> np.ndarray:
        """Identifiers of faults triggered by any demand in ``demands``.

        Under a perfect oracle and perfect fixing, these are exactly the
        faults that testing with suite ``demands`` removes from any version
        containing them.
        """
        demands = self.space.validate_demands(demands)
        if demands.size == 0:
            return np.empty(0, dtype=np.int64)
        hit = self._coverage[:, demands].any(axis=1)
        return np.flatnonzero(hit).astype(np.int64)

    def _coverage_float(self) -> np.ndarray:
        """Float64 view of the coverage matrix, cached for the batch kernels.

        Chunked batch runs call :meth:`triggered_matrix` /
        :meth:`failure_matrix` once per chunk; converting the fixed coverage
        matrix each time would be pure repeated work.
        """
        if self._coverage_f64 is None:
            object.__setattr__(
                self, "_coverage_f64", self._coverage.astype(np.float64)
            )
        return self._coverage_f64

    def triggered_matrix(self, suite_masks: np.ndarray) -> np.ndarray:
        """Batched :meth:`triggered_by`: which faults each suite triggers.

        Parameters
        ----------
        suite_masks:
            Boolean matrix ``[n_suites, n_demands]``; row ``r`` is the
            demand-membership mask of suite ``r``.

        Returns
        -------
        Boolean matrix ``[n_suites, n_faults]`` where entry ``(r, f)`` is
        True iff suite ``r`` exercises at least one demand of fault ``f``'s
        region.  This is the perfect-oracle testing closure as one matrix
        product: the hot kernel of the batch Monte-Carlo engine.
        """
        masks = np.asarray(suite_masks, dtype=bool)
        if masks.ndim != 2 or masks.shape[1] != self.space.size:
            raise IncompatibleSpaceError(
                f"suite masks of shape {masks.shape} do not match demand "
                f"space size {self.space.size}"
            )
        if not len(self.faults):
            return np.zeros((masks.shape[0], 0), dtype=bool)
        # float matmul routes through BLAS, which is far faster than any
        # boolean reduction over the (suites, faults, demands) cube.
        hits = masks.astype(np.float64) @ self._coverage_float().T
        return hits > 0.5

    def failure_matrix(self, presence: np.ndarray) -> np.ndarray:
        """Per-version failure masks from a batch of fault-presence rows.

        Parameters
        ----------
        presence:
            Boolean matrix ``[n_versions, n_faults]``; row ``r`` marks the
            faults version ``r`` contains.

        Returns
        -------
        Boolean matrix ``[n_versions, n_demands]`` where entry ``(r, x)``
        is True iff version ``r`` fails on demand ``x`` — the batched form
        of :attr:`repro.versions.Version.failure_mask`.
        """
        rows = np.asarray(presence, dtype=bool)
        if rows.ndim != 2 or rows.shape[1] != len(self.faults):
            raise ModelError(
                f"presence matrix of shape {rows.shape} does not match "
                f"universe size {len(self.faults)}"
            )
        if not len(self.faults):
            return np.zeros((rows.shape[0], self.space.size), dtype=bool)
        hits = rows.astype(np.float64) @ self._coverage_float()
        return hits > 0.5

    def surviving(self, demands: Sequence[int] | np.ndarray) -> np.ndarray:
        """Identifiers of faults *not* triggered by the given demands."""
        demands = self.space.validate_demands(demands)
        if demands.size == 0:
            return np.arange(len(self.faults), dtype=np.int64)
        hit = self._coverage[:, demands].any(axis=1)
        return np.flatnonzero(~hit).astype(np.int64)

    def region_masses(self, probabilities: np.ndarray) -> np.ndarray:
        """Usage mass ``Q(R_f)`` of every region under demand probabilities.

        ``(1 - Q(R_f))**n`` is then the survival probability of fault ``f``
        under an i.i.d. operational suite of ``n`` demands — the basic
        quantity of the exact reliability-growth formulas.
        """
        probs = np.asarray(probabilities, dtype=np.float64)
        if probs.shape != (self.space.size,):
            raise IncompatibleSpaceError(
                f"probability vector length {probs.shape} does not match "
                f"demand space size {self.space.size}"
            )
        return self._coverage @ probs

    def union_mask(self, fault_ids: Sequence[int] | np.ndarray) -> np.ndarray:
        """Boolean demand mask of the union of the given faults' regions."""
        ids = as_index_array(fault_ids)
        if ids.size and (ids[0] < 0 or ids[-1] >= len(self.faults)):
            raise ModelError(
                f"fault ids {ids.tolist()} outside universe of size {len(self.faults)}"
            )
        if ids.size == 0:
            return np.zeros(self.space.size, dtype=bool)
        return self._coverage[ids].any(axis=0)

    def validate_fault_ids(self, fault_ids: Sequence[int] | np.ndarray) -> np.ndarray:
        """Canonicalise fault identifiers against this universe."""
        ids = as_index_array(fault_ids)
        if ids.size and (ids[0] < 0 or ids[-1] >= len(self.faults)):
            bad = ids[(ids < 0) | (ids >= len(self.faults))]
            raise ModelError(
                f"fault ids {bad.tolist()} outside universe of size {len(self.faults)}"
            )
        return ids

    def presence_mask(self, fault_ids: Sequence[int] | np.ndarray) -> np.ndarray:
        """Boolean fault-presence vector from a list of identifiers."""
        mask = np.zeros(len(self.faults), dtype=bool)
        mask[self.validate_fault_ids(fault_ids)] = True
        return mask

    def restrict(self, fault_ids: Sequence[int] | np.ndarray) -> "FaultUniverse":
        """A new universe containing only the given faults (re-identified)."""
        ids = self.validate_fault_ids(fault_ids)
        regions = [self.faults[int(i)].region for i in ids]
        return FaultUniverse.from_regions(self.space, regions)

    def overlap_matrix(self) -> np.ndarray:
        """Pairwise region-overlap counts ``[n_faults, n_faults]``."""
        cov = self._coverage.astype(np.int64)
        return cov @ cov.T

    def describe(self) -> str:
        """One-line human summary used by example scripts."""
        sizes = [fault.size for fault in self.faults] or [0]
        return (
            f"FaultUniverse(n_faults={len(self.faults)}, "
            f"demands={self.space.size}, "
            f"region sizes min/median/max = {min(sizes)}/"
            f"{int(np.median(sizes))}/{max(sizes)})"
        )
