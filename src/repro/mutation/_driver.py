"""Standalone pytest driver executed inside the mutation sandbox.

This file is copied into the sandbox directory and run there as a plain
script (``python _mutation_driver.py out.json test_a.py ...``), so it
must not import anything from :mod:`repro` — the package under test may
be the mutated one.  It runs the given test files through pytest with a
result-collecting plugin and writes one JSON object::

    {"exit": <pytest exit code>, "tests": {"<nodeid>": "<outcome>", ...}}

Outcomes are ``"passed"``/``"failed"`` from the test call phase;
setup/teardown failures surface as ``"error"``.  Collection failures
leave ``tests`` empty with a nonzero exit code, which the campaign
treats as every test detecting the mutant.
"""

import json
import sys

import pytest


class _Collector:
    def __init__(self):
        self.tests = {}

    def pytest_runtest_logreport(self, report):
        if report.when == "call":
            self.tests[report.nodeid] = report.outcome
        elif report.failed:
            # setup or teardown blew up: the mutant broke the harness
            self.tests[report.nodeid] = "error"


def main(argv):
    out_path = argv[0]
    test_paths = argv[1:]
    collector = _Collector()
    exit_code = pytest.main(
        ["-q", "--tb=no", "-p", "no:cacheprovider", *test_paths],
        plugins=[collector],
    )
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump({"exit": int(exit_code), "tests": collector.tests}, handle)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
