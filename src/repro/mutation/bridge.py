"""Bridge: fitted detection distributions → model fault populations.

This closes the loop the tentpole is about: instead of *assuming* a
fault-size profile (uniform, Zipf with a chosen exponent, …), build a
:class:`~repro.faults.FaultUniverse` whose region sizes come from the
**measured** per-mutant detection probabilities of a real mutation
campaign, then hand it to the existing ``simulate_*`` machinery
unchanged.

The mapping treats the judging test suite as a uniform probe of the
demand space: a mutant detected by fraction ``p̂_i`` of the tests maps to
a fault whose failure region covers ``round(p̂_i · |D|)`` demands
(clamped to at least one demand — a fault with an empty region is no
fault).  The *assumed* counterpart keeps everything identical — same
fault count, same demand space, same random placement streams — but
forces every region to the common mean size, which is exactly the
classical equal-size assumption the paper's model starts from.  Any
difference between experiments run on the two populations is therefore
attributable to measured size heterogeneity alone.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..demand import DemandSpace
from ..errors import ModelError
from ..faults import FaultUniverse
from ..populations import BernoulliFaultPopulation
from ..rng import SeedLike, as_generator, spawn_many
from .estimators import SizeBiasedMultinomialFit

__all__ = [
    "region_sizes_from_fit",
    "universe_from_fit",
    "measured_population",
    "assumed_population",
]


def region_sizes_from_fit(
    fit: SizeBiasedMultinomialFit, space: DemandSpace
) -> List[int]:
    """Measured region sizes, one per mutant, in input mutant order."""
    sizes = []
    for prob in fit.detection_probs:
        size = int(round(float(prob) * space.size))
        sizes.append(max(1, min(space.size, size)))
    return sizes


def _universe_with_sizes(
    space: DemandSpace, sizes: Sequence[int], seed: SeedLike
) -> FaultUniverse:
    """Faults with the given region sizes, placed uniformly at random.

    Each fault's region is drawn without replacement from its own
    spawned stream, so fault ``i``'s placement is identical between the
    measured and assumed universes whenever its size is — only the size
    profile differs between the two constructions.
    """
    root = as_generator(seed)
    streams = spawn_many(root, len(sizes))
    regions = []
    for size, stream in zip(sizes, streams):
        if not 1 <= size <= space.size:
            raise ModelError(
                f"region size {size} outside [1, {space.size}]"
            )
        regions.append(np.sort(stream.choice(space.size, size=size, replace=False)))
    return FaultUniverse.from_regions(space, regions)


def universe_from_fit(
    fit: SizeBiasedMultinomialFit,
    space: DemandSpace,
    seed: SeedLike = 0,
) -> FaultUniverse:
    """A fault universe whose region sizes are the measured ones."""
    return _universe_with_sizes(space, region_sizes_from_fit(fit, space), seed)


def measured_population(
    fit: SizeBiasedMultinomialFit,
    space: DemandSpace,
    presence_prob: float = 0.35,
    seed: SeedLike = 0,
) -> BernoulliFaultPopulation:
    """Bernoulli population over the measured-size universe."""
    universe = universe_from_fit(fit, space, seed)
    return BernoulliFaultPopulation.uniform(universe, presence_prob)


def assumed_population(
    fit: SizeBiasedMultinomialFit,
    space: DemandSpace,
    presence_prob: float = 0.35,
    seed: SeedLike = 0,
    size: Optional[int] = None,
) -> BernoulliFaultPopulation:
    """The equal-size twin of :func:`measured_population`.

    Same fault count, same placement streams, same presence probability;
    every region forced to ``size`` (default: the rounded mean of the
    measured sizes).  This is the population the classical equal-size
    model would postulate given only the campaign's aggregate detection
    rate.
    """
    measured_sizes = region_sizes_from_fit(fit, space)
    if size is None:
        size = max(1, int(round(float(np.mean(measured_sizes)))))
    if not 1 <= size <= space.size:
        raise ModelError(f"assumed size {size} outside [1, {space.size}]")
    universe = _universe_with_sizes(space, [size] * len(measured_sizes), seed)
    return BernoulliFaultPopulation.uniform(universe, presence_prob)
