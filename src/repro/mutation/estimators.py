"""Estimators turning campaign kill counts into detection distributions.

The campaign gives, for each mutant *i* of *m* mutants, the number of
tests ``k_i`` (out of ``n``) that detected it.  Conditional on the total
number of detections ``N = Σ k_i``, the vector ``(k_1, …, k_m)`` is
modelled as ``Multinomial(N, π)`` — the *size-biased multinomial* view
of mutant detectability (arXiv:2406.04360): a mutant's share ``π_i`` of
all detections is its effective "size" in the demand-space sense of
Popov & Littlewood, because bigger faults are hit by proportionally more
tests.

Three layers:

* the **nonparametric MLE** ``π̂_i = k_i / N`` (exact for a multinomial);
* a **rank–Zipf size model** ``π_(r) ∝ r^{-α}`` fitted to the sorted
  shares by 1-D maximum likelihood — one interpretable heterogeneity
  parameter ``α`` (``α = 0`` ⇒ equal-size faults, the classical
  single-``p`` assumption; larger ``α`` ⇒ a few dominant, easily-hit
  faults and a long tail of small ones);
* **predictive count distributions**: the pmf of a random mutant's
  detection count under the fitted model versus under the equal-size
  baseline, comparable to the empirical histogram by total variation.

Everything here is order-invariant: permuting the mutants permutes
``weights`` but leaves ``alpha``, the sorted shares, the mutation score
and every pmf unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np
from scipy.optimize import minimize_scalar

from ..errors import ModelError

__all__ = [
    "DetectionData",
    "SizeBiasedMultinomialFit",
    "fit_size_biased_multinomial",
    "detection_count_distribution",
    "total_variation",
]

#: search interval for the Zipf exponent — wide enough for any small
#: campaign; the MLE of real corpora sits well inside it
_ALPHA_BOUNDS = (0.0, 8.0)


@dataclass(frozen=True)
class DetectionData:
    """Per-mutant detection counts from one campaign.

    ``counts[i]`` is how many of the ``n_tests`` suite tests detected
    mutant ``labels[i]``.
    """

    counts: Tuple[int, ...]
    n_tests: int
    labels: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.counts) == 0:
            raise ModelError("detection data needs at least one mutant")
        if len(self.labels) != len(self.counts):
            raise ModelError(
                f"{len(self.labels)} labels for {len(self.counts)} counts"
            )
        if self.n_tests < 1:
            raise ModelError(f"n_tests must be >= 1, got {self.n_tests}")
        for label, count in zip(self.labels, self.counts):
            if not 0 <= count <= self.n_tests:
                raise ModelError(
                    f"mutant {label!r}: count {count} outside "
                    f"[0, {self.n_tests}]"
                )

    @property
    def n_mutants(self) -> int:
        return len(self.counts)

    @property
    def total_detections(self) -> int:
        return int(sum(self.counts))

    @classmethod
    def from_outcomes(cls, outcomes: Sequence) -> "DetectionData":
        """Build from :class:`~repro.mutation.campaign.MutantOutcome`\\ s."""
        if not outcomes:
            raise ModelError("no mutant outcomes to estimate from")
        n_tests = outcomes[0].n_tests
        return cls(
            counts=tuple(int(o.detected) for o in outcomes),
            n_tests=int(n_tests),
            labels=tuple(o.mutant_id for o in outcomes),
        )


def _zipf_shares(alpha: float, m: int) -> np.ndarray:
    """Normalised rank–Zipf shares ``π_(1) ≥ … ≥ π_(m)``."""
    ranks = np.arange(1, m + 1, dtype=float)
    raw = ranks ** (-float(alpha))
    return raw / raw.sum()


def _zipf_negative_loglik(alpha: float, sorted_counts: np.ndarray) -> float:
    shares = _zipf_shares(alpha, len(sorted_counts))
    return -float(np.sum(sorted_counts * np.log(shares)))


@dataclass(frozen=True)
class SizeBiasedMultinomialFit:
    """Fitted detection distribution for one campaign.

    Attributes
    ----------
    weights:
        Nonparametric MLE shares ``π̂_i = k_i / N`` in the *input* mutant
        order (uniform when ``degenerate``).
    detection_probs:
        Per-mutant empirical detection probabilities ``k_i / n``.
    alpha:
        Rank–Zipf heterogeneity exponent (MLE over the sorted shares).
    mutation_score:
        Fraction of mutants with ``k_i > 0``.
    degenerate:
        True when no test detected any mutant (``N = 0``): weights fall
        back to uniform and ``alpha`` to 0 rather than failing.
    """

    data: DetectionData
    weights: Tuple[float, ...]
    detection_probs: Tuple[float, ...]
    alpha: float
    loglik: float
    mutation_score: float
    degenerate: bool

    @property
    def n_mutants(self) -> int:
        return self.data.n_mutants

    @property
    def n_tests(self) -> int:
        return self.data.n_tests

    @property
    def mean_detection_prob(self) -> float:
        """The pooled per-(mutant, test) detection probability."""
        return self.data.total_detections / (
            self.data.n_mutants * self.data.n_tests
        )

    def sorted_weights(self) -> Tuple[float, ...]:
        """Shares in decreasing order — the order-invariant size profile."""
        return tuple(sorted(self.weights, reverse=True))

    def fitted_count_pmf(self) -> np.ndarray:
        """Pmf of a random mutant's detection count under the rank–Zipf fit.

        A mutant drawn uniformly from the *m* ranks has count
        ``Binomial(n, p_r)``, where the per-test probabilities ``p_r``
        rescale the fitted shares to the observed total (``Σ p_r = N/n``)
        by water-filling: shares that would exceed probability 1 are
        capped there and the excess redistributed over the rest, so the
        mixture's mean detection count equals the empirical mean ``N/m``
        exactly even when dominant mutants are detected by every test.
        """
        m, n = self.data.n_mutants, self.data.n_tests
        shares = _zipf_shares(self.alpha, m)
        probs = _water_fill(shares, self.data.total_detections / n)
        return _binomial_mixture_pmf(probs, n)

    def equal_size_count_pmf(self) -> np.ndarray:
        """Pmf under the classical equal-size assumption (single ``p``)."""
        n = self.data.n_tests
        pooled = np.array([self.mean_detection_prob])
        return _binomial_mixture_pmf(pooled, n)

    def to_payload(self) -> Dict[str, object]:
        return {
            "alpha": self.alpha,
            "loglik": self.loglik,
            "mutation_score": self.mutation_score,
            "degenerate": self.degenerate,
            "n_mutants": self.n_mutants,
            "n_tests": self.n_tests,
            "weights": list(self.weights),
            "detection_probs": list(self.detection_probs),
        }


def _water_fill(shares: np.ndarray, budget: float) -> np.ndarray:
    """Probabilities ``p_r = min(1, c·shares_r)`` with ``Σ p_r = budget``.

    ``budget`` must be at most ``len(shares)`` (it is ``N/n ≤ m`` for
    detection data).  At most ``m`` passes: each pass either finds the
    scaling constant ``c`` for the uncapped shares or caps at least one
    more share at 1.
    """
    m = len(shares)
    capped = np.zeros(m, dtype=bool)
    probs = np.zeros(m, dtype=float)
    remaining = float(budget)
    for _ in range(m):
        free = ~capped
        free_mass = float(shares[free].sum())
        if free_mass <= 0.0 or remaining <= 0.0:
            break
        scale = remaining / free_mass
        scaled = scale * shares[free]
        if np.all(scaled <= 1.0 + 1e-12):
            probs[free] = np.minimum(scaled, 1.0)
            break
        overflow = free.copy()
        overflow[free] = scaled > 1.0
        capped |= overflow
        probs[overflow] = 1.0
        remaining = float(budget) - float(capped.sum())
    return probs


def _binomial_mixture_pmf(probs: np.ndarray, n: int) -> np.ndarray:
    """Equal-weight mixture of ``Binomial(n, p)`` pmfs over ``probs``."""
    counts = np.arange(n + 1)
    log_choose = np.array(
        [math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
         for k in counts]
    )
    pmf = np.zeros(n + 1)
    for p in probs:
        p = min(max(float(p), 0.0), 1.0)
        if p == 0.0:
            component = np.zeros(n + 1)
            component[0] = 1.0
        elif p == 1.0:
            component = np.zeros(n + 1)
            component[n] = 1.0
        else:
            component = np.exp(
                log_choose
                + counts * math.log(p)
                + (n - counts) * math.log1p(-p)
            )
        pmf += component
    return pmf / len(probs)


def fit_size_biased_multinomial(data: DetectionData) -> SizeBiasedMultinomialFit:
    """Fit the size-biased multinomial detection model to campaign data.

    Degenerate inputs never raise: an all-survived campaign (``N = 0``)
    yields uniform weights with ``alpha = 0`` and ``degenerate=True``;
    an all-killed-by-everything campaign yields uniform weights with
    ``alpha = 0`` (the shares really are equal) and ``degenerate=False``.
    """
    counts = np.asarray(data.counts, dtype=float)
    m = data.n_mutants
    total = data.total_detections
    score = float(np.count_nonzero(counts)) / m
    if total == 0:
        uniform = tuple([1.0 / m] * m)
        return SizeBiasedMultinomialFit(
            data=data,
            weights=uniform,
            detection_probs=tuple([0.0] * m),
            alpha=0.0,
            loglik=0.0,
            mutation_score=0.0,
            degenerate=True,
        )
    weights = tuple(float(k) / total for k in counts)
    detection_probs = tuple(float(k) / data.n_tests for k in counts)
    sorted_counts = np.sort(counts)[::-1]
    if m == 1:
        alpha, loglik = 0.0, 0.0
    else:
        result = minimize_scalar(
            _zipf_negative_loglik,
            bounds=_ALPHA_BOUNDS,
            args=(sorted_counts,),
            method="bounded",
        )
        alpha = float(result.x)
        loglik = -float(result.fun)
        # the bounded minimiser never lands exactly on the boundary even
        # for exactly-equal counts; snap to 0 when it is flat there
        flat = _zipf_negative_loglik(0.0, sorted_counts)
        if flat <= -loglik + 1e-9:
            alpha, loglik = 0.0, -flat
    return SizeBiasedMultinomialFit(
        data=data,
        weights=weights,
        detection_probs=detection_probs,
        alpha=alpha,
        loglik=loglik,
        mutation_score=score,
        degenerate=False,
    )


def detection_count_distribution(data: DetectionData) -> np.ndarray:
    """Empirical pmf of detection counts: index ``k`` → fraction of
    mutants detected by exactly ``k`` tests (length ``n_tests + 1``)."""
    pmf = np.zeros(data.n_tests + 1)
    for count in data.counts:
        pmf[count] += 1.0
    return pmf / data.n_mutants


def total_variation(p: Sequence[float], q: Sequence[float]) -> float:
    """Total-variation distance between two pmfs on the same support."""
    p_arr = np.asarray(p, dtype=float)
    q_arr = np.asarray(q, dtype=float)
    if p_arr.shape != q_arr.shape:
        raise ModelError(
            f"pmf supports differ: {p_arr.shape} vs {q_arr.shape}"
        )
    return 0.5 * float(np.abs(p_arr - q_arr).sum())
