"""Committed campaign measurements — GENERATED, do not edit by hand.

Regenerate with ``python tools/update_measured.py``, which runs the full
mutation campaign for every bundled corpus target (stores under
``examples/campaigns/``) and rewrites this module from the results.  The
``m*`` experiments read these measurements so that experiment runs stay
deterministic and dependency-free — no subprocess campaigns at
experiment time.

Each entry records the target's content hashes at measurement time; the
consistency test (``tests/mutation/test_measured.py``) fails when a
corpus program or its tests change without re-measuring.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ModelError
from .estimators import DetectionData

__all__ = [
    "MEASURED",
    "measured_detection_data",
    "measured_kills",
    "measured_target_names",
]

# target name -> campaign measurement (populated by tools/update_measured.py)

MEASURED: Dict[str, dict] = {
    'bsearch': {
        "n_tests": 9,
        "program_sha": 'cf1f7a30d89c8c2f',
        "tests_sha": 'e83ecc379cc08011',
        "mutants": [
            {"id": 'm000', "op": 'tweak-constant', "line": 11, "count": 4, "status": 'killed', "kills": (2, 4, 6, 7)},
            {"id": 'm001', "op": 'flip-compare', "line": 13, "count": 9, "status": 'timeout', "kills": (0, 1, 2, 3, 4, 5, 6, 7, 8)},
            {"id": 'm002', "op": 'flip-arith', "line": 14, "count": 9, "status": 'timeout', "kills": (0, 1, 2, 3, 4, 5, 6, 7, 8)},
            {"id": 'm003', "op": 'flip-arith', "line": 14, "count": 9, "status": 'timeout', "kills": (0, 1, 2, 3, 4, 5, 6, 7, 8)},
            {"id": 'm004', "op": 'tweak-constant', "line": 14, "count": 9, "status": 'timeout', "kills": (0, 1, 2, 3, 4, 5, 6, 7, 8)},
            {"id": 'm005', "op": 'flip-compare', "line": 15, "count": 5, "status": 'killed', "kills": (0, 1, 2, 4, 8)},
            {"id": 'm006', "op": 'flip-arith', "line": 16, "count": 9, "status": 'timeout', "kills": (0, 1, 2, 3, 4, 5, 6, 7, 8)},
            {"id": 'm007', "op": 'tweak-constant', "line": 16, "count": 5, "status": 'killed', "kills": (0, 1, 4, 5, 8)},
            {"id": 'm008', "op": 'flip-boolop', "line": 25, "count": 2, "status": 'killed', "kills": (0, 3)},
            {"id": 'm009', "op": 'flip-compare', "line": 25, "count": 1, "status": 'killed', "kills": (3,)},
            {"id": 'm010', "op": 'flip-compare', "line": 25, "count": 3, "status": 'killed', "kills": (0, 3, 4)},
            {"id": 'm011', "op": 'tweak-constant', "line": 27, "count": 1, "status": 'killed', "kills": (3,)},
            {"id": 'm012', "op": 'flip-compare', "line": 32, "count": 0, "status": 'survived', "kills": ()},
            {"id": 'm013', "op": 'tweak-constant', "line": 32, "count": 0, "status": 'survived', "kills": ()},
            {"id": 'm014', "op": 'flip-boolop', "line": 39, "count": 2, "status": 'killed', "kills": (1, 2)},
            {"id": 'm015', "op": 'flip-compare', "line": 39, "count": 2, "status": 'killed', "kills": (1, 2)},
            {"id": 'm016', "op": 'flip-compare', "line": 39, "count": 2, "status": 'killed', "kills": (1, 2)},
            {"id": 'm017', "op": 'flip-arith', "line": 40, "count": 2, "status": 'killed', "kills": (1, 2)},
            {"id": 'm018', "op": 'tweak-constant', "line": 40, "count": 2, "status": 'killed', "kills": (1, 2)},
            {"id": 'm019', "op": 'flip-arith', "line": 41, "count": 1, "status": 'killed', "kills": (1,)},
        ],
    },
    'leap': {
        "n_tests": 10,
        "program_sha": '864f3f5cdb5d64e6',
        "tests_sha": 'dea83eb66c423a16',
        "mutants": [
            {"id": 'm000', "op": 'tweak-constant', "line": 7, "count": 3, "status": 'killed', "kills": (1, 2, 8)},
            {"id": 'm001', "op": 'tweak-constant', "line": 7, "count": 4, "status": 'killed', "kills": (1, 2, 4, 6)},
            {"id": 'm002', "op": 'tweak-constant', "line": 7, "count": 1, "status": 'killed', "kills": (2,)},
            {"id": 'm003', "op": 'tweak-constant', "line": 7, "count": 2, "status": 'killed', "kills": (2, 8)},
            {"id": 'm004', "op": 'tweak-constant', "line": 7, "count": 1, "status": 'killed', "kills": (2,)},
            {"id": 'm005', "op": 'tweak-constant', "line": 7, "count": 1, "status": 'killed', "kills": (2,)},
            {"id": 'm006', "op": 'tweak-constant', "line": 7, "count": 1, "status": 'killed', "kills": (2,)},
            {"id": 'm007', "op": 'tweak-constant', "line": 7, "count": 1, "status": 'killed', "kills": (2,)},
            {"id": 'm008', "op": 'tweak-constant', "line": 7, "count": 1, "status": 'killed', "kills": (2,)},
            {"id": 'm009', "op": 'tweak-constant', "line": 7, "count": 1, "status": 'killed', "kills": (2,)},
            {"id": 'm010', "op": 'tweak-constant', "line": 7, "count": 1, "status": 'killed', "kills": (2,)},
            {"id": 'm011', "op": 'tweak-constant', "line": 7, "count": 1, "status": 'killed', "kills": (8,)},
            {"id": 'm012', "op": 'flip-compare', "line": 12, "count": 7, "status": 'killed', "kills": (0, 1, 2, 4, 5, 6, 7)},
            {"id": 'm013', "op": 'flip-arith', "line": 12, "count": 1, "status": 'killed', "kills": (0,)},
            {"id": 'm014', "op": 'tweak-constant', "line": 12, "count": 1, "status": 'killed', "kills": (0,)},
            {"id": 'm015', "op": 'tweak-constant', "line": 12, "count": 1, "status": 'killed', "kills": (0,)},
            {"id": 'm016', "op": 'tweak-constant', "line": 13, "count": 1, "status": 'killed', "kills": (0,)},
            {"id": 'm017', "op": 'flip-compare', "line": 14, "count": 6, "status": 'killed', "kills": (0, 1, 2, 5, 6, 7)},
            {"id": 'm018', "op": 'flip-arith', "line": 14, "count": 1, "status": 'killed', "kills": (0,)},
            {"id": 'm019', "op": 'tweak-constant', "line": 14, "count": 1, "status": 'killed', "kills": (0,)},
            {"id": 'm020', "op": 'tweak-constant', "line": 14, "count": 1, "status": 'killed', "kills": (0,)},
            {"id": 'm021', "op": 'tweak-constant', "line": 15, "count": 1, "status": 'killed', "kills": (0,)},
            {"id": 'm022', "op": 'flip-compare', "line": 16, "count": 6, "status": 'killed', "kills": (1, 2, 4, 5, 6, 7)},
            {"id": 'm023', "op": 'flip-arith', "line": 16, "count": 5, "status": 'killed', "kills": (1, 2, 5, 6, 7)},
            {"id": 'm024', "op": 'tweak-constant', "line": 16, "count": 5, "status": 'killed', "kills": (1, 2, 5, 6, 7)},
            {"id": 'm025', "op": 'tweak-constant', "line": 16, "count": 5, "status": 'killed', "kills": (1, 2, 5, 6, 7)},
            {"id": 'm026', "op": 'flip-boolop', "line": 21, "count": 1, "status": 'killed', "kills": (9,)},
            {"id": 'm027', "op": 'flip-compare', "line": 21, "count": 4, "status": 'killed', "kills": (1, 2, 3, 8)},
            {"id": 'm028', "op": 'tweak-constant', "line": 21, "count": 4, "status": 'killed', "kills": (1, 2, 3, 8)},
            {"id": 'm029', "op": 'flip-compare', "line": 21, "count": 2, "status": 'killed', "kills": (2, 8)},
            {"id": 'm030', "op": 'tweak-constant', "line": 21, "count": 1, "status": 'killed', "kills": (9,)},
            {"id": 'm031', "op": 'flip-arith', "line": 23, "count": 5, "status": 'killed', "kills": (1, 2, 4, 6, 8)},
            {"id": 'm032', "op": 'tweak-constant', "line": 23, "count": 5, "status": 'killed', "kills": (1, 2, 4, 6, 8)},
            {"id": 'm033', "op": 'flip-boolop', "line": 24, "count": 4, "status": 'killed', "kills": (1, 2, 4, 6)},
            {"id": 'm034', "op": 'flip-compare', "line": 24, "count": 2, "status": 'killed', "kills": (2, 6)},
            {"id": 'm035', "op": 'tweak-constant', "line": 24, "count": 2, "status": 'killed', "kills": (1, 6)},
            {"id": 'm036', "op": 'flip-arith', "line": 25, "count": 3, "status": 'killed', "kills": (1, 2, 6)},
            {"id": 'm037', "op": 'tweak-constant', "line": 25, "count": 3, "status": 'killed', "kills": (1, 2, 6)},
            {"id": 'm038', "op": 'flip-boolop', "line": 31, "count": 1, "status": 'killed', "kills": (4,)},
            {"id": 'm039', "op": 'flip-compare', "line": 31, "count": 2, "status": 'killed', "kills": (1, 3)},
            {"id": 'm040', "op": 'tweak-constant', "line": 31, "count": 2, "status": 'killed', "kills": (1, 3)},
            {"id": 'm041', "op": 'flip-compare', "line": 31, "count": 2, "status": 'killed', "kills": (2, 3)},
            {"id": 'm042', "op": 'tweak-constant', "line": 34, "count": 2, "status": 'killed', "kills": (1, 2)},
            {"id": 'm043', "op": 'flip-arith', "line": 35, "count": 2, "status": 'killed', "kills": (1, 2)},
            {"id": 'm044', "op": 'tweak-constant', "line": 42, "count": 1, "status": 'killed', "kills": (5,)},
            {"id": 'm045', "op": 'tweak-constant', "line": 43, "count": 1, "status": 'killed', "kills": (5,)},
        ],
    },
    'stats': {
        "n_tests": 11,
        "program_sha": 'e10a78f6bfb272db',
        "tests_sha": '0034b283168c86fb',
        "mutants": [
            {"id": 'm000', "op": 'drop-not', "line": 12, "count": 4, "status": 'killed', "kills": (0, 1, 8, 9)},
            {"id": 'm001', "op": 'tweak-constant', "line": 14, "count": 3, "status": 'killed', "kills": (0, 8, 9)},
            {"id": 'm002', "op": 'flip-arith', "line": 16, "count": 3, "status": 'killed', "kills": (0, 8, 9)},
            {"id": 'm003', "op": 'flip-arith', "line": 17, "count": 3, "status": 'killed', "kills": (0, 8, 9)},
            {"id": 'm004', "op": 'flip-compare', "line": 22, "count": 0, "status": 'survived', "kills": ()},
            {"id": 'm005', "op": 'tweak-constant', "line": 22, "count": 0, "status": 'survived', "kills": ()},
            {"id": 'm006', "op": 'tweak-constant', "line": 25, "count": 2, "status": 'killed', "kills": (8, 9)},
            {"id": 'm007', "op": 'flip-arith', "line": 27, "count": 2, "status": 'killed', "kills": (8, 9)},
            {"id": 'm008', "op": 'flip-arith', "line": 28, "count": 1, "status": 'killed', "kills": (9,)},
            {"id": 'm009', "op": 'flip-arith', "line": 28, "count": 2, "status": 'killed', "kills": (8, 9)},
            {"id": 'm010', "op": 'flip-arith', "line": 29, "count": 1, "status": 'killed', "kills": (9,)},
            {"id": 'm011', "op": 'flip-arith', "line": 29, "count": 1, "status": 'killed', "kills": (9,)},
            {"id": 'm012', "op": 'tweak-constant', "line": 29, "count": 1, "status": 'killed', "kills": (9,)},
            {"id": 'm013', "op": 'drop-not', "line": 34, "count": 4, "status": 'killed', "kills": (2, 3, 4, 5)},
            {"id": 'm014', "op": 'flip-arith', "line": 37, "count": 1, "status": 'killed', "kills": (5,)},
            {"id": 'm015', "op": 'tweak-constant', "line": 37, "count": 1, "status": 'killed', "kills": (3,)},
            {"id": 'm016', "op": 'flip-compare', "line": 38, "count": 2, "status": 'killed', "kills": (3, 4)},
            {"id": 'm017', "op": 'flip-arith', "line": 38, "count": 0, "status": 'survived', "kills": ()},
            {"id": 'm018', "op": 'tweak-constant', "line": 38, "count": 2, "status": 'killed', "kills": (3, 4)},
            {"id": 'm019', "op": 'tweak-constant', "line": 38, "count": 1, "status": 'killed', "kills": (4,)},
            {"id": 'm020', "op": 'flip-arith', "line": 40, "count": 1, "status": 'killed', "kills": (3,)},
            {"id": 'm021', "op": 'flip-arith', "line": 40, "count": 1, "status": 'killed', "kills": (3,)},
            {"id": 'm022', "op": 'flip-arith', "line": 40, "count": 1, "status": 'killed', "kills": (3,)},
            {"id": 'm023', "op": 'tweak-constant', "line": 40, "count": 1, "status": 'killed', "kills": (3,)},
            {"id": 'm024', "op": 'tweak-constant', "line": 40, "count": 1, "status": 'killed', "kills": (3,)},
            {"id": 'm025', "op": 'drop-not', "line": 45, "count": 1, "status": 'killed', "kills": (6,)},
            {"id": 'm026', "op": 'flip-arith', "line": 47, "count": 1, "status": 'killed', "kills": (6,)},
        ],
    },
    'triangle': {
        "n_tests": 11,
        "program_sha": '50e7420d7efb1a5d',
        "tests_sha": 'c75a41f4087f0a28',
        "mutants": [
            {"id": 'm000', "op": 'flip-compare', "line": 18, "count": 0, "status": 'survived', "kills": ()},
            {"id": 'm001', "op": 'tweak-constant', "line": 18, "count": 0, "status": 'survived', "kills": ()},
            {"id": 'm002', "op": 'tweak-constant', "line": 18, "count": 0, "status": 'survived', "kills": ()},
            {"id": 'm003', "op": 'flip-compare', "line": 20, "count": 1, "status": 'killed', "kills": (9,)},
            {"id": 'm004', "op": 'flip-arith', "line": 20, "count": 6, "status": 'killed', "kills": (0, 2, 4, 7, 8, 9)},
            {"id": 'm005', "op": 'tweak-constant', "line": 20, "count": 1, "status": 'killed', "kills": (9,)},
            {"id": 'm006', "op": 'tweak-constant', "line": 20, "count": 3, "status": 'killed', "kills": (1, 5, 9)},
            {"id": 'm007', "op": 'tweak-constant', "line": 20, "count": 9, "status": 'killed', "kills": (0, 1, 2, 3, 4, 5, 7, 8, 9)},
            {"id": 'm008', "op": 'flip-boolop', "line": 22, "count": 2, "status": 'killed', "kills": (2, 9)},
            {"id": 'm009', "op": 'flip-compare', "line": 22, "count": 2, "status": 'killed', "kills": (0, 2)},
            {"id": 'm010', "op": 'flip-compare', "line": 22, "count": 3, "status": 'killed', "kills": (0, 2, 9)},
            {"id": 'm011', "op": 'flip-boolop', "line": 24, "count": 2, "status": 'killed', "kills": (2, 9)},
            {"id": 'm012', "op": 'flip-compare', "line": 24, "count": 3, "status": 'killed', "kills": (2, 8, 9)},
            {"id": 'm013', "op": 'flip-compare', "line": 24, "count": 2, "status": 'killed', "kills": (2, 8)},
            {"id": 'm014', "op": 'flip-compare', "line": 24, "count": 2, "status": 'killed', "kills": (2, 8)},
            {"id": 'm015', "op": 'flip-compare', "line": 31, "count": 2, "status": 'killed', "kills": (4, 5)},
            {"id": 'm016', "op": 'flip-arith', "line": 33, "count": 1, "status": 'killed', "kills": (4,)},
            {"id": 'm017', "op": 'flip-arith', "line": 33, "count": 1, "status": 'killed', "kills": (4,)},
            {"id": 'm018', "op": 'flip-compare', "line": 38, "count": 1, "status": 'killed', "kills": (7,)},
            {"id": 'm019', "op": 'tweak-constant', "line": 39, "count": 1, "status": 'killed', "kills": (6,)},
            {"id": 'm020', "op": 'flip-compare', "line": 41, "count": 2, "status": 'killed', "kills": (3, 7)},
            {"id": 'm021', "op": 'flip-arith', "line": 41, "count": 1, "status": 'killed', "kills": (7,)},
            {"id": 'm022', "op": 'flip-arith', "line": 41, "count": 1, "status": 'killed', "kills": (7,)},
            {"id": 'm023', "op": 'flip-arith', "line": 41, "count": 1, "status": 'killed', "kills": (7,)},
            {"id": 'm024', "op": 'flip-arith', "line": 41, "count": 1, "status": 'killed', "kills": (7,)},
        ],
    },
}

def measured_target_names() -> List[str]:
    """Bundled targets with committed measurements, sorted."""
    return sorted(MEASURED)


def measured_detection_data(target: str) -> DetectionData:
    """The committed :class:`DetectionData` for one bundled target."""
    try:
        entry = MEASURED[target]
    except KeyError:
        known = ", ".join(measured_target_names()) or "<none>"
        raise ModelError(
            f"no committed measurement for target {target!r} (known: {known})"
        ) from None
    mutants = entry["mutants"]
    return DetectionData(
        counts=tuple(int(m["count"]) for m in mutants),
        n_tests=int(entry["n_tests"]),
        labels=tuple(str(m["id"]) for m in mutants),
    )


def measured_kills(target: str) -> Tuple[Tuple[int, ...], ...]:
    """Per-mutant killing-test indices for one bundled target.

    One tuple per mutant (in ``MEASURED`` order) holding the sorted
    indices — into the target's sorted baseline nodeid list — of the
    tests that detected the mutant.  Timeout/error mutants count every
    test, matching how ``detected`` is tallied by the campaign.
    """
    try:
        entry = MEASURED[target]
    except KeyError:
        known = ", ".join(measured_target_names()) or "<none>"
        raise ModelError(
            f"no committed measurement for target {target!r} (known: {known})"
        ) from None
    return tuple(tuple(m["kills"]) for m in entry["mutants"])
