"""Sandboxed mutation campaigns with store-backed resume.

A campaign takes a :class:`~repro.mutation.targets.TargetProgram`,
generates its mutants, and executes the target's pytest suite against
each mutant **in a subprocess** with a wall-clock timeout (mutants of
loop bounds routinely diverge).  Each finished mutant becomes one record
in a :class:`~repro.store.ResultStore`, keyed by the campaign identity —
target content hashes, mutant id, mutator version and timeout — so an
interrupted campaign resumes by executing only the mutants the store
does not already hold, exactly like a sweep.

Sandboxing: every pytest run happens in a throwaway directory containing
only the (possibly mutated) target module, the judging tests, their
support files and a standalone driver script.  The driver runs with
``cwd`` set to that directory and ``PYTHONPATH`` pointing only at it, so
the repo's own ``pyproject.toml`` (and its ``pythonpath = ["src"]``
pytest setting) can never shadow the mutated module with the installed
one.

Records are deterministic: no timestamps or durations are stored, so a
committed campaign store is a reproducible artifact (wall-clock numbers
live only in the in-memory :class:`CampaignReport`).
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
)

from ..errors import ModelError
from .mutants import MUTATOR_VERSION, Mutant, generate_mutants
from .targets import TargetProgram

if TYPE_CHECKING:  # runtime import is deferred: repro.store's __init__
    # imports repro.experiments (via records.py), which imports this
    # module — a module-level store import here closes that cycle and
    # breaks ``import repro.store`` as a process's first repro import
    from ..store import ResultStore

__all__ = [
    "MutantOutcome",
    "CampaignReport",
    "MutationCampaign",
    "load_outcomes",
]

_DRIVER_NAME = "_mutation_driver.py"
_BASELINE_ID = "baseline"

#: statuses counted as detected when a mutant's suite run never produced
#: per-test outcomes (a diverging or crashing mutant is a caught mutant)
_FATAL_STATUSES = ("timeout", "error")


@dataclass(frozen=True)
class MutantOutcome:
    """The judged result of one mutant's suite run.

    ``tests`` maps every baseline test nodeid to the outcome it produced
    against this mutant (``passed`` / ``failed`` / ``error`` /
    ``missing`` — the last when the mutant made the test disappear from
    collection).  ``detected`` counts the nodeids that did not pass;
    for ``timeout``/``error`` statuses the whole suite counts as
    detecting (the mutant observably broke execution).
    """

    mutant_id: str
    operator: str
    lineno: int
    description: str
    status: str  # killed | survived | timeout | error
    detected: int
    n_tests: int
    tests: Mapping[str, str]

    def to_payload(self) -> Dict[str, object]:
        return {
            "mutant_id": self.mutant_id,
            "operator": self.operator,
            "lineno": self.lineno,
            "description": self.description,
            "status": self.status,
            "detected": self.detected,
            "n_tests": self.n_tests,
            "tests": dict(sorted(self.tests.items())),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "MutantOutcome":
        return cls(
            mutant_id=str(payload["mutant_id"]),
            operator=str(payload["operator"]),
            lineno=int(payload["lineno"]),
            description=str(payload["description"]),
            status=str(payload["status"]),
            detected=int(payload["detected"]),
            n_tests=int(payload["n_tests"]),
            tests=dict(payload["tests"]),
        )


@dataclass
class CampaignReport:
    """Summary of one :meth:`MutationCampaign.run` invocation."""

    target: str
    total: int
    executed: int
    cached: int
    killed: int
    survived: int
    timeouts: int
    errors: int
    n_tests: int
    outcomes: List[MutantOutcome] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def mutation_score(self) -> float:
        """Fraction of mutants detected by at least one test."""
        if self.total == 0:
            return 0.0
        return (self.total - self.survived) / self.total


def _suite_outcome(
    mutant: Mutant,
    status: str,
    baseline_ids: Tuple[str, ...],
    tests: Optional[Mapping[str, str]] = None,
) -> MutantOutcome:
    n_tests = len(baseline_ids)
    if status in _FATAL_STATUSES:
        full = {nodeid: status for nodeid in baseline_ids}
        detected = n_tests
    else:
        observed = dict(tests or {})
        full = {
            nodeid: observed.get(nodeid, "missing") for nodeid in baseline_ids
        }
        detected = sum(1 for outcome in full.values() if outcome != "passed")
        status = "killed" if detected else "survived"
    return MutantOutcome(
        mutant_id=mutant.mutant_id,
        operator=mutant.mutation.operator,
        lineno=mutant.mutation.lineno,
        description=mutant.mutation.description,
        status=status,
        detected=detected,
        n_tests=n_tests,
        tests=full,
    )


class MutationCampaign:
    """Run a target's test suite against every mutant, resumably."""

    def __init__(
        self,
        target: TargetProgram,
        store: ResultStore,
        timeout: float = 20.0,
        max_mutants: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if timeout <= 0:
            raise ModelError(f"timeout must be positive, got {timeout}")
        self.target = target
        self.store = store
        self.timeout = float(timeout)
        self.max_mutants = max_mutants
        self.seed = int(seed)
        self._mutants: Optional[List[Mutant]] = None

    # -- identity --------------------------------------------------------

    @property
    def experiment_id(self) -> str:
        return f"mutation:{self.target.name}"

    @property
    def mutants(self) -> List[Mutant]:
        if self._mutants is None:
            self._mutants = generate_mutants(
                self.target.source, max_mutants=self.max_mutants, seed=self.seed
            )
        return self._mutants

    def _identity_params(self, mutant_id: str) -> Dict[str, object]:
        """The cache identity of one unit of campaign work.

        Deliberately excludes ``max_mutants`` and the subsampling seed:
        a mutant id names the same rewrite regardless of how the
        campaign sampled it, so differently-capped campaigns share
        cached outcomes.
        """
        return {
            "mutant": mutant_id,
            "program_sha": self.target.source_sha,
            "tests_sha": self.target.tests_sha,
            "timeout": self.timeout,
            "mutator": MUTATOR_VERSION,
        }

    def _record_for(
        self, mutant_id: str, outcome: Optional[MutantOutcome]
    ) -> Dict[str, object]:
        from ..store.records import make_record

        record = make_record(
            experiment_id=self.experiment_id,
            # pinned, not self.seed: the seed only picks the subsample,
            # never a mutant's outcome, so a pilot campaign under one
            # seed must hit the cache of a full campaign under another
            seed=0,
            fast=True,
            params=self._identity_params(mutant_id),
            version=MUTATOR_VERSION,
            engine="mutation",
        )
        if outcome is not None:
            record["mutation"] = outcome.to_payload()
        return record

    def _cached(self, mutant_id: str) -> Optional[Dict[str, object]]:
        record = self.store.get(self._record_for(mutant_id, None)["key"])
        if record is not None and "mutation" in record:
            return record
        return None

    def partition(self) -> Tuple[List[str], List[str]]:
        """(already-stored, pending) mutant ids for this campaign."""
        done: List[str] = []
        pending: List[str] = []
        for mutant in self.mutants:
            if self._cached(mutant.mutant_id) is not None:
                done.append(mutant.mutant_id)
            else:
                pending.append(mutant.mutant_id)
        return done, pending

    # -- sandbox ---------------------------------------------------------

    def _install_sandbox(self, sandbox: Path) -> None:
        """Copy the immutable pieces: driver, tests, support, package."""
        driver_source = Path(__file__).with_name("_driver.py")
        (sandbox / _DRIVER_NAME).write_text(
            driver_source.read_text(encoding="utf-8"), encoding="utf-8"
        )
        for path in (*self.target.test_paths, *self.target.support_paths):
            shutil.copy(path, sandbox / path.name)
        if self.target.package_root is not None:
            top_package = self.target.module.split(".")[0]
            shutil.copytree(
                self.target.package_root / top_package,
                sandbox / top_package,
                ignore=shutil.ignore_patterns("__pycache__"),
            )

    def _module_file(self, sandbox: Path) -> Path:
        if self.target.package_root is None:
            return sandbox / f"{self.target.module}.py"
        parts = self.target.module.split(".")
        return sandbox.joinpath(*parts[:-1]) / f"{parts[-1]}.py"

    def _run_suite(
        self, sandbox: Path, source: str
    ) -> Tuple[str, Dict[str, str]]:
        """Install ``source`` as the target module and run the suite.

        Returns ``(status, tests)`` where status is ``"ok"`` (the driver
        produced per-test outcomes), ``"timeout"`` or ``"error"``.
        """
        self._module_file(sandbox).write_text(source, encoding="utf-8")
        out_path = sandbox / "out.json"
        if out_path.exists():
            out_path.unlink()
        command = [
            sys.executable,
            _DRIVER_NAME,
            "out.json",
            *(path.name for path in self.target.test_paths),
        ]
        env = {
            "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
            "PYTHONPATH": str(sandbox),
            "PYTHONDONTWRITEBYTECODE": "1",
            "PYTEST_DISABLE_PLUGIN_AUTOLOAD": "1",
            "HOME": str(sandbox),
        }
        try:
            subprocess.run(
                command,
                cwd=sandbox,
                env=env,
                timeout=self.timeout,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
                check=False,
            )
        except subprocess.TimeoutExpired:
            return "timeout", {}
        if not out_path.exists():
            return "error", {}
        try:
            payload = json.loads(out_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            return "error", {}
        tests = {str(k): str(v) for k, v in payload.get("tests", {}).items()}
        if not tests:
            # nonzero collection: the mutant broke import or collection
            return "error", {}
        return "ok", tests

    def _baseline_ids(self, sandbox: Path) -> Tuple[str, ...]:
        """Run the unmutated program; require a fully green suite."""
        cached = self._cached(_BASELINE_ID)
        if cached is not None:
            return tuple(sorted(cached["mutation"]["tests"]))
        status, tests = self._run_suite(sandbox, self.target.source)
        if status != "ok":
            raise ModelError(
                f"target {self.target.name!r}: baseline suite run "
                f"{'timed out' if status == 'timeout' else 'failed to produce results'}"
            )
        failing = sorted(n for n, o in tests.items() if o != "passed")
        if failing:
            raise ModelError(
                f"target {self.target.name!r}: baseline suite is not green "
                f"({len(failing)} failing: {', '.join(failing[:5])})"
            )
        baseline = MutantOutcome(
            mutant_id=_BASELINE_ID,
            operator="none",
            lineno=0,
            description="unmutated program",
            status="baseline",
            detected=0,
            n_tests=len(tests),
            tests=tests,
        )
        self.store.put(self._record_for(_BASELINE_ID, baseline))
        return tuple(sorted(tests))

    # -- the campaign ----------------------------------------------------

    def run(
        self,
        on_mutant: Optional[Callable[[MutantOutcome, bool], None]] = None,
    ) -> CampaignReport:
        """Execute (or resume) the campaign.

        ``on_mutant(outcome, was_cached)`` is called after every mutant,
        cached or fresh — a progress hook for the CLI.  Interrupting the
        run (SIGINT) between or during mutants loses at most the mutant
        in flight; everything already stored is served from cache on the
        next call.
        """
        start = time.monotonic()
        mutants = self.mutants
        report = CampaignReport(
            target=self.target.name,
            total=len(mutants),
            executed=0,
            cached=0,
            killed=0,
            survived=0,
            timeouts=0,
            errors=0,
            n_tests=0,
        )
        with tempfile.TemporaryDirectory(prefix="repro-mutation-") as tmp:
            sandbox = Path(tmp)
            self._install_sandbox(sandbox)
            baseline_ids = self._baseline_ids(sandbox)
            report.n_tests = len(baseline_ids)
            for mutant in mutants:
                cached = self._cached(mutant.mutant_id)
                if cached is not None:
                    outcome = MutantOutcome.from_payload(cached["mutation"])
                    report.cached += 1
                else:
                    status, tests = self._run_suite(sandbox, mutant.source)
                    outcome = _suite_outcome(
                        mutant, status, baseline_ids, tests
                    )
                    self.store.put(
                        self._record_for(mutant.mutant_id, outcome)
                    )
                    report.executed += 1
                report.outcomes.append(outcome)
                if outcome.status == "killed":
                    report.killed += 1
                elif outcome.status == "survived":
                    report.survived += 1
                elif outcome.status == "timeout":
                    report.timeouts += 1
                elif outcome.status == "error":
                    report.errors += 1
                if on_mutant is not None:
                    on_mutant(outcome, cached is not None)
        report.elapsed_seconds = time.monotonic() - start
        return report


def load_outcomes(
    store: ResultStore, target: TargetProgram
) -> List[MutantOutcome]:
    """All stored mutant outcomes for ``target``'s current content.

    Returns outcomes sorted by mutant id, excluding the baseline record.
    Records whose identity hashes disagree with the target's current
    source or tests are ignored (they describe a different program).
    """
    outcomes: List[MutantOutcome] = []
    for record in store.records(f"mutation:{target.name}"):
        params = record.get("params", {})
        if params.get("program_sha") != target.source_sha:
            continue
        if params.get("tests_sha") != target.tests_sha:
            continue
        if params.get("mutator") != MUTATOR_VERSION:
            continue
        if "mutation" not in record or params.get("mutant") == _BASELINE_ID:
            continue
        outcomes.append(MutantOutcome.from_payload(record["mutation"]))
    return sorted(outcomes, key=lambda outcome: outcome.mutant_id)
