"""AST-level mutant generation for small pure-Python programs.

The generator enumerates *mutation sites* in deterministic source order
(pre-order AST traversal) and produces one mutant per site — a complete
module source with exactly one operator, comparison, boolean-connective,
constant or negation rewrite applied.  The enumeration is a pure function
of the source text, so mutant identifiers (``m000``, ``m001``, …) are
stable across runs and machines; a ``max_mutants`` cap subsamples the full
enumeration deterministically under a seed.

Supported operators (one replacement per site keeps the campaign size
linear in program size):

========================  ===============================================
operator                  rewrite
========================  ===============================================
``flip-arith``            ``+ ↔ -``, ``* ↔ /``, ``// → %``, ``% → //``
``flip-compare``          ``< ↔ <=``, ``> ↔ >=``, ``== ↔ !=``
``flip-boolop``           ``and ↔ or``
``drop-not``              ``not x → x``
``drop-negate``           ``-x → x`` (numeric literals excluded)
``tweak-constant``        int ``n → n + 1``, float ``x → x + 1.0``,
                          ``True ↔ False``
========================  ===============================================

Mutations are never applied inside annotations or to comparisons
involving ``__name__`` (mutating an ``if __name__ == "__main__"`` guard
would execute script code at import time instead of testing anything).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ModelError

__all__ = ["Mutant", "Mutation", "enumerate_mutations", "generate_mutants"]

#: bump when the enumeration rules change — part of every campaign
#: record's cache identity, so stored kill outcomes produced by an older
#: generator are never served for a differently-numbered mutant set
MUTATOR_VERSION = "1"

_ARITH_SWAPS = {
    ast.Add: ast.Sub,
    ast.Sub: ast.Add,
    ast.Mult: ast.Div,
    ast.Div: ast.Mult,
    ast.FloorDiv: ast.Mod,
    ast.Mod: ast.FloorDiv,
}

_COMPARE_SWAPS = {
    ast.Lt: ast.LtE,
    ast.LtE: ast.Lt,
    ast.Gt: ast.GtE,
    ast.GtE: ast.Gt,
    ast.Eq: ast.NotEq,
    ast.NotEq: ast.Eq,
}

_OP_SYMBOLS = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.Div: "/",
    ast.FloorDiv: "//",
    ast.Mod: "%",
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
    ast.Eq: "==",
    ast.NotEq: "!=",
    ast.And: "and",
    ast.Or: "or",
}

# child fields never traversed: mutating type annotations changes no
# behaviour the test suite could observe
_SKIPPED_FIELDS = ("annotation", "returns")


@dataclass(frozen=True)
class Mutation:
    """One mutation site: what is rewritten, where, and how.

    ``mutant_id`` indexes the *full* enumeration of the source
    (``m000`` …), so it identifies the same rewrite even when a campaign
    subsamples.
    """

    mutant_id: str
    operator: str
    lineno: int
    description: str


@dataclass(frozen=True)
class Mutant:
    """A mutation together with the complete mutated module source."""

    mutation: Mutation
    source: str

    @property
    def mutant_id(self) -> str:
        return self.mutation.mutant_id


def _references_dunder_name(node: ast.AST) -> bool:
    return any(
        isinstance(child, ast.Name) and child.id == "__name__"
        for child in ast.walk(node)
    )


def _walk(
    node: ast.AST,
    parent: Optional[ast.AST] = None,
    field: Optional[str] = None,
    index: Optional[int] = None,
) -> Iterator[Tuple[ast.AST, Optional[ast.AST], Optional[str], Optional[int]]]:
    """Deterministic pre-order traversal with parent/field/index context."""
    yield node, parent, field, index
    for name, value in ast.iter_fields(node):
        if name in _SKIPPED_FIELDS:
            continue
        if isinstance(value, ast.AST):
            yield from _walk(value, node, name, None)
        elif isinstance(value, list):
            for position, item in enumerate(value):
                if isinstance(item, ast.AST):
                    yield from _walk(item, node, name, position)


# a site option: (operator name, description, apply(node, parent, field, index))
_Option = Tuple[str, str, Callable]


def _constant_description(value: object) -> Optional[Tuple[str, object]]:
    """(description, replacement) for a mutable constant, else None."""
    if isinstance(value, bool):
        return f"replace {value} with {not value}", (not value)
    if isinstance(value, int):
        return f"replace {value} with {value + 1}", value + 1
    if isinstance(value, float):
        return f"replace {value} with {value + 1.0}", value + 1.0
    return None


def _set_child(parent: ast.AST, field: str, index: Optional[int], new: ast.AST) -> None:
    if index is None:
        setattr(parent, field, new)
    else:
        getattr(parent, field)[index] = new


def _node_options(
    node: ast.AST,
    parent: Optional[ast.AST],
    field: Optional[str],
    index: Optional[int],
) -> List[_Option]:
    options: List[_Option] = []
    if isinstance(node, ast.BinOp):
        swap = _ARITH_SWAPS.get(type(node.op))
        if swap is not None:
            old, new = _OP_SYMBOLS[type(node.op)], _OP_SYMBOLS[swap]

            def apply_binop(target, *_context, _swap=swap):
                target.op = _swap()

            options.append(
                ("flip-arith", f"replace '{old}' with '{new}'", apply_binop)
            )
    elif isinstance(node, ast.Compare):
        if not _references_dunder_name(node):
            for position, op in enumerate(node.ops):
                swap = _COMPARE_SWAPS.get(type(op))
                if swap is None:
                    continue
                old, new = _OP_SYMBOLS[type(op)], _OP_SYMBOLS[swap]

                def apply_compare(target, *_context, _swap=swap, _pos=position):
                    target.ops[_pos] = _swap()

                options.append(
                    (
                        "flip-compare",
                        f"replace '{old}' with '{new}'",
                        apply_compare,
                    )
                )
    elif isinstance(node, ast.BoolOp):
        swap = ast.Or if isinstance(node.op, ast.And) else ast.And
        old, new = _OP_SYMBOLS[type(node.op)], _OP_SYMBOLS[swap]

        def apply_boolop(target, *_context, _swap=swap):
            target.op = _swap()

        options.append(
            ("flip-boolop", f"replace '{old}' with '{new}'", apply_boolop)
        )
    elif isinstance(node, ast.UnaryOp) and parent is not None and field is not None:
        if isinstance(node.op, ast.Not):

            def apply_drop_not(target, target_parent, target_field, target_index):
                _set_child(
                    target_parent, target_field, target_index, target.operand
                )

            options.append(("drop-not", "drop 'not'", apply_drop_not))
        elif isinstance(node.op, ast.USub) and not isinstance(
            node.operand, ast.Constant
        ):
            def apply_drop_negate(target, target_parent, target_field, target_index):
                _set_child(
                    target_parent, target_field, target_index, target.operand
                )

            options.append(
                ("drop-negate", "drop unary '-'", apply_drop_negate)
            )
    elif isinstance(node, ast.Constant):
        mutated = _constant_description(node.value)
        if mutated is not None:
            description, replacement = mutated

            def apply_constant(target, *_context, _value=replacement):
                target.value = _value

            options.append(("tweak-constant", description, apply_constant))
    return options


def _sites(tree: ast.AST) -> List[Tuple[ast.AST, Optional[ast.AST], Optional[str], Optional[int], _Option]]:
    """All mutation sites of a parsed module, in deterministic order."""
    out = []
    for node, parent, field, index in _walk(tree):
        for option in _node_options(node, parent, field, index):
            out.append((node, parent, field, index, option))
    return out


def enumerate_mutations(source: str) -> List[Mutation]:
    """Every mutation the source admits, in stable ``m###`` order."""
    tree = ast.parse(source)
    mutations = []
    for position, (node, _parent, _field, _index, option) in enumerate(
        _sites(tree)
    ):
        operator, description, _apply = option
        lineno = getattr(node, "lineno", 0)
        mutations.append(
            Mutation(
                mutant_id=f"m{position:03d}",
                operator=operator,
                lineno=lineno,
                description=f"line {lineno}: {description}",
            )
        )
    return mutations


def _apply_site(source: str, position: int) -> str:
    """The mutated module source for the site at ``position``.

    Re-parses and re-walks so that the applied site list aligns exactly
    with :func:`enumerate_mutations` (both are pure functions of the
    source); the rewrite happens on a fresh tree, in place.
    """
    tree = ast.parse(source)
    sites = _sites(tree)
    node, parent, field, index, (_operator, _description, apply) = sites[position]
    apply(node, parent, field, index)
    ast.fix_missing_locations(tree)
    return ast.unparse(tree) + "\n"


def generate_mutants(
    source: str,
    max_mutants: Optional[int] = None,
    seed: int = 0,
) -> List[Mutant]:
    """Generate mutants of ``source``, deterministically.

    Parameters
    ----------
    source:
        The module source to mutate (must parse).
    max_mutants:
        Cap on the number of mutants.  When the full enumeration is
        larger, a uniform subsample of exactly ``max_mutants`` sites is
        drawn with a generator seeded by ``seed`` — the same
        ``(source, max_mutants, seed)`` always selects the same sites.
    seed:
        Subsampling seed (unused when every site fits under the cap).
    """
    if max_mutants is not None and max_mutants < 1:
        raise ModelError(f"max_mutants must be >= 1, got {max_mutants}")
    mutations = enumerate_mutations(source)
    positions: Sequence[int] = range(len(mutations))
    if max_mutants is not None and len(mutations) > max_mutants:
        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(mutations), size=max_mutants, replace=False)
        positions = sorted(int(p) for p in chosen)
    mutants = []
    for position in positions:
        mutated = _apply_site(source, position)
        # belt and braces: a rewrite that somehow breaks the grammar must
        # not reach the campaign runner as a phantom "killed" mutant
        compile(mutated, "<mutant>", "exec")
        mutants.append(Mutant(mutation=mutations[position], source=mutated))
    if not mutants:
        raise ModelError(
            "source admits no mutations (no arithmetic, comparison, "
            "boolean, negation or constant sites)"
        )
    return mutants
