"""Target programs the mutation campaign can run against.

A :class:`TargetProgram` names one mutable source file, the pytest files
that judge its mutants, and any support files those tests import.  Two
kinds of targets exist:

* **bundled corpus targets** — the small pure-Python programs under
  ``examples/targets/<name>/`` (each a ``program.py`` plus
  ``test_program.py``), discovered by :func:`bundled_targets`;
* the **self-mutation target** — :mod:`repro.rng` itself, judged by the
  repo's own tier-1 tests for that module, built by :func:`self_target`.

Content hashes (:attr:`TargetProgram.source_sha`,
:attr:`TargetProgram.tests_sha`) enter every campaign record's cache
identity, so editing a target program or its tests invalidates stored
kill outcomes instead of silently serving stale ones.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

from ..errors import ModelError

__all__ = [
    "TargetProgram",
    "bundled_targets",
    "bundled_target",
    "self_target",
]

_REPO_ROOT = Path(__file__).resolve().parents[3]
_TARGETS_DIR = _REPO_ROOT / "examples" / "targets"


def _sha(paths: Sequence[Path]) -> str:
    digest = hashlib.sha256()
    for path in sorted(paths):
        digest.update(path.name.encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class TargetProgram:
    """One program a mutation campaign mutates and judges.

    Parameters
    ----------
    name:
        Campaign identity (``mutation:<name>`` in store records).
    module:
        Module name the mutated source is installed as.  A dotted name
        (e.g. ``repro.rng``) means the target lives inside a package; the
        whole package rooted at ``package_root`` is copied into the
        sandbox and the named submodule's file is overwritten.
    source_path:
        The file whose source is mutated.
    test_paths:
        pytest files executed against each mutant.
    support_paths:
        Extra files the tests import (e.g. a ``conftest.py``), copied
        into the sandbox root unchanged.
    package_root:
        For dotted ``module`` names: the directory containing the
        top-level package (``src`` for ``repro.rng``).  ``None`` for
        flat single-file targets.
    """

    name: str
    module: str
    source_path: Path
    test_paths: Tuple[Path, ...]
    support_paths: Tuple[Path, ...] = field(default=())
    package_root: Optional[Path] = None

    def __post_init__(self) -> None:
        for path in (self.source_path, *self.test_paths, *self.support_paths):
            if not path.is_file():
                raise ModelError(f"target {self.name!r}: no such file: {path}")
        if "." in self.module and self.package_root is None:
            raise ModelError(
                f"target {self.name!r}: dotted module {self.module!r} "
                "requires package_root"
            )

    @property
    def source(self) -> str:
        return self.source_path.read_text(encoding="utf-8")

    @property
    def source_sha(self) -> str:
        """Content hash of the mutated file (cache-identity component)."""
        return _sha([self.source_path])

    @property
    def tests_sha(self) -> str:
        """Content hash of the judging tests and support files."""
        return _sha([*self.test_paths, *self.support_paths])


def bundled_targets(targets_dir: Optional[Path] = None) -> Dict[str, TargetProgram]:
    """The corpus targets shipped under ``examples/targets/``, by name."""
    root = Path(targets_dir) if targets_dir is not None else _TARGETS_DIR
    if not root.is_dir():
        raise ModelError(
            f"bundled target corpus not found at {root} (checkout incomplete?)"
        )
    targets: Dict[str, TargetProgram] = {}
    for program in sorted(root.glob("*/program.py")):
        directory = program.parent
        tests = tuple(sorted(directory.glob("test_*.py")))
        if not tests:
            raise ModelError(f"corpus target {directory.name!r} has no tests")
        targets[directory.name] = TargetProgram(
            name=directory.name,
            module="program",
            source_path=program,
            test_paths=tests,
        )
    if not targets:
        raise ModelError(f"no corpus targets found under {root}")
    return targets


def bundled_target(name: str) -> TargetProgram:
    """One bundled corpus target by name (clear error listing the rest)."""
    targets = bundled_targets()
    try:
        return targets[name]
    except KeyError:
        known = ", ".join(sorted(targets))
        raise ModelError(
            f"unknown bundled target {name!r} (known: {known})"
        ) from None


def self_target() -> TargetProgram:
    """The self-mutation target: ``repro.rng`` judged by its tier-1 tests."""
    return TargetProgram(
        name="self-rng",
        module="repro.rng",
        source_path=_REPO_ROOT / "src" / "repro" / "rng.py",
        test_paths=(_REPO_ROOT / "tests" / "test_rng.py",),
        support_paths=(_REPO_ROOT / "tests" / "conftest.py",),
        package_root=_REPO_ROOT / "src",
    )
