"""Usage profiles — the measure ``Q(·)`` over the demand space.

``Q(x)`` is the probability that operational use presents demand ``x``.  The
paper's marginal results (eqs. (22)-(25)) weight per-demand quantities by
``Q``, so the *shape* of the profile (how concentrated usage is) directly
scales the variance and covariance penalty terms.  The factory functions
below provide the standard shapes used in the experiment suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from ..errors import IncompatibleSpaceError, ProbabilityError
from ..rng import inverse_cdf_indices
from ..types import SeedLike
from .space import DemandSpace

__all__ = [
    "UsageProfile",
    "uniform_profile",
    "zipf_profile",
    "geometric_profile",
    "custom_profile",
    "mixture_profile",
]

_SUM_TOLERANCE = 1e-9


@dataclass(frozen=True)
class UsageProfile:
    """A probability distribution ``Q(·)`` over a finite demand space.

    Parameters
    ----------
    space:
        The demand space the profile is defined on.
    probabilities:
        Length-``space.size`` vector of demand probabilities; must be
        non-negative and sum to one (normalise first if needed).

    Notes
    -----
    Instances are immutable.  Sampling uses the inverse-CDF method through
    :meth:`sample`, which accepts an external generator so experiments stay
    reproducible under a single seed.
    """

    space: DemandSpace
    probabilities: np.ndarray
    _cdf: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        probs = np.asarray(self.probabilities, dtype=np.float64)
        if probs.shape != (self.space.size,):
            raise IncompatibleSpaceError(
                f"profile length {probs.shape} does not match demand space "
                f"size {self.space.size}"
            )
        if np.any(probs < 0.0) or np.any(~np.isfinite(probs)):
            raise ProbabilityError("usage probabilities must be finite and >= 0")
        total = float(probs.sum())
        if abs(total - 1.0) > _SUM_TOLERANCE:
            raise ProbabilityError(
                f"usage probabilities must sum to 1 (got {total:.12f}); "
                "use UsageProfile.normalised or a factory function"
            )
        object.__setattr__(self, "probabilities", probs)
        object.__setattr__(self, "_cdf", np.cumsum(probs))

    @classmethod
    def normalised(
        cls, space: DemandSpace, weights: Sequence[float] | np.ndarray
    ) -> "UsageProfile":
        """Build a profile from non-negative weights, normalising to 1."""
        array = np.asarray(weights, dtype=np.float64)
        total = float(array.sum())
        if total <= 0.0 or not np.isfinite(total):
            raise ProbabilityError("weights must have a positive finite sum")
        return cls(space, array / total)

    def probability(self, demand: int) -> float:
        """Return ``Q(x)`` for a single demand ``x``."""
        return float(self.probabilities[self.space.validate_demand(demand)])

    def mass_of(self, demands: Sequence[int] | np.ndarray) -> float:
        """Return ``Q(D)`` — the total usage mass of a set of demands.

        Used heavily by the exact analytics: for i.i.d. operational suites
        of size ``n``, the probability that a suite misses a failure region
        ``R`` is ``(1 - Q(R))**n``.
        """
        indices = self.space.validate_demands(demands)
        return float(self.probabilities[indices].sum())

    def expectation(self, values: Sequence[float] | np.ndarray) -> float:
        """Return ``E_Q[v(X)]`` for a per-demand value vector ``v``.

        This is the workhorse behind every marginal quantity in the paper:
        e.g. eq. (2) is ``expectation(theta)`` and eq. (22) is
        ``expectation(zeta**2) = E[Θ_T]² + Var(Θ_T)``.
        """
        array = np.asarray(values, dtype=np.float64)
        if array.shape != (self.space.size,):
            raise IncompatibleSpaceError(
                f"value vector length {array.shape} does not match demand "
                f"space size {self.space.size}"
            )
        return float(self.probabilities @ array)

    def variance(self, values: Sequence[float] | np.ndarray) -> float:
        """Return ``Var_Q[v(X)]`` for a per-demand value vector ``v``."""
        array = np.asarray(values, dtype=np.float64)
        mean = self.expectation(array)
        return self.expectation((array - mean) ** 2)

    def covariance(
        self,
        first: Sequence[float] | np.ndarray,
        second: Sequence[float] | np.ndarray,
    ) -> float:
        """Return ``Cov_Q[u(X), v(X)]`` — the LM-model covariance over demands.

        With ``u = theta_A`` and ``v = theta_B`` this is exactly the
        ``Cov(Θ_A, Θ_B)`` of eq. (9).
        """
        u = np.asarray(first, dtype=np.float64)
        v = np.asarray(second, dtype=np.float64)
        mean_u = self.expectation(u)
        mean_v = self.expectation(v)
        return self.expectation((u - mean_u) * (v - mean_v))

    def sample(
        self,
        rng: SeedLike = None,
        size: int | Tuple[int, ...] | None = None,
    ) -> np.ndarray | int:
        """Draw demand indices i.i.d. from ``Q``.

        Returns a scalar int when ``size is None``, else an int64 array of
        the given shape.  Tuple shapes let the batch Monte-Carlo engine draw
        a whole ``(replications, suite_size)`` block of demands in one call.
        """
        return inverse_cdf_indices(self._cdf, rng, size)

    @property
    def support(self) -> np.ndarray:
        """Demand indices with strictly positive usage probability."""
        return np.flatnonzero(self.probabilities > 0.0).astype(np.int64)

    def restrict(self, demands: Sequence[int] | np.ndarray) -> "UsageProfile":
        """Return ``Q`` conditioned on a subset of demands (renormalised).

        Useful for debug-style test generation where the tester believes
        faults live in a region of the demand space and concentrates there.
        """
        mask = self.space.indicator(demands)
        weights = np.where(mask, self.probabilities, 0.0)
        return UsageProfile.normalised(self.space, weights)


def uniform_profile(space: DemandSpace) -> UsageProfile:
    """Uniform usage: every demand equally likely."""
    probs = np.full(space.size, 1.0 / space.size)
    return UsageProfile(space, probs)


def zipf_profile(space: DemandSpace, exponent: float = 1.0) -> UsageProfile:
    """Zipf-shaped usage: demand ``k`` has weight ``1 / (k+1)**exponent``.

    Heavy-tailed usage is the classic operational-profile shape; a larger
    ``exponent`` concentrates usage on few demands, which magnifies the
    contribution of those demands' difficulty to the marginal results.
    """
    if exponent < 0:
        raise ProbabilityError(f"zipf exponent must be >= 0, got {exponent}")
    ranks = np.arange(1, space.size + 1, dtype=np.float64)
    return UsageProfile.normalised(space, ranks**-exponent)


def geometric_profile(space: DemandSpace, ratio: float = 0.9) -> UsageProfile:
    """Geometric usage: demand ``k`` has weight ``ratio**k``.

    ``ratio`` close to 1 approaches uniform; small ``ratio`` concentrates
    usage on the first demands.
    """
    if not 0.0 < ratio <= 1.0:
        raise ProbabilityError(f"geometric ratio must be in (0, 1], got {ratio}")
    weights = ratio ** np.arange(space.size, dtype=np.float64)
    return UsageProfile.normalised(space, weights)


def custom_profile(
    space: DemandSpace, weights: Sequence[float] | np.ndarray
) -> UsageProfile:
    """Profile from arbitrary non-negative weights (normalised)."""
    return UsageProfile.normalised(space, weights)


def mixture_profile(
    components: Sequence[UsageProfile], weights: Sequence[float]
) -> UsageProfile:
    """Convex mixture of usage profiles over the same demand space.

    Models a user base made of sub-populations with different usage
    patterns; the paper notes ``Q`` "might vary from one user environment
    to another".
    """
    if not components:
        raise ProbabilityError("mixture needs at least one component")
    space = components[0].space
    for component in components[1:]:
        space.require_same(component.space)
    weight_array = np.asarray(weights, dtype=np.float64)
    if weight_array.shape != (len(components),):
        raise ProbabilityError(
            f"got {len(components)} components but {weight_array.shape} weights"
        )
    if np.any(weight_array < 0):
        raise ProbabilityError("mixture weights must be non-negative")
    total = float(weight_array.sum())
    if total <= 0:
        raise ProbabilityError("mixture weights must have positive sum")
    stacked = np.stack([c.probabilities for c in components])
    mixed = (weight_array / total) @ stacked
    return UsageProfile(space, mixed)
