"""Demand space and usage-profile substrate.

The paper's demand space ``F = {x1, x2, ...}`` is realised as a finite set of
integer-indexed demands (:class:`DemandSpace`).  The usage measure ``Q(·)``
over demands is a :class:`UsageProfile`; several standard shapes (uniform,
Zipf, geometric, custom, mixtures) are provided because the variability of
``Q`` interacts with the variability of the difficulty function in every
marginal result of the paper.  :class:`DemandPartition` supports
partition-based test generation.
"""

from .space import DemandSpace
from .profile import (
    UsageProfile,
    custom_profile,
    geometric_profile,
    mixture_profile,
    uniform_profile,
    zipf_profile,
)
from .partition import DemandPartition

__all__ = [
    "DemandSpace",
    "UsageProfile",
    "DemandPartition",
    "uniform_profile",
    "zipf_profile",
    "geometric_profile",
    "custom_profile",
    "mixture_profile",
]
