"""Finite demand space ``F``.

A *demand* is one complete stimulus presented to the software (the paper is
explicit that a demand may bundle many raw inputs).  The models only ever
need a finite, indexable demand space together with measures over it, so the
space is represented by its size; demands are the integers ``0 .. size-1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from ..errors import IncompatibleSpaceError, ModelError
from ..types import as_index_array

__all__ = ["DemandSpace"]


@dataclass(frozen=True)
class DemandSpace:
    """A finite space of demands, indexed ``0 .. size-1``.

    Parameters
    ----------
    size:
        Number of distinct demands.  Must be positive.  Real demand spaces
        are astronomically large; for modelling purposes what matters is the
        induced distribution of difficulty across demands, which a few
        hundred to a few thousand demands capture faithfully.

    Examples
    --------
    >>> space = DemandSpace(100)
    >>> len(space)
    100
    >>> 99 in space
    True
    >>> 100 in space
    False
    """

    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ModelError(f"demand space size must be positive, got {self.size}")

    def __len__(self) -> int:
        return self.size

    def __contains__(self, demand: object) -> bool:
        if not isinstance(demand, (int, np.integer)):
            return False
        return 0 <= int(demand) < self.size

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.size))

    @property
    def demands(self) -> np.ndarray:
        """All demand indices as an int64 array."""
        return np.arange(self.size, dtype=np.int64)

    def validate_demand(self, demand: int) -> int:
        """Return ``demand`` if it lies in this space, else raise.

        Raises
        ------
        IncompatibleSpaceError
            If ``demand`` is outside ``0 .. size-1``.
        """
        if demand not in self:
            raise IncompatibleSpaceError(
                f"demand {demand!r} outside demand space of size {self.size}"
            )
        return int(demand)

    def validate_demands(self, demands: Sequence[int] | np.ndarray) -> np.ndarray:
        """Canonicalise a collection of demand indices against this space.

        Returns a sorted, duplicate-free int64 array.

        Raises
        ------
        IncompatibleSpaceError
            If any index lies outside the space.
        """
        array = as_index_array(demands)
        if array.size and (array[0] < 0 or array[-1] >= self.size):
            bad = array[(array < 0) | (array >= self.size)]
            raise IncompatibleSpaceError(
                f"demands {bad.tolist()} outside demand space of size {self.size}"
            )
        return array

    def indicator(self, demands: Sequence[int] | np.ndarray) -> np.ndarray:
        """Return a boolean membership vector of length ``size``.

        The dense indicator form is what the vectorised analytics operate
        on (difficulty functions, failure regions, suites all become masks).
        """
        mask = np.zeros(self.size, dtype=bool)
        mask[self.validate_demands(demands)] = True
        return mask

    def require_same(self, other: "DemandSpace") -> None:
        """Raise unless ``other`` is the same space (same size)."""
        if not isinstance(other, DemandSpace) or other.size != self.size:
            raise IncompatibleSpaceError(
                f"demand spaces differ: size {self.size} vs "
                f"{getattr(other, 'size', None)!r}"
            )
