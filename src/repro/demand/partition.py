"""Partitions of the demand space.

Partition testing draws demands per equivalence class rather than from the
raw operational profile.  A :class:`DemandPartition` is a labelling of every
demand with a block index; test generators use it to guarantee coverage of
every block, and fault generators use it to create locality (faults whose
failure regions respect block boundaries).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..errors import IncompatibleSpaceError, ModelError
from .space import DemandSpace

__all__ = ["DemandPartition"]


@dataclass(frozen=True)
class DemandPartition:
    """A partition of a demand space into contiguous-indexed blocks.

    Parameters
    ----------
    space:
        The demand space being partitioned.
    labels:
        Length-``space.size`` int array; ``labels[x]`` is the block index of
        demand ``x``.  Block indices must be ``0 .. n_blocks-1`` with every
        block non-empty.
    """

    space: DemandSpace
    labels: np.ndarray

    def __post_init__(self) -> None:
        labels = np.asarray(self.labels, dtype=np.int64)
        if labels.shape != (self.space.size,):
            raise IncompatibleSpaceError(
                f"labels length {labels.shape} does not match demand space "
                f"size {self.space.size}"
            )
        if labels.min(initial=0) < 0:
            raise ModelError("block labels must be non-negative")
        n_blocks = int(labels.max(initial=-1)) + 1
        present = np.unique(labels)
        if present.size != n_blocks:
            missing = sorted(set(range(n_blocks)) - set(present.tolist()))
            raise ModelError(f"blocks {missing} are empty; relabel contiguously")
        object.__setattr__(self, "labels", labels)

    @property
    def n_blocks(self) -> int:
        """Number of blocks in the partition."""
        return int(self.labels.max()) + 1

    def block(self, index: int) -> np.ndarray:
        """Demand indices belonging to block ``index``."""
        if not 0 <= index < self.n_blocks:
            raise ModelError(f"block {index} out of range 0..{self.n_blocks - 1}")
        return np.flatnonzero(self.labels == index).astype(np.int64)

    def blocks(self) -> List[np.ndarray]:
        """All blocks, as a list of demand-index arrays."""
        return [self.block(i) for i in range(self.n_blocks)]

    def block_of(self, demand: int) -> int:
        """Block index containing ``demand``."""
        return int(self.labels[self.space.validate_demand(demand)])

    @classmethod
    def equal_blocks(cls, space: DemandSpace, n_blocks: int) -> "DemandPartition":
        """Split the space into ``n_blocks`` nearly equal contiguous blocks."""
        if not 1 <= n_blocks <= space.size:
            raise ModelError(
                f"n_blocks must be in 1..{space.size}, got {n_blocks}"
            )
        labels = (np.arange(space.size, dtype=np.int64) * n_blocks) // space.size
        return cls(space, labels)

    @classmethod
    def from_blocks(
        cls, space: DemandSpace, blocks: Sequence[Sequence[int]]
    ) -> "DemandPartition":
        """Build a partition from explicit demand-index blocks.

        Raises
        ------
        ModelError
            If the blocks overlap or do not cover the space.
        """
        labels = np.full(space.size, -1, dtype=np.int64)
        for index, block in enumerate(blocks):
            demands = space.validate_demands(block)
            if np.any(labels[demands] != -1):
                raise ModelError(f"block {index} overlaps an earlier block")
            labels[demands] = index
        if np.any(labels == -1):
            uncovered = np.flatnonzero(labels == -1).tolist()
            raise ModelError(f"demands {uncovered} not covered by any block")
        return cls(space, labels)
