"""Process-wide metrics registry with Prometheus text exposition.

Three instrument kinds — :class:`Counter` (monotonic), :class:`Gauge`
(set/inc/dec), :class:`Histogram` (fixed buckets + sum + count) — each
optionally labelled.  Increments are a single short critical section
(one ``threading.Lock`` per instrument), cheap enough for the request
hot path; scrapes take a consistent snapshot without stopping writers.

Snapshots are plain JSON-safe dicts and **mergeable**:
:func:`merge_snapshots` sums counters, gauges and histogram buckets
element-wise, so worker processes can ship their registry deltas back
to the parent over the existing manager-queue/result channel and the
parent folds them in.  The merge is associative and commutative with
the empty snapshot as identity (property-tested in
``tests/obs/test_metrics_merge.py``).

Exposition: :func:`render_prometheus` renders a registry (or snapshot)
as Prometheus text format 0.0.4 — ``# HELP``/``# TYPE`` lines, escaped
label values, cumulative ``le`` buckets ending in ``+Inf``.
:func:`parse_prometheus_text` is the strict inverse used by the client
helpers, the smoke tools and CI to validate what the servers emit.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "default_registry",
    "merge_snapshots",
    "parse_prometheus_text",
    "render_prometheus",
    "set_default_registry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: default histogram bucket bounds (seconds-flavoured, like Prometheus')
DEFAULT_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name or ""):
        raise ValueError(f"invalid metric name: {name!r}")
    return name


def _check_labelnames(labelnames: Sequence[str]) -> Tuple[str, ...]:
    out = tuple(labelnames)
    for label in out:
        if not _LABEL_RE.match(label or ""):
            raise ValueError(f"invalid label name: {label!r}")
        if label == "le":
            raise ValueError("label name 'le' is reserved for histograms")
    if len(set(out)) != len(out):
        raise ValueError(f"duplicate label names: {out!r}")
    return out


class _Instrument:
    """Shared labelled-sample bookkeeping for all instrument kinds."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: Sequence[str] = ()):
        self.name = _check_name(name)
        self.help = str(help)
        self.labelnames = _check_labelnames(labelnames)
        self._lock = threading.Lock()
        self._samples: Dict[Tuple[str, ...], object] = {}

    def _labelvalues(self, labels: Mapping[str, object]) -> Tuple[str, ...]:
        # hot path: length check + direct lookups, no set construction
        if len(labels) == len(self.labelnames):
            try:
                return tuple(str(labels[name]) for name in self.labelnames)
            except KeyError:
                pass
        raise ValueError(
            f"{self.name} takes labels {self.labelnames}, "
            f"got {sorted(labels)}"
        )

    def labels(self, **labels: object):
        """Pre-resolve one label combination into a bound child.

        The child skips kwargs packing and label validation on every
        update — the request hot path binds its children once (at server
        init, or memoised per route) and pays only the lock + add."""
        return self._BOUND(self, self._labelvalues(labels))


class _BoundCounter:
    """A Counter pinned to one label-value tuple."""

    __slots__ = ("_instrument", "_key")

    def __init__(self, instrument: "_Instrument", key: Tuple[str, ...]):
        self._instrument = instrument
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount!r}")
        instrument = self._instrument
        with instrument._lock:
            samples = instrument._samples
            samples[self._key] = samples.get(self._key, 0.0) + amount


class _BoundGauge(_BoundCounter):
    """A Gauge pinned to one label-value tuple."""

    def set(self, value: float) -> None:
        instrument = self._instrument
        with instrument._lock:
            instrument._samples[self._key] = float(value)

    def inc(self, amount: float = 1.0) -> None:
        instrument = self._instrument
        with instrument._lock:
            samples = instrument._samples
            samples[self._key] = samples.get(self._key, 0.0) + amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class _BoundHistogram:
    """A Histogram pinned to one label-value tuple."""

    __slots__ = ("_instrument", "_key")

    def __init__(self, instrument: "Histogram", key: Tuple[str, ...]):
        self._instrument = instrument
        self._key = key

    def observe(self, value: float) -> None:
        self._instrument._observe(self._key, float(value))


class Counter(_Instrument):
    """A monotonically increasing count (per label combination)."""

    kind = "counter"
    _BOUND = _BoundCounter

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount!r}")
        key = self._labelvalues(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """Current count for one label combination (0.0 if never hit)."""
        with self._lock:
            return float(self._samples.get(self._labelvalues(labels), 0.0))


class Gauge(_Instrument):
    """A value that can go up and down (queue depth, half-width, ...)."""

    kind = "gauge"
    _BOUND = _BoundGauge

    def set(self, value: float, **labels: object) -> None:
        key = self._labelvalues(labels)
        with self._lock:
            self._samples[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = self._labelvalues(labels)
        with self._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        with self._lock:
            return float(self._samples.get(self._labelvalues(labels), 0.0))


class Histogram(_Instrument):
    """Cumulative-bucket distribution (Prometheus ``le`` semantics)."""

    kind = "histogram"
    _BOUND = _BoundHistogram

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"bucket bounds must be sorted, got {buckets!r}")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate bucket bounds: {buckets!r}")
        if bounds and math.isinf(bounds[-1]):
            bounds = bounds[:-1]  # +Inf is implicit
        self.bounds = bounds

    def observe(self, value: float, **labels: object) -> None:
        self._observe(self._labelvalues(labels), float(value))

    def _observe(self, key: Tuple[str, ...], value: float) -> None:
        # bisect_left finds the first bound >= value, i.e. the bucket
        # with ``value <= le``; past the last bound it lands on +Inf
        index = bisect_left(self.bounds, value)
        with self._lock:
            state = self._samples.get(key)
            if state is None:
                state = {
                    "buckets": [0] * (len(self.bounds) + 1),
                    "sum": 0.0,
                    "count": 0,
                }
                self._samples[key] = state
            state["buckets"][index] += 1
            state["sum"] += value
            state["count"] += 1


class MetricsRegistry:
    """A named collection of instruments with snapshot/merge/render."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}

    def _register(self, cls, name, help, labelnames, **kwargs) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(
                    labelnames
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            instrument = cls(name, help, labelnames, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def instruments(self) -> List[_Instrument]:
        with self._lock:
            return list(self._instruments.values())

    # -- snapshots -------------------------------------------------------

    def snapshot(self) -> Dict[str, dict]:
        """A JSON-safe, mergeable copy of every instrument's samples."""
        out: Dict[str, dict] = {}
        for instrument in self.instruments():
            with instrument._lock:
                if isinstance(instrument, Histogram):
                    samples = [
                        [
                            list(key),
                            {
                                "buckets": list(state["buckets"]),
                                "sum": state["sum"],
                                "count": state["count"],
                            },
                        ]
                        for key, state in instrument._samples.items()
                    ]
                else:
                    samples = [
                        [list(key), value]
                        for key, value in instrument._samples.items()
                    ]
            entry = {
                "type": instrument.kind,
                "help": instrument.help,
                "labelnames": list(instrument.labelnames),
                "samples": samples,
            }
            if isinstance(instrument, Histogram):
                entry["bounds"] = list(instrument.bounds)
            out[instrument.name] = entry
        return out

    def merge(self, snapshot: Mapping[str, dict]) -> None:
        """Fold a snapshot (e.g. a worker process's deltas) into this
        registry, creating instruments as needed."""
        for name, entry in snapshot.items():
            kind = entry.get("type")
            labelnames = tuple(entry.get("labelnames", ()))
            help_text = entry.get("help", "")
            if kind == "counter":
                instrument = self.counter(name, help_text, labelnames)
            elif kind == "gauge":
                instrument = self.gauge(name, help_text, labelnames)
            elif kind == "histogram":
                instrument = self.histogram(
                    name,
                    help_text,
                    labelnames,
                    buckets=entry.get("bounds", DEFAULT_BUCKETS),
                )
            else:
                raise ValueError(f"unknown instrument type {kind!r}")
            with instrument._lock:
                for key, value in entry.get("samples", []):
                    key = tuple(str(part) for part in key)
                    if kind == "histogram":
                        state = instrument._samples.get(key)
                        if state is None:
                            state = {
                                "buckets": [0]
                                * (len(instrument.bounds) + 1),
                                "sum": 0.0,
                                "count": 0,
                            }
                            instrument._samples[key] = state
                        incoming = value["buckets"]
                        if len(incoming) != len(state["buckets"]):
                            raise ValueError(
                                f"histogram {name!r} bucket layout mismatch"
                            )
                        for i, count in enumerate(incoming):
                            state["buckets"][i] += count
                        state["sum"] += value["sum"]
                        state["count"] += value["count"]
                    else:
                        instrument._samples[key] = (
                            instrument._samples.get(key, 0.0) + value
                        )

    def render(self) -> str:
        """This registry as Prometheus text exposition."""
        return render_prometheus(self.snapshot())


class _NullInstrument:
    """An instrument that records nothing (the uninstrumented path)."""

    def inc(self, *args, **kwargs) -> None:
        pass

    def dec(self, *args, **kwargs) -> None:
        pass

    def set(self, *args, **kwargs) -> None:
        pass

    def observe(self, *args, **kwargs) -> None:
        pass

    def value(self, *args, **kwargs) -> float:
        return 0.0

    def labels(self, **labels) -> "_NullInstrument":
        return self


class NullRegistry(MetricsRegistry):
    """A registry whose instruments drop every sample.

    Handed to the servers to measure (and bound) instrumentation
    overhead — the bench's uninstrumented baseline.
    """

    _NULL = _NullInstrument()

    def counter(self, name, help="", labelnames=()):  # type: ignore[override]
        return self._NULL

    def gauge(self, name, help="", labelnames=()):  # type: ignore[override]
        return self._NULL

    def histogram(  # type: ignore[override]
        self, name, help="", labelnames=(), buckets=DEFAULT_BUCKETS
    ):
        return self._NULL

    def snapshot(self) -> Dict[str, dict]:
        return {}

    def merge(self, snapshot) -> None:
        pass


NULL_REGISTRY = NullRegistry()

_DEFAULT = MetricsRegistry()
_DEFAULT_LOCK = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The process-wide registry ambient instrumentation reports to."""
    return _DEFAULT


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one.

    Worker processes install a fresh registry per job so the snapshot
    they ship back is exactly that job's deltas.
    """
    global _DEFAULT
    with _DEFAULT_LOCK:
        previous = _DEFAULT
        _DEFAULT = registry
        return previous


# ---------------------------------------------------------------------------
# merge (pure function form, for the property tests and worker channel)
# ---------------------------------------------------------------------------


def merge_snapshots(
    left: Mapping[str, dict], right: Mapping[str, dict]
) -> Dict[str, dict]:
    """Merge two registry snapshots into a new one (both unchanged).

    Counters, gauges and histogram bucket/sum/count all add, so the
    operation is associative and commutative, with ``{}`` as identity —
    per-worker snapshots can be folded in any arrival order.
    """
    registry = MetricsRegistry()
    registry.merge(left)
    registry.merge(right)
    return registry.snapshot()


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    number = float(value)
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if math.isnan(number):
        return "NaN"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _format_labels(
    labelnames: Sequence[str],
    labelvalues: Sequence[str],
    extra: Sequence[Tuple[str, str]] = (),
) -> str:
    pairs = [
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(labelnames, labelvalues)
    ]
    pairs += [
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in extra
    ]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(snapshot: Mapping[str, dict]) -> str:
    """Render a registry snapshot as Prometheus text format 0.0.4.

    Families are emitted name-sorted; each gets its ``# HELP`` and
    ``# TYPE`` line.  Histograms expand into cumulative ``_bucket``
    series (ending in ``le="+Inf"``) plus ``_sum`` and ``_count``.
    """
    lines: List[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry["type"]
        help_text = entry.get("help") or name
        labelnames = entry.get("labelnames", [])
        lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {kind}")
        samples = sorted(entry.get("samples", []), key=lambda s: s[0])
        if kind == "histogram":
            bounds = [float(b) for b in entry.get("bounds", [])]
            for key, state in samples:
                cumulative = 0
                for bound, count in zip(
                    bounds + [math.inf], state["buckets"]
                ):
                    cumulative += count
                    le = "+Inf" if math.isinf(bound) else _format_value(bound)
                    labels = _format_labels(labelnames, key, [("le", le)])
                    lines.append(
                        f"{name}_bucket{labels} {cumulative}"
                    )
                labels = _format_labels(labelnames, key)
                lines.append(
                    f"{name}_sum{labels} {_format_value(state['sum'])}"
                )
                lines.append(f"{name}_count{labels} {state['count']}")
        else:
            for key, value in samples:
                labels = _format_labels(labelnames, key)
                lines.append(f"{name}{labels} {_format_value(value)}")
    return "\n".join(lines) + "\n" if lines else ""


# ---------------------------------------------------------------------------
# strict parser (client helpers, smoke tools, CI validation)
# ---------------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)(?:\s+\d+)?$"
)
_LABEL_PAIR_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"\s*'
)


def _unescape_label_value(raw: str) -> str:
    out: List[str] = []
    i = 0
    while i < len(raw):
        char = raw[i]
        if char == "\\" and i + 1 < len(raw):
            nxt = raw[i + 1]
            out.append(
                {"n": "\n", "\\": "\\", '"': '"'}.get(nxt, "\\" + nxt)
            )
            i += 2
        else:
            out.append(char)
            i += 1
    return "".join(out)


def _parse_labels(raw: Optional[str], line_no: int) -> Dict[str, str]:
    if not raw:
        return {}
    labels: Dict[str, str] = {}
    position = 0
    while position < len(raw):
        match = _LABEL_PAIR_RE.match(raw, position)
        if match is None:
            raise ValueError(
                f"line {line_no}: malformed label pair in {{{raw}}}"
            )
        labels[match.group("name")] = _unescape_label_value(
            match.group("value")
        )
        position = match.end()
        if position < len(raw):
            if raw[position] != ",":
                raise ValueError(
                    f"line {line_no}: expected ',' between labels in "
                    f"{{{raw}}}"
                )
            position += 1
    return labels


def _parse_value(raw: str, line_no: int) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"line {line_no}: bad sample value {raw!r}")


_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def _family_of(sample_name: str, types: Mapping[str, str]) -> str:
    """The declared family a sample line belongs to."""
    if sample_name in types:
        return sample_name
    for suffix in _HISTOGRAM_SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    raise ValueError(f"sample {sample_name!r} has no preceding # TYPE line")


def parse_prometheus_text(text: str) -> Dict[str, dict]:
    """Strictly parse Prometheus text exposition into families.

    Returns ``{family: {"type", "help", "samples": [(name, labels,
    value)]}}``.  Raises :class:`ValueError` on any conformance problem:
    samples without a ``# TYPE``, malformed labels, counter samples with
    negative values, histogram bucket series that are non-monotonic,
    missing their ``+Inf`` bucket, or whose ``_count`` disagrees with
    the ``+Inf`` bucket.
    """
    families: Dict[str, dict] = {}
    types: Dict[str, str] = {}
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 3 or not _NAME_RE.match(parts[2]):
                raise ValueError(f"line {line_no}: malformed HELP line")
            name = parts[2]
            families.setdefault(
                name, {"type": None, "help": None, "samples": []}
            )["help"] = parts[3] if len(parts) > 3 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or not _NAME_RE.match(parts[2]):
                raise ValueError(f"line {line_no}: malformed TYPE line")
            name, kind = parts[2], parts[3]
            if kind not in ("counter", "gauge", "histogram", "untyped"):
                raise ValueError(
                    f"line {line_no}: unknown metric type {kind!r}"
                )
            if name in types:
                raise ValueError(
                    f"line {line_no}: duplicate TYPE for {name!r}"
                )
            types[name] = kind
            families.setdefault(
                name, {"type": None, "help": None, "samples": []}
            )["type"] = kind
            continue
        if line.startswith("#"):
            continue  # comment
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {line_no}: malformed sample: {line!r}")
        sample_name = match.group("name")
        labels = _parse_labels(match.group("labels"), line_no)
        value = _parse_value(match.group("value"), line_no)
        family = _family_of(sample_name, types)
        if types[family] == "counter" and value < 0:
            raise ValueError(
                f"line {line_no}: counter {sample_name!r} is negative"
            )
        families[family]["samples"].append((sample_name, labels, value))
    _validate_histograms(families)
    return families


def _validate_histograms(families: Mapping[str, dict]) -> None:
    for family, entry in families.items():
        if entry["type"] != "histogram":
            continue
        series: Dict[Tuple[Tuple[str, str], ...], List] = {}
        counts: Dict[Tuple[Tuple[str, str], ...], float] = {}
        for name, labels, value in entry["samples"]:
            if name == f"{family}_bucket":
                if "le" not in labels:
                    raise ValueError(
                        f"histogram {family!r} bucket without le label"
                    )
                key = tuple(
                    sorted((k, v) for k, v in labels.items() if k != "le")
                )
                series.setdefault(key, []).append(
                    (_parse_value(labels["le"], 0), value)
                )
            elif name == f"{family}_count":
                key = tuple(sorted(labels.items()))
                counts[key] = value
        for key, buckets in series.items():
            buckets.sort(key=lambda pair: pair[0])
            if not buckets or not math.isinf(buckets[-1][0]):
                raise ValueError(
                    f"histogram {family!r} missing +Inf bucket"
                )
            values = [count for _, count in buckets]
            if any(b > a for b, a in zip(values, values[1:])):
                raise ValueError(
                    f"histogram {family!r} buckets are non-monotonic"
                )
            if key in counts and counts[key] != values[-1]:
                raise ValueError(
                    f"histogram {family!r} _count disagrees with +Inf "
                    f"bucket"
                )
