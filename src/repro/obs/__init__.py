"""Unified observability: metrics, tracing spans, structured logging.

``repro.obs`` is the dependency-free substrate the service layer (and
the CLI) report through.  Three small pieces compose:

``repro.obs.metrics``
    A process-wide :class:`~repro.obs.metrics.MetricsRegistry` of
    :class:`Counter`/:class:`Gauge`/:class:`Histogram` instruments with
    labels, cheap in-the-loop increments, **mergeable snapshots** (the
    worker→parent aggregation channel) and a Prometheus text-exposition
    renderer plus a strict parser for it.

``repro.obs.trace``
    ``trace_id``/``span_id`` context propagated across threads and
    event loops (contextvars) and across processes/HTTP hops via the
    ``X-Repro-Trace`` header.  Spans are emitted as structured events
    with monotonic durations; ``tools/trace_tree.py`` reconstructs the
    tree for one request.

``repro.obs.log``
    Structured logging — one-line JSON events or a human format —
    behind ``--log-level``/``--log-format`` on the CLI, ``serve`` and
    ``router`` commands.

``repro.obs.timing``
    Ambient per-run phase timers backing the provenance payload
    (``ExperimentResult.extra["timings"]``) behind ``repro <id>
    --profile``.

Nothing in here imports the rest of ``repro`` — every layer can depend
on ``repro.obs`` without cycles.
"""

from __future__ import annotations

from .log import ObsLogger, configure_logging, get_logger, logging_config
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    default_registry,
    merge_snapshots,
    parse_prometheus_text,
    render_prometheus,
    set_default_registry,
)
from .timing import PhaseTimer, collect_timings, current_timer
from .trace import (
    TRACE_HEADER,
    TraceContext,
    add_span_sink,
    capture_spans,
    current_trace,
    emit_span,
    emit_span_record,
    format_trace_header,
    new_trace_context,
    parse_trace_header,
    remove_span_sink,
    set_trace_context,
    span,
    tracing_active,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "ObsLogger",
    "PhaseTimer",
    "TRACE_HEADER",
    "TraceContext",
    "add_span_sink",
    "capture_spans",
    "collect_timings",
    "configure_logging",
    "current_timer",
    "current_trace",
    "default_registry",
    "emit_span",
    "emit_span_record",
    "format_trace_header",
    "get_logger",
    "logging_config",
    "merge_snapshots",
    "new_trace_context",
    "parse_prometheus_text",
    "parse_trace_header",
    "remove_span_sink",
    "render_prometheus",
    "set_default_registry",
    "set_trace_context",
    "span",
    "tracing_active",
]
