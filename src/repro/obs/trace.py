"""Tracing spans: request-scoped context, header codec, span events.

A *trace* is one logical request; a *span* is one timed operation
inside it (router relay, queue wait, worker execution, persist, chunk
fan-out...).  Context rides a :class:`contextvars.ContextVar`, so it
propagates naturally across ``await`` points and task boundaries on an
event loop, and crosses HTTP hops via the ``X-Repro-Trace`` header
(``<trace_id>-<span_id>``: the sender's current span becomes the
receiver's parent).

Spans are emitted as flat dict events — ``{"event": "span", "name",
"trace_id", "span_id", "parent_id", "ts", "duration_seconds", ...}`` —
to every registered sink and to the ``repro.trace`` logger at ``debug``
(JSON-lines format makes the log itself a trace store;
``tools/trace_tree.py`` reconstructs the tree).  Durations come from
``time.perf_counter`` — monotonic, so a span can never report a
negative or clock-step duration.

Worker processes have no connection to the parent's sinks: they record
spans with :func:`capture_spans` and ship the list back alongside the
result; the parent re-emits them verbatim with
:func:`emit_span_record` (ids and durations are preserved, so the tree
still connects).
"""

from __future__ import annotations

import contextvars
import re
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

from .log import get_logger

__all__ = [
    "TRACE_HEADER",
    "TraceContext",
    "add_span_sink",
    "capture_spans",
    "current_trace",
    "emit_span",
    "emit_span_record",
    "format_trace_header",
    "new_trace_context",
    "parse_trace_header",
    "remove_span_sink",
    "set_trace_context",
    "span",
    "tracing_active",
]

#: the propagation header (case-insensitive on the wire)
TRACE_HEADER = "X-Repro-Trace"

_ID_RE = re.compile(r"^[0-9a-f]{1,64}$")

_CURRENT: contextvars.ContextVar[Optional["TraceContext"]] = (
    contextvars.ContextVar("repro_trace", default=None)
)

_SINK_LOCK = threading.Lock()
_SINKS: List[Callable[[dict], None]] = []

#: exclusive capture buffer (see :func:`capture_spans`): when set, the
#: calling context's spans go *only* here — not to sinks or the log
_EXCLUSIVE: contextvars.ContextVar[Optional[List[dict]]] = (
    contextvars.ContextVar("repro_trace_exclusive", default=None)
)

_log = get_logger("repro.trace")


@dataclass(frozen=True)
class TraceContext:
    """The ambient (trace, span) pair requests carry."""

    trace_id: str
    span_id: str

    def child(self) -> "TraceContext":
        """A new span under the same trace."""
        return TraceContext(self.trace_id, _new_span_id())


def _new_span_id() -> str:
    return uuid.uuid4().hex[:16]


def new_trace_context() -> TraceContext:
    """A fresh trace with a fresh root span id."""
    return TraceContext(uuid.uuid4().hex, _new_span_id())


def current_trace() -> Optional[TraceContext]:
    """The calling context's trace, or None outside any trace."""
    return _CURRENT.get()


def set_trace_context(
    context: Optional[TraceContext],
) -> Optional[TraceContext]:
    """Install ``context`` as ambient; returns the previous value.

    For code that cannot use the :func:`span` context manager (worker
    thread entry points); restore the previous value afterwards.
    """
    previous = _CURRENT.get()
    _CURRENT.set(context)
    return previous


# -- header codec ----------------------------------------------------------


def format_trace_header(context: TraceContext) -> str:
    """``X-Repro-Trace`` wire value for ``context``."""
    return f"{context.trace_id}-{context.span_id}"


def parse_trace_header(value: Optional[str]) -> Optional[TraceContext]:
    """Parse a wire value back into a context; None if absent/invalid.

    Invalid headers are dropped rather than rejected — tracing is an
    overlay and must never fail a request.
    """
    if not value:
        return None
    trace_id, separator, span_id = value.strip().rpartition("-")
    if not separator:
        return None
    if not _ID_RE.match(trace_id) or not _ID_RE.match(span_id):
        return None
    return TraceContext(trace_id, span_id)


# -- sinks -----------------------------------------------------------------


def add_span_sink(sink: Callable[[dict], None]) -> None:
    """Register a callable receiving every emitted span record."""
    with _SINK_LOCK:
        if sink not in _SINKS:
            _SINKS.append(sink)


def remove_span_sink(sink: Callable[[dict], None]) -> None:
    """Unregister a sink (missing sinks are ignored)."""
    with _SINK_LOCK:
        if sink in _SINKS:
            _SINKS.remove(sink)


def emit_span_record(record: dict) -> None:
    """Deliver a pre-built span record to sinks and the trace log.

    Used directly when re-emitting worker-process spans in the parent;
    :func:`span` and :func:`emit_span` funnel through it.
    """
    exclusive = _EXCLUSIVE.get()
    if exclusive is not None:
        exclusive.append(record)
        return
    with _SINK_LOCK:
        sinks = list(_SINKS)
    for sink in sinks:
        try:
            sink(record)
        except Exception:
            pass  # an observability sink must never fail the caller
    _log.debug("span", **{k: v for k, v in record.items() if k != "event"})


def _active() -> bool:
    """Whether emitting would reach anything (hot-path guard)."""
    return (
        _EXCLUSIVE.get() is not None
        or bool(_SINKS)
        or _log.enabled("debug")
    )


def tracing_active() -> bool:
    """Whether any span emitted now would reach a sink or the log.

    The request hot path checks this before opening a :func:`span` at
    all — the context manager costs ~10µs (span id, clocks, context
    switch) even when the emission at exit would be dropped, which is
    pure overhead on a sub-millisecond cache hit.
    """
    return _active()


def emit_span(
    name: str,
    context: TraceContext,
    parent_id: Optional[str],
    start_ts: float,
    duration_seconds: float,
    **fields: object,
) -> None:
    """Emit one span record from explicit parts.

    For spans measured across callbacks (queue wait) where a ``with``
    block cannot bracket the interval.  ``duration_seconds`` should come
    from a monotonic clock difference.
    """
    if not _active():
        return
    record: Dict[str, object] = {
        "event": "span",
        "name": name,
        "trace_id": context.trace_id,
        "span_id": context.span_id,
        "parent_id": parent_id,
        "ts": start_ts,
        "duration_seconds": max(float(duration_seconds), 0.0),
    }
    for key, value in fields.items():
        if key not in record:
            record[key] = value
    emit_span_record(record)


class _SpanHandle:
    """What :func:`span` yields: the live context + mutable fields."""

    def __init__(self, context: TraceContext, fields: Dict[str, object]):
        self.context = context
        self.fields = fields


@contextmanager
def span(name: str, **fields: object) -> Iterator[_SpanHandle]:
    """Time a block as a span under the current trace.

    Starts a new trace when none is ambient (a CLI run becomes its own
    root trace).  The block runs with the new span installed as current,
    so nested ``span()`` calls and outbound HTTP hops parent correctly.
    Fields added to the yielded handle's ``.fields`` land on the record.
    """
    parent = _CURRENT.get()
    context = parent.child() if parent else new_trace_context()
    token = _CURRENT.set(context)
    start_ts = time.time()
    start = time.perf_counter()
    handle = _SpanHandle(context, dict(fields))
    error: Optional[str] = None
    try:
        yield handle
    except BaseException as exc:
        error = type(exc).__name__
        raise
    finally:
        duration = time.perf_counter() - start
        _CURRENT.reset(token)
        if _active():
            if error is not None:
                handle.fields.setdefault("error", error)
            emit_span(
                name,
                context,
                parent.span_id if parent else None,
                start_ts,
                duration,
                **handle.fields,
            )


@contextmanager
def capture_spans(exclusive: bool = False) -> Iterator[List[dict]]:
    """Collect every span emitted in the block into the yielded list.

    The default (additive) mode registers a process-wide sink — spans
    land in the list *and* keep flowing to other sinks and the debug
    log; any thread's spans are collected.  ``exclusive=True`` instead
    diverts the *calling context's* spans into the list and nowhere
    else: the worker-side half of cross-process tracing, where the
    parent re-emits the shipped records with :func:`emit_span_record`
    and a local emission would double every span (in-process thread
    mode) or double-write an inherited log stream (forked pool mode).
    """
    records: List[dict] = []
    if exclusive:
        token = _EXCLUSIVE.set(records)
        try:
            yield records
        finally:
            _EXCLUSIVE.reset(token)
        return
    add_span_sink(records.append)
    try:
        yield records
    finally:
        remove_span_sink(records.append)
