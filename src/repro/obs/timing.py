"""Ambient per-run phase timers backing run provenance.

A :class:`PhaseTimer` accumulates named phase durations ("sampling",
"scoring", ...) plus a chunk count for one experiment run.  It is
installed *ambiently* (thread-local) by :func:`collect_timings`, so the
instrumented layers — ``mc.batch.run_tasks``, the batch accumulators —
record into whatever timer the caller activated without threading a
handle through every signature, and record nothing (one attribute read)
when profiling is off.

The payload lands in ``ExperimentResult.extra["timings"]`` only when a
caller opted in (the ``repro <id> --profile`` CLI flag, or the service
worker's per-job profile), keeping golden payload snapshots
byte-identical: ``extra`` is omitted when empty, and timings are never
attached implicitly.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, Optional

__all__ = ["PhaseTimer", "collect_timings", "current_timer"]

_LOCAL = threading.local()


class PhaseTimer:
    """Accumulates phase durations and chunk counts for one run."""

    def __init__(self) -> None:
        self._start = time.perf_counter()
        self.phases: Dict[str, float] = {}
        self.chunks = 0
        self.tasks = 0

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a block into ``phases[name]`` (re-entries accumulate)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.phases[name] = self.phases.get(name, 0.0) + elapsed

    def add_phase(self, name: str, seconds: float) -> None:
        """Fold an externally measured interval into ``phases[name]``."""
        self.phases[name] = self.phases.get(name, 0.0) + max(
            float(seconds), 0.0
        )

    def add_chunks(self, chunks: int, tasks: int = 0) -> None:
        """Record a fan-out: how many chunks (and tasks) were planned."""
        self.chunks += int(chunks)
        self.tasks += int(tasks)

    def payload(self, **extra: object) -> Dict[str, object]:
        """The JSON-safe provenance payload.

        ``total_seconds`` is wall time since construction; ``setup`` is
        the residual not covered by any recorded phase, so the phase
        table always sums to the total.
        """
        total = time.perf_counter() - self._start
        phases = {
            name: round(seconds, 6)
            for name, seconds in sorted(self.phases.items())
        }
        residual = total - sum(self.phases.values())
        phases["setup"] = round(
            max(residual, 0.0) + self.phases.get("setup", 0.0), 6
        )
        out: Dict[str, object] = {
            "total_seconds": round(total, 6),
            "phases": phases,
            "chunks": self.chunks,
            "tasks": self.tasks,
        }
        for key, value in extra.items():
            if key not in out:
                out[key] = value
        return out


def current_timer() -> Optional[PhaseTimer]:
    """The active timer for this thread, or None when not profiling."""
    return getattr(_LOCAL, "timer", None)


@contextmanager
def collect_timings() -> Iterator[PhaseTimer]:
    """Activate a fresh :class:`PhaseTimer` for the calling thread.

    Nested activations stack (the previous timer is restored on exit);
    instrumented layers see only the innermost one.
    """
    previous = getattr(_LOCAL, "timer", None)
    timer = PhaseTimer()
    _LOCAL.timer = timer
    try:
        yield timer
    finally:
        _LOCAL.timer = previous
