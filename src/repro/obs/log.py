"""Structured logging: one event per line, JSON or human format.

A tiny stdlib-only logger shaped for machines first: every call names
an *event* (``"job.done"``, ``"span"``, ``"sweep.point"``) and attaches
flat key/value fields.  In ``json`` format each event is one JSON
object per line (the shape ``tools/trace_tree.py`` and the smoke tools
parse); ``human`` format renders ``LEVEL event key=value ...`` for
terminals.

Configuration is process-wide (:func:`configure_logging`) and wired to
``--log-level``/``--log-format``/``--log-file`` on the CLI, ``serve``
and ``router`` commands.  The default level is ``warning`` so library
use stays silent; the service layers log request/job lifecycle at
``info`` and spans at ``debug``.
"""

from __future__ import annotations

import io
import json
import sys
import threading
import time
from typing import Dict, Mapping, Optional, TextIO

__all__ = [
    "LEVELS",
    "ObsLogger",
    "configure_logging",
    "get_logger",
    "logging_config",
]

LEVELS: Dict[str, int] = {
    "debug": 10,
    "info": 20,
    "warning": 30,
    "error": 40,
}

_LOCK = threading.Lock()


class _Config:
    def __init__(self) -> None:
        self.level = LEVELS["warning"]
        self.format = "human"
        self.stream: Optional[TextIO] = None  # None -> current sys.stderr
        self._owns_stream = False


_CONFIG = _Config()


def configure_logging(
    level: str = "warning",
    format: str = "human",
    stream: Optional[TextIO] = None,
    file: Optional[str] = None,
) -> None:
    """Set the process-wide log level, format and destination.

    ``level`` is one of ``debug``/``info``/``warning``/``error``;
    ``format`` is ``json`` (one object per line) or ``human``.  Events
    go to ``stream`` if given, else to ``file`` (opened append,
    line-buffered), else to ``sys.stderr`` at emit time.
    """
    if level not in LEVELS:
        raise ValueError(
            f"log level must be one of {sorted(LEVELS)}, got {level!r}"
        )
    if format not in ("json", "human"):
        raise ValueError(
            f"log format must be 'json' or 'human', got {format!r}"
        )
    with _LOCK:
        if _CONFIG._owns_stream and _CONFIG.stream is not None:
            try:
                _CONFIG.stream.close()
            except OSError:
                pass
        _CONFIG.level = LEVELS[level]
        _CONFIG.format = format
        _CONFIG._owns_stream = False
        if stream is not None:
            _CONFIG.stream = stream
        elif file is not None:
            _CONFIG.stream = io.open(file, "a", buffering=1)
            _CONFIG._owns_stream = True
        else:
            _CONFIG.stream = None


def logging_config() -> Dict[str, str]:
    """The current level/format (for banners and tests)."""
    with _LOCK:
        level = next(
            name for name, rank in LEVELS.items() if rank == _CONFIG.level
        )
        return {"level": level, "format": _CONFIG.format}


def _json_safe(value: object) -> object:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return repr(value)


class ObsLogger:
    """A named logger; emit with ``logger.info("event", key=value)``."""

    def __init__(self, name: str) -> None:
        self.name = name

    def enabled(self, level: str) -> bool:
        """True when events at ``level`` would currently be emitted —
        the cheap guard hot paths check before building fields."""
        return LEVELS[level] >= _CONFIG.level

    def _emit(self, level: str, event: str, fields: Mapping) -> None:
        if LEVELS[level] < _CONFIG.level:
            return
        with _LOCK:
            stream = _CONFIG.stream or sys.stderr
            fmt = _CONFIG.format
        record = {
            "ts": time.time(),
            "level": level,
            "logger": self.name,
            "event": event,
        }
        for key, value in fields.items():
            if key not in record:
                record[key] = _json_safe(value)
        try:
            if fmt == "json":
                line = json.dumps(record, default=repr)
            else:
                extras = " ".join(
                    f"{key}={record[key]!r}"
                    for key in fields
                    if key in record
                )
                line = (
                    f"{level.upper():7s} {self.name} {event}"
                    + (f" {extras}" if extras else "")
                )
            stream.write(line + "\n")
        except (OSError, ValueError):
            pass  # a closed/broken log destination never fails the caller

    def debug(self, event: str, **fields: object) -> None:
        self._emit("debug", event, fields)

    def info(self, event: str, **fields: object) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, **fields: object) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, **fields: object) -> None:
        self._emit("error", event, fields)


_LOGGERS: Dict[str, ObsLogger] = {}


def get_logger(name: str) -> ObsLogger:
    """The (cached) logger under ``name`` — e.g. ``repro.service``."""
    with _LOCK:
        logger = _LOGGERS.get(name)
        if logger is None:
            logger = _LOGGERS[name] = ObsLogger(name)
        return logger
