"""Fault-fixing policies — the repair actions of the testing process.

Given a *detected* failure on demand ``x``, the programmer tries to remove
the faults causing it (the paper's ``O_x``).  :class:`PerfectFixing`
implements the §3 assumption — "fixing all faults that cause a failure on
x" — and :class:`ImperfectFixing` the §4.1 relaxation, where each causing
fault is removed only with some probability (never introducing new faults,
matching the paper's simplifying assumption).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..errors import ProbabilityError
from ..rng import as_generator
from ..versions import Version

__all__ = ["FixingPolicy", "PerfectFixing", "ImperfectFixing"]


class FixingPolicy(abc.ABC):
    """Maps a detected failure to the set of fault ids actually removed."""

    @abc.abstractmethod
    def faults_removed(
        self, version: Version, demand: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Fault ids removed after a detected failure of ``version`` on ``demand``.

        Only faults in ``version.faults_causing_failure(demand)`` may be
        returned — fixing acts on the diagnosed causes.  New faults are
        never introduced (paper §4.1: "Assume, for simplicity, that
        introducing new faults during testing is impossible").
        """


@dataclass(frozen=True)
class PerfectFixing(FixingPolicy):
    """All faults causing the detected failure are removed (§3)."""

    def faults_removed(
        self, version: Version, demand: int, rng: np.random.Generator
    ) -> np.ndarray:
        return version.faults_causing_failure(demand)


@dataclass(frozen=True)
class ImperfectFixing(FixingPolicy):
    """Each causing fault is removed independently with fixed probability.

    Parameters
    ----------
    fix_probability:
        Chance that a diagnosed fault is successfully removed.  ``1.0``
        recovers :class:`PerfectFixing`; ``0.0`` makes repair inert.

    Notes
    -----
    Partial fixing leaves the version's score on the tested demand possibly
    still 1, so the same demand may trigger detection again later in the
    suite — the engine re-evaluates scores demand by demand.
    """

    fix_probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.fix_probability <= 1.0:
            raise ProbabilityError(
                f"fix probability must be in [0, 1], got {self.fix_probability}"
            )

    def faults_removed(
        self, version: Version, demand: int, rng: np.random.Generator
    ) -> np.ndarray:
        causes = version.faults_causing_failure(demand)
        if causes.size == 0:
            return causes
        generator = as_generator(rng)
        keep = generator.random(causes.size) < self.fix_probability
        return causes[keep]
