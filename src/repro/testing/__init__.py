"""Testing substrate: suites, generation measures ``M(·)``, oracles, fixing.

Section 2 of the paper decomposes testing into (i) a test suite, (ii) a
judging mechanism and (iii) fault-removal actions.  Those are, in order,
:class:`TestSuite` objects produced by :class:`SuiteGenerator` subclasses
(the measure ``M(·)``), :class:`Oracle` implementations (perfect /
imperfect / back-to-back), and :class:`FixingPolicy` implementations
(perfect / imperfect).  :func:`apply_testing` runs one version through one
suite under a chosen oracle and fixing policy; :func:`back_to_back_testing`
runs a version *pair* through one suite with mismatch-based detection.
"""

from .suite import TestSuite
from .generators import (
    EnumerableSuiteGenerator,
    ExhaustiveSuiteGenerator,
    OperationalSuiteGenerator,
    PartitionCoverageGenerator,
    SuiteGenerator,
    WeightedDebugGenerator,
    WithoutReplacementGenerator,
    demand_sequences_to_counts,
)
from .oracle import BackToBackComparator, ImperfectOracle, Oracle, PerfectOracle
from .fixing import FixingPolicy, ImperfectFixing, PerfectFixing
from .engine import TestingOutcome, apply_testing, back_to_back_testing

__all__ = [
    "TestSuite",
    "SuiteGenerator",
    "OperationalSuiteGenerator",
    "WithoutReplacementGenerator",
    "PartitionCoverageGenerator",
    "WeightedDebugGenerator",
    "ExhaustiveSuiteGenerator",
    "EnumerableSuiteGenerator",
    "demand_sequences_to_counts",
    "Oracle",
    "PerfectOracle",
    "ImperfectOracle",
    "BackToBackComparator",
    "FixingPolicy",
    "PerfectFixing",
    "ImperfectFixing",
    "apply_testing",
    "back_to_back_testing",
    "TestingOutcome",
]
