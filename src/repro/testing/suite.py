"""Test suites.

A test suite ``t ∈ Ξ`` is a finite sequence of demands.  Order matters only
for imperfect processes (an imperfect oracle may miss a failure the first
time; back-to-back detection depends on the evolving version pair), so the
suite keeps its draw order while exposing the demand *set* for the perfect
analyses, where only membership matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from ..demand import DemandSpace
from ..errors import ModelError

__all__ = ["TestSuite"]


@dataclass(frozen=True)
class TestSuite:
    """An ordered sequence of test demands over a demand space.

    Parameters
    ----------
    space:
        The demand space.
    demands:
        Demand indices in execution order; repeats allowed (a demand drawn
        twice from the operational profile is executed twice — a repeat is
        simply ineffective under a perfect oracle).
    """

    __test__ = False  # prevent pytest collection (library class)

    space: DemandSpace
    demands: np.ndarray
    _unique: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        demands = np.asarray(self.demands, dtype=np.int64).reshape(-1)
        if demands.size and (demands.min() < 0 or demands.max() >= self.space.size):
            raise ModelError(
                f"suite contains demands outside space of size {self.space.size}"
            )
        object.__setattr__(self, "demands", demands)
        object.__setattr__(self, "_unique", np.unique(demands))

    @classmethod
    def empty(cls, space: DemandSpace) -> "TestSuite":
        """The empty suite — the paper's "before testing" marker ``∅``."""
        return cls(space, np.empty(0, dtype=np.int64))

    @classmethod
    def of(cls, space: DemandSpace, demands: Sequence[int]) -> "TestSuite":
        """Suite from a plain sequence of demand indices."""
        return cls(space, np.asarray(list(demands), dtype=np.int64))

    def __len__(self) -> int:
        return int(self.demands.size)

    def __iter__(self) -> Iterator[int]:
        return iter(self.demands.tolist())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TestSuite):
            return NotImplemented
        return self.space.size == other.space.size and np.array_equal(
            self.demands, other.demands
        )

    def __hash__(self) -> int:
        return hash((self.space.size, self.demands.tobytes()))

    @property
    def unique_demands(self) -> np.ndarray:
        """Sorted distinct demands — the suite as a set."""
        return self._unique

    @property
    def n_unique(self) -> int:
        """Number of distinct demands exercised."""
        return int(self._unique.size)

    def contains(self, demand: int) -> bool:
        """True iff ``demand`` is exercised by this suite."""
        demand = self.space.validate_demand(demand)
        index = np.searchsorted(self._unique, demand)
        return bool(index < self._unique.size and self._unique[index] == demand)

    def concatenate(self, other: "TestSuite") -> "TestSuite":
        """This suite followed by ``other`` — the §3.4.1 merged-suite operation.

        Merging two generated suites and running the union against both
        versions is the "twice as long a test" strategy the paper discusses
        in the cheap-execution cost scenario.
        """
        self.space.require_same(other.space)
        return TestSuite(self.space, np.concatenate([self.demands, other.demands]))

    def prefix(self, length: int) -> "TestSuite":
        """The first ``length`` demands — staged/growth analyses slice suites."""
        if length < 0:
            raise ModelError(f"prefix length must be >= 0, got {length}")
        return TestSuite(self.space, self.demands[:length])

    def mask(self) -> np.ndarray:
        """Boolean demand-membership vector over the space."""
        out = np.zeros(self.space.size, dtype=bool)
        out[self._unique] = True
        return out
