"""The testing engine: run versions through suites and evolve them.

This module turns the paper's narrative testing process into code.  For the
perfect case the outcome is order-independent and computed set-wise (every
fault whose region the suite hits is removed); for imperfect oracles or
fixing, and for back-to-back testing, demands are processed in suite order
because detection and repair depend on the evolving state.

The central guarantee — the paper's score monotonicity
``υ(π, x, ∅) ≥ υ(π, x, t)`` — holds for every policy combination here
because no policy can add faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from ..rng import as_generator
from ..types import SeedLike
from ..versions import Version
from .fixing import FixingPolicy, PerfectFixing
from .oracle import BackToBackComparator, Oracle, PerfectOracle
from .suite import TestSuite

__all__ = ["TestingOutcome", "apply_testing", "back_to_back_testing"]


@dataclass(frozen=True)
class TestingOutcome:
    """The result of running one version through one suite.

    Attributes
    ----------
    before:
        The version as submitted to testing.
    after:
        The version with detected-and-fixed faults removed.
    detected_failures:
        Number of (demand-execution, detection) events; a demand executed
        twice and failing twice with detection both times counts twice.
    removed_fault_ids:
        Identifiers of faults removed over the whole run.
    """

    __test__ = False  # prevent pytest collection (library class)

    before: Version
    after: Version
    detected_failures: int
    removed_fault_ids: np.ndarray

    @property
    def faults_removed(self) -> int:
        """Number of distinct faults removed."""
        return int(self.removed_fault_ids.size)

    @property
    def demands_repaired(self) -> int:
        """Demands that failed before testing and succeed after.

        The paper highlights that this can exceed the number of observed
        failures: fixing a fault repairs its whole failure region.
        """
        gained = self.before.failure_mask & ~self.after.failure_mask
        return int(np.count_nonzero(gained))


def apply_testing(
    version: Version,
    suite: TestSuite,
    oracle: Oracle | None = None,
    fixing: FixingPolicy | None = None,
    rng: SeedLike = None,
) -> TestingOutcome:
    """Test ``version`` with ``suite``; return the evolved version.

    Parameters
    ----------
    version:
        The program version submitted to testing.
    suite:
        The test suite to execute (in order).
    oracle:
        Failure-detection mechanism; defaults to :class:`PerfectOracle`.
    fixing:
        Fault-removal policy; defaults to :class:`PerfectFixing`.
    rng:
        Randomness for imperfect oracles/fixing; unused in the perfect case.

    Notes
    -----
    With the default perfect oracle and perfect fixing this implements the
    paper's §3 process exactly, and a fast set-wise path is taken: the
    outcome is the version minus every fault triggered by the suite.  With
    imperfect components, demands are executed in order, re-evaluating the
    current version each time — a fault missed once can be caught by a
    later demand in its region.
    """
    oracle = oracle if oracle is not None else PerfectOracle()
    fixing = fixing if fixing is not None else PerfectFixing()

    if isinstance(oracle, PerfectOracle) and isinstance(fixing, PerfectFixing):
        triggered = version.universe.triggered_by(suite.unique_demands)
        removed = np.intersect1d(triggered, version.fault_ids, assume_unique=True)
        after = version.without_faults(removed)
        detected = int(np.count_nonzero(version.failure_mask[suite.demands]))
        return TestingOutcome(version, after, detected, removed)

    generator = as_generator(rng)
    current = version
    removed_ids: List[int] = []
    detected = 0
    for demand in suite:
        if not current.fails_on(demand):
            continue
        if not oracle.detects(current, demand, generator):
            continue
        detected += 1
        removed = fixing.faults_removed(current, demand, generator)
        if removed.size:
            removed_ids.extend(int(f) for f in removed)
            current = current.without_faults(removed)
    removed_array = np.unique(np.asarray(removed_ids, dtype=np.int64))
    return TestingOutcome(version, current, detected, removed_array)


def back_to_back_testing(
    first: Version,
    second: Version,
    suite: TestSuite,
    comparator: BackToBackComparator,
    fixing: FixingPolicy | None = None,
    rng: SeedLike = None,
) -> Tuple[TestingOutcome, TestingOutcome]:
    """Test a version pair back-to-back on one suite (§4.2).

    Both versions execute each demand in order; a demand is flagged only if
    the comparator sees a mismatch, in which case every failing version has
    its causing faults submitted to the fixing policy.  Coincident
    *identical* failures (per the comparator's output model) pass silently
    — the mechanism by which back-to-back testing can leave system
    reliability untouched while version reliability improves.

    Returns the pair of per-version outcomes.
    """
    fixing = fixing if fixing is not None else PerfectFixing()
    generator = as_generator(rng)
    current_first = first
    current_second = second
    removed_first: List[int] = []
    removed_second: List[int] = []
    detected_first = 0
    detected_second = 0
    for demand in suite:
        flag_first, flag_second = comparator.detected_failures(
            current_first, current_second, demand
        )
        if flag_first:
            detected_first += 1
            removed = fixing.faults_removed(current_first, demand, generator)
            if removed.size:
                removed_first.extend(int(f) for f in removed)
                current_first = current_first.without_faults(removed)
        if flag_second:
            detected_second += 1
            removed = fixing.faults_removed(current_second, demand, generator)
            if removed.size:
                removed_second.extend(int(f) for f in removed)
                current_second = current_second.without_faults(removed)
    outcome_first = TestingOutcome(
        first,
        current_first,
        detected_first,
        np.unique(np.asarray(removed_first, dtype=np.int64)),
    )
    outcome_second = TestingOutcome(
        second,
        current_second,
        detected_second,
        np.unique(np.asarray(removed_second, dtype=np.int64)),
    )
    return outcome_first, outcome_second
