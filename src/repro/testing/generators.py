"""Test-suite generation procedures — the measure ``M(·)`` over ``Ξ``.

"Clearly, with a given selection criterion a multitude of test suites can be
generated, each being a particular realisation of a given test suite
generation procedure" (§2).  A :class:`SuiteGenerator` is such a procedure:
``sample`` draws a suite with the procedure's probability law.  Generators
that can also *enumerate* their law exactly (finite support with known
probabilities) additionally implement ``enumerate``, unlocking the exact
analytics; the rest raise :class:`NotEnumerableError` and are handled by
Monte Carlo.

Forced *testing* diversity (paper §3.2) is simply using two different
generator objects for the two channels.
"""

from __future__ import annotations

import abc
import itertools
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from ..demand import DemandPartition, DemandSpace, UsageProfile
from ..errors import ModelError, NotEnumerableError, ProbabilityError
from ..rng import as_generator, inverse_cdf_indices, spawn_many
from ..types import SeedLike
from .suite import TestSuite

__all__ = [
    "SuiteGenerator",
    "OperationalSuiteGenerator",
    "WithoutReplacementGenerator",
    "PartitionCoverageGenerator",
    "WeightedDebugGenerator",
    "ExhaustiveSuiteGenerator",
    "EnumerableSuiteGenerator",
    "demand_sequences_to_counts",
]

_SUM_TOLERANCE = 1e-9

#: padding value marking unused tail positions in a demand-sequence block
SEQUENCE_PAD = -1


def demand_sequences_to_counts(sequences: np.ndarray, n_demands: int) -> np.ndarray:
    """Per-demand occurrence counts from a padded demand-sequence block.

    ``sequences`` is an int ``[count, length]`` matrix of demand indices with
    ``-1`` marking padding (rows may encode suites of different lengths).
    Returns the int64 ``[count, n_demands]`` matrix whose entry ``(r, x)`` is
    the number of times suite ``r`` executes demand ``x`` — the suite
    representation of the imperfect-testing batch kernels, where repeats are
    *not* ineffective (each execution is another detection opportunity).
    """
    seqs = np.asarray(sequences, dtype=np.int64)
    if seqs.ndim != 2:
        raise ModelError(f"sequence block must be 2-D, got shape {seqs.shape}")
    rows, cols = np.nonzero(seqs >= 0)
    demands = seqs[rows, cols]
    if demands.size and demands.max() >= n_demands:
        raise ModelError(
            f"sequence block contains demands outside space of size {n_demands}"
        )
    flat = np.bincount(
        rows * n_demands + demands, minlength=seqs.shape[0] * n_demands
    )
    return flat.reshape(seqs.shape[0], n_demands)


def _profile_demand_masks(
    profile: UsageProfile,
    size: int,
    space: DemandSpace,
    count: int,
    rng: SeedLike,
) -> np.ndarray:
    """``count`` i.i.d. profile-drawn suites of ``size`` as demand masks.

    Shared kernel of the operational and debug generators' batched draws:
    one ``(count, size)`` inverse-CDF block scattered into a boolean
    ``(count, space)`` membership matrix.
    """
    if count < 0:
        raise ModelError(f"count must be non-negative, got {count}")
    masks = np.zeros((count, space.size), dtype=bool)
    if count and size:
        demands = profile.sample(as_generator(rng), size=(count, size))
        np.put_along_axis(masks, demands, True, axis=1)
    return masks


def _profile_demand_sequences(
    profile: UsageProfile,
    size: int,
    count: int,
    rng: SeedLike,
) -> np.ndarray:
    """``count`` i.i.d. profile-drawn suites of ``size`` as ordered sequences."""
    if count < 0:
        raise ModelError(f"count must be non-negative, got {count}")
    if count == 0 or size == 0:
        return np.empty((count, size), dtype=np.int64)
    return np.asarray(
        profile.sample(as_generator(rng), size=(count, size)), dtype=np.int64
    )


class SuiteGenerator(abc.ABC):
    """Abstract test-suite generation procedure over a demand space."""

    def __init__(self, space: DemandSpace) -> None:
        self._space = space

    @property
    def space(self) -> DemandSpace:
        """The demand space suites are drawn from."""
        return self._space

    @abc.abstractmethod
    def sample(self, rng: SeedLike = None) -> TestSuite:
        """Draw one suite according to the generation measure ``M``."""

    def sample_many(self, count: int, rng: SeedLike = None) -> List[TestSuite]:
        """Draw ``count`` independent suites.

        This is the library primitive behind the *independent test suites*
        regimes (paper §3.1): each suite comes from its own spawned stream.
        """
        generator = as_generator(rng)
        return [self.sample(stream) for stream in spawn_many(generator, count)]

    def sample_demand_masks(self, count: int, rng: SeedLike = None) -> np.ndarray:
        """Draw ``count`` independent suites as demand-membership masks.

        Returns a boolean ``[count, space.size]`` matrix whose row ``r`` is
        :meth:`TestSuite.mask` of the ``r``-th draw — the suite
        representation of the batch Monte-Carlo engine, sufficient for all
        perfect-oracle analyses (where only demand membership matters).
        The default loops :meth:`sample`; generators with vectorisable
        measures override it with a single block draw.
        """
        if count < 0:
            raise ModelError(f"count must be non-negative, got {count}")
        masks = np.zeros((count, self._space.size), dtype=bool)
        generator = as_generator(rng)
        for row, stream in enumerate(spawn_many(generator, count)):
            masks[row, self.sample(stream).unique_demands] = True
        return masks

    def sample_demand_sequences(self, count: int, rng: SeedLike = None) -> np.ndarray:
        """Draw ``count`` independent suites as ordered demand sequences.

        Returns an int64 ``[count, max_length]`` matrix whose row ``r`` is
        the ``r``-th drawn suite in execution order, right-padded with
        ``-1`` when suites differ in length.  This is the suite
        representation of the *order-dependent* batch kernels — back-to-back
        testing replays demands left to right, so membership masks are not
        enough.  The default loops :meth:`sample`; generators with
        vectorisable measures override it with a single block draw.
        """
        if count < 0:
            raise ModelError(f"count must be non-negative, got {count}")
        generator = as_generator(rng)
        suites = [self.sample(stream) for stream in spawn_many(generator, count)]
        width = max((len(suite) for suite in suites), default=0)
        out = np.full((count, width), SEQUENCE_PAD, dtype=np.int64)
        for row, suite in enumerate(suites):
            out[row, : len(suite)] = suite.demands
        return out

    def sample_demand_counts(self, count: int, rng: SeedLike = None) -> np.ndarray:
        """Draw ``count`` independent suites as demand occurrence counts.

        Returns the int64 ``[count, space.size]`` matrix whose entry
        ``(r, x)`` counts how often suite ``r`` executes demand ``x`` — the
        representation of the imperfect-oracle/imperfect-fixing batch
        kernels, where each execution of a failing demand is an independent
        detection opportunity (so multiplicity matters, unlike the
        perfect-oracle mask representation).
        """
        return demand_sequences_to_counts(
            self.sample_demand_sequences(count, rng), self._space.size
        )

    def enumerate(self) -> Iterable[Tuple[TestSuite, float]]:
        """Yield ``(suite, probability)`` when the measure is enumerable.

        Raises
        ------
        NotEnumerableError
            By default; enumerable generators override.
        """
        raise NotEnumerableError(
            f"{type(self).__name__} does not support exact enumeration"
        )


class OperationalSuiteGenerator(SuiteGenerator):
    """Suites of ``n`` i.i.d. draws from the operational profile ``Q``.

    The paper's primary test model: "if operational reliability is targeted
    the test suites are generated using the expected operational profile".
    With this law, a fault with region mass ``q = Q(R_f)`` survives a random
    suite with probability ``(1 - q)**n`` — the hook the exact analytics
    use.
    """

    def __init__(self, profile: UsageProfile, size: int) -> None:
        super().__init__(profile.space)
        if size < 0:
            raise ModelError(f"suite size must be >= 0, got {size}")
        self._profile = profile
        self._size = size

    @property
    def profile(self) -> UsageProfile:
        """The operational profile suites draw from."""
        return self._profile

    @property
    def size(self) -> int:
        """Number of demands per suite."""
        return self._size

    def sample(self, rng: SeedLike = None) -> TestSuite:
        generator = as_generator(rng)
        if self._size == 0:
            return TestSuite.empty(self._space)
        demands = self._profile.sample(generator, size=self._size)
        return TestSuite(self._space, demands)

    def sample_demand_masks(self, count: int, rng: SeedLike = None) -> np.ndarray:
        """All ``count`` suites in one ``(count, size)`` i.i.d. profile draw."""
        return _profile_demand_masks(
            self._profile, self._size, self._space, count, rng
        )

    def sample_demand_sequences(self, count: int, rng: SeedLike = None) -> np.ndarray:
        """All ``count`` suites as one ``(count, size)`` ordered block draw."""
        return _profile_demand_sequences(self._profile, self._size, count, rng)

    def with_size(self, size: int) -> "OperationalSuiteGenerator":
        """Same profile, different suite size — used by growth sweeps."""
        return OperationalSuiteGenerator(self._profile, size)


class WithoutReplacementGenerator(SuiteGenerator):
    """Suites of ``n`` distinct demands, weighted by a profile.

    Models testers who never repeat a test case.  For ``n`` approaching the
    space size this approaches exhaustive testing.
    """

    def __init__(self, profile: UsageProfile, size: int) -> None:
        super().__init__(profile.space)
        if not 0 <= size <= profile.space.size:
            raise ModelError(
                f"suite size must be in 0..{profile.space.size}, got {size}"
            )
        if size > int(np.count_nonzero(profile.probabilities > 0)):
            raise ModelError(
                "suite size exceeds the number of demands with positive "
                "probability"
            )
        self._profile = profile
        self._size = size

    @property
    def size(self) -> int:
        """Number of distinct demands per suite."""
        return self._size

    def sample(self, rng: SeedLike = None) -> TestSuite:
        generator = as_generator(rng)
        if self._size == 0:
            return TestSuite.empty(self._space)
        demands = generator.choice(
            self._space.size,
            size=self._size,
            replace=False,
            p=self._profile.probabilities,
        )
        return TestSuite(self._space, demands)


class PartitionCoverageGenerator(SuiteGenerator):
    """One (or more) demands per partition block — partition testing.

    Guarantees every block is exercised; within a block demands are drawn
    from the restricted operational profile.  Partition testing is a
    standard "debug-goal" procedure whose measure differs from operational
    testing — exactly the raw material for forced testing diversity.
    """

    def __init__(
        self,
        partition: DemandPartition,
        profile: UsageProfile,
        per_block: int = 1,
    ) -> None:
        super().__init__(partition.space)
        partition.space.require_same(profile.space)
        if per_block < 1:
            raise ModelError(f"per_block must be >= 1, got {per_block}")
        self._partition = partition
        self._profile = profile
        self._per_block = per_block
        self._block_profiles = []
        for block in partition.blocks():
            weights = np.zeros(partition.space.size)
            weights[block] = np.maximum(profile.probabilities[block], 1e-300)
            self._block_profiles.append(
                UsageProfile.normalised(partition.space, weights)
            )

    def sample(self, rng: SeedLike = None) -> TestSuite:
        generator = as_generator(rng)
        picks = [
            block_profile.sample(generator, size=self._per_block)
            for block_profile in self._block_profiles
        ]
        return TestSuite(self._space, np.concatenate(picks))


class WeightedDebugGenerator(SuiteGenerator):
    """Suites drawn from a debug profile distinct from the usage profile.

    "If debugging is targeted the test suite is generated according to what
    the debugger believes maximises the chances of finding faults" (§2).
    The debug profile typically up-weights suspected failure regions.
    """

    def __init__(self, debug_profile: UsageProfile, size: int) -> None:
        super().__init__(debug_profile.space)
        if size < 0:
            raise ModelError(f"suite size must be >= 0, got {size}")
        self._debug_profile = debug_profile
        self._size = size

    @property
    def debug_profile(self) -> UsageProfile:
        """The profile the debugger samples from (distinct from usage)."""
        return self._debug_profile

    @property
    def size(self) -> int:
        """Number of demands per generated suite."""
        return self._size

    @classmethod
    def biased_towards(
        cls,
        profile: UsageProfile,
        hot_demands: Sequence[int] | np.ndarray,
        boost: float,
        size: int,
    ) -> "WeightedDebugGenerator":
        """Debug profile = usage profile with ``hot_demands`` boosted ×``boost``."""
        if boost <= 0:
            raise ProbabilityError(f"boost must be > 0, got {boost}")
        weights = profile.probabilities.copy()
        hot = profile.space.validate_demands(hot_demands)
        weights[hot] *= boost
        return cls(UsageProfile.normalised(profile.space, weights), size)

    def sample(self, rng: SeedLike = None) -> TestSuite:
        generator = as_generator(rng)
        if self._size == 0:
            return TestSuite.empty(self._space)
        demands = self._debug_profile.sample(generator, size=self._size)
        return TestSuite(self._space, demands)

    def sample_demand_masks(self, count: int, rng: SeedLike = None) -> np.ndarray:
        """All ``count`` suites in one ``(count, size)`` debug-profile draw."""
        return _profile_demand_masks(
            self._debug_profile, self._size, self._space, count, rng
        )

    def sample_demand_sequences(self, count: int, rng: SeedLike = None) -> np.ndarray:
        """All ``count`` suites as one ``(count, size)`` ordered block draw."""
        return _profile_demand_sequences(self._debug_profile, self._size, count, rng)


class ExhaustiveSuiteGenerator(SuiteGenerator):
    """The degenerate measure putting all mass on the exhaustive suite.

    Under perfect detection and fixing, exhaustive testing removes every
    fault — the limit in which the paper's back-to-back worst case makes
    the versions "fail identically" (here: not at all, unless detection is
    imperfect).
    """

    def sample(self, rng: SeedLike = None) -> TestSuite:
        return TestSuite(self._space, self._space.demands)

    def sample_demand_masks(self, count: int, rng: SeedLike = None) -> np.ndarray:
        """Every suite covers every demand — an all-True block."""
        if count < 0:
            raise ModelError(f"count must be non-negative, got {count}")
        return np.ones((count, self._space.size), dtype=bool)

    def sample_demand_sequences(self, count: int, rng: SeedLike = None) -> np.ndarray:
        """Every suite is the full demand space in index order."""
        if count < 0:
            raise ModelError(f"count must be non-negative, got {count}")
        return np.tile(
            np.asarray(self._space.demands, dtype=np.int64), (count, 1)
        )

    def enumerate(self) -> Iterable[Tuple[TestSuite, float]]:
        yield TestSuite(self._space, self._space.demands), 1.0


class EnumerableSuiteGenerator(SuiteGenerator):
    """An explicit finite measure ``M`` — suites with listed probabilities.

    The exact-analytics workhorse: expectations over ``Ξ`` (eqs. (12), (14),
    (20), (21)) become finite sums.  Also the natural encoding of scripted
    test campaigns where the possible suites are known in advance.
    """

    def __init__(
        self,
        space: DemandSpace,
        suites: Sequence[TestSuite],
        probabilities: Sequence[float] | np.ndarray,
    ) -> None:
        super().__init__(space)
        suites = list(suites)
        if not suites:
            raise ModelError("enumerable generator needs at least one suite")
        for index, suite in enumerate(suites):
            space.require_same(suite.space)
        probs = np.asarray(probabilities, dtype=np.float64)
        if probs.shape != (len(suites),):
            raise ModelError(
                f"got {len(suites)} suites but probability vector of shape "
                f"{probs.shape}"
            )
        if np.any(probs < 0.0) or np.any(~np.isfinite(probs)):
            raise ProbabilityError("suite probabilities must be finite and >= 0")
        if abs(float(probs.sum()) - 1.0) > _SUM_TOLERANCE:
            raise ProbabilityError(
                f"suite probabilities must sum to 1, got {probs.sum():.12f}"
            )
        self._suites = suites
        self._probs = probs
        self._cdf = np.cumsum(probs)
        self._mask_table: np.ndarray | None = None
        self._sequence_table: np.ndarray | None = None

    @classmethod
    def uniform_over(
        cls, space: DemandSpace, suites: Sequence[TestSuite]
    ) -> "EnumerableSuiteGenerator":
        """Equal probability over the listed suites."""
        suites = list(suites)
        return cls(space, suites, np.full(len(suites), 1.0 / len(suites)))

    @classmethod
    def all_subsets(
        cls, profile: UsageProfile, size: int
    ) -> "EnumerableSuiteGenerator":
        """All ``size``-subsets of the demand space, probability ∝ product of ``Q``.

        An exactly enumerable analogue of without-replacement sampling for
        tiny spaces (the combinatorics explode quickly; intended for
        ground-truth tests only).
        """
        space = profile.space
        suites = []
        weights = []
        for combo in itertools.combinations(range(space.size), size):
            suites.append(TestSuite.of(space, combo))
            weights.append(float(np.prod(profile.probabilities[list(combo)])))
        weight_array = np.asarray(weights)
        total = weight_array.sum()
        if total <= 0:
            raise ProbabilityError("no subset has positive probability")
        return cls(space, suites, weight_array / total)

    def __len__(self) -> int:
        return len(self._suites)

    def sample(self, rng: SeedLike = None) -> TestSuite:
        return self._suites[inverse_cdf_indices(self._cdf, rng)]

    def sample_demand_masks(self, count: int, rng: SeedLike = None) -> np.ndarray:
        """Gather ``count`` rows from a cached per-suite mask table."""
        if count < 0:
            raise ModelError(f"count must be non-negative, got {count}")
        if self._mask_table is None:
            self._mask_table = np.stack([suite.mask() for suite in self._suites])
        return self._mask_table[inverse_cdf_indices(self._cdf, rng, count)]

    def sample_demand_sequences(self, count: int, rng: SeedLike = None) -> np.ndarray:
        """Gather ``count`` rows from a cached padded per-suite sequence table."""
        if count < 0:
            raise ModelError(f"count must be non-negative, got {count}")
        if self._sequence_table is None:
            width = max(len(suite) for suite in self._suites)
            table = np.full((len(self._suites), width), SEQUENCE_PAD, dtype=np.int64)
            for row, suite in enumerate(self._suites):
                table[row, : len(suite)] = suite.demands
            self._sequence_table = table
        return self._sequence_table[inverse_cdf_indices(self._cdf, rng, count)]

    def enumerate(self) -> Iterable[Tuple[TestSuite, float]]:
        """Yield every ``(suite, probability)`` pair of the measure."""
        return zip(list(self._suites), self._probs.tolist())
