"""Oracles — the judging mechanism of the testing process.

The paper (§2): "A decision mechanism judges the executions of demands by
software as acceptable or failed... the judging mechanism can itself be
fallible."  An :class:`Oracle` decides, per executed demand, whether an
actual failure is *detected*.  Perfect detection gives the §3 results;
imperfect detection gives the §4.1 bounds; :class:`BackToBackComparator`
implements §4.2 where detection is mismatch between two versions' outputs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..errors import ProbabilityError
from ..rng import as_generator
from ..types import SeedLike
from ..versions import FailureOutputModel, Version

__all__ = ["Oracle", "PerfectOracle", "ImperfectOracle", "BackToBackComparator"]


class Oracle(abc.ABC):
    """Decides whether a failing execution is recognised as a failure."""

    @abc.abstractmethod
    def detects(
        self, version: Version, demand: int, rng: np.random.Generator
    ) -> bool:
        """True iff a failure of ``version`` on ``demand`` is detected.

        Called only when the version actually fails on the demand; a
        correct execution is never flagged (the models exclude false
        positives — flagging correct behaviour would mean "fixing"
        non-faults, which the no-new-faults assumption rules out).
        """


@dataclass(frozen=True)
class PerfectOracle(Oracle):
    """Every failure is detected — the §3 assumption."""

    def detects(
        self, version: Version, demand: int, rng: np.random.Generator
    ) -> bool:
        return True


@dataclass(frozen=True)
class ImperfectOracle(Oracle):
    """Each failure is detected independently with fixed probability.

    Parameters
    ----------
    detection_probability:
        Chance that a genuine failure is flagged.  ``1.0`` recovers
        :class:`PerfectOracle`; ``0.0`` makes testing inert, recovering the
        untested upper bound of §4.1.
    """

    detection_probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.detection_probability <= 1.0:
            raise ProbabilityError(
                f"detection probability must be in [0, 1], got "
                f"{self.detection_probability}"
            )

    def detects(
        self, version: Version, demand: int, rng: np.random.Generator
    ) -> bool:
        return bool(as_generator(rng).random() < self.detection_probability)


@dataclass(frozen=True)
class BackToBackComparator:
    """Mismatch-based detection for a version *pair* (§4.2).

    Not an :class:`Oracle` subclass: back-to-back judging needs both
    versions' behaviour on the demand, so the testing engine calls it with
    the pair.  The underlying :class:`FailureOutputModel` decides whether
    coincident failures are distinguishable.

    Notes
    -----
    "If at least one version succeeds on a demand then detection of any
    failures of other versions is guaranteed.  If, however, all versions
    fail coincidentally ... there is a possibility that all versions fail in
    exactly the same way in which case there will be no mismatch."
    """

    output_model: FailureOutputModel

    def mismatch(self, first: Version, second: Version, demand: int) -> bool:
        """True iff the comparator flags ``demand`` (outputs differ)."""
        return self.output_model.mismatch(first, second, demand)

    def detected_failures(
        self, first: Version, second: Version, demand: int
    ) -> tuple:
        """Which of the two versions have a *detected* failure on ``demand``.

        Returns a pair of booleans ``(first_detected, second_detected)``.
        On a mismatch, every version that actually fails on the demand is
        deemed detected (the disagreement triggers investigation, and under
        the paper's perfect-fixing follow-up the investigation finds each
        failing version's faults).  Without a mismatch nothing is detected.
        """
        if not self.mismatch(first, second, demand):
            return False, False
        return first.fails_on(demand), second.fails_on(demand)
