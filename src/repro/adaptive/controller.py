"""The adaptive precision controller: escalating rounds until targets hold.

:func:`run_adaptive` drives one or more *metrics* — named chunk samplers —
through escalating replication rounds on the batch engine's shared process
fan-out (:func:`repro.mc.batch.run_tasks`):

1. run every still-unconverged metric for the current round's replication
   allotment, chunked and (optionally) sharded across workers;
2. merge each chunk into the metric's accumulator
   (:mod:`repro.adaptive.accumulators` — exactly order- and worker-count
   invariant);
3. reduce to an :class:`~repro.adaptive.accumulators.Estimate` (applying
   the metric's variance-reduction arithmetic) and check it against the
   :class:`~repro.adaptive.targets.PrecisionTarget`;
4. size the next round from the *projected* requirement
   (:func:`repro.extensions.stopping.replications_for_half_width` on the
   observed spread), clamped by the target's ``growth`` factor and hard
   ``budget``.

A metric stops as soon as its target is met; the run stops when every
metric has stopped or exhausted its budget.  The resulting
:class:`AdaptiveReport` records, per metric, the estimate, the achieved
half-width, whether it converged, and the replications actually spent —
the payload experiments persist into ``ExperimentResult.extra`` and the
result store.

The concrete adapters at the bottom (:func:`adaptive_version_pfd`,
:func:`adaptive_untested_joint_pfd`, :func:`adaptive_marginal_system_pfd`,
:func:`adaptive_campaign_pfd`, :func:`adaptive_joint_on_demand`) bind the
variance-reduction chunk kernels of :mod:`repro.adaptive.variance` to the
controller for the library's standard estimands.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ModelError
from ..rng import as_generator, spawn_many
from ..types import SeedLike
from .accumulators import (
    Estimate,
    MeanAccumulator,
    ProportionAccumulator,
    StratifiedAccumulator,
)
from .targets import PrecisionTarget
from .variance import (
    POOLED,
    campaign_pfd_chunk,
    fault_count_pmf,
    joint_on_demand_chunk,
    marginal_system_pfd_chunk,
    pair_fault_count_pmf,
    resolve_vr,
    untested_joint_on_demand_chunk,
    untested_joint_pfd_chunk,
    version_pfd_chunk,
)

__all__ = [
    "AdaptiveReport",
    "MetricReport",
    "MetricSpec",
    "iter_adaptive_runs",
    "round_observer",
    "run_adaptive",
    "set_round_observer",
    "adaptive_version_pfd",
    "adaptive_untested_joint_pfd",
    "adaptive_untested_joint_on_demand",
    "adaptive_marginal_system_pfd",
    "adaptive_campaign_pfd",
    "adaptive_joint_on_demand",
]

_DEFAULT_CHUNK = 8192

#: smallest round worth dispatching — avoids long tails of tiny top-up
#: rounds when the projection lands just short
_MIN_ROUND = 64

# ambient per-thread round observer (see set_round_observer); thread-local
# so concurrent adaptive runs in different worker threads cannot observe
# each other's rounds
_ROUND_OBSERVER = threading.local()


def set_round_observer(
    callback: Optional[Callable[[Dict[str, object]], None]],
) -> Optional[Callable[[Dict[str, object]], None]]:
    """Install an ambient per-thread progress callback; returns the previous.

    While installed, every :func:`run_adaptive` round on this thread calls
    ``callback`` with the same payload an explicit ``on_round`` argument
    receives (see :func:`run_adaptive`).  This is how long-lived hosts —
    the ``repro.service`` job scheduler in particular — observe convergence
    progress from adaptive runs buried deep inside experiment runners
    without threading a callback through every layer, mirroring
    :func:`repro.experiments.base.set_engine_config`.  Pass ``None`` to
    uninstall.  Callback exceptions propagate: observers must be
    fire-and-forget.
    """
    previous = getattr(_ROUND_OBSERVER, "callback", None)
    _ROUND_OBSERVER.callback = callback
    return previous


def round_observer() -> Optional[Callable[[Dict[str, object]], None]]:
    """The ambient round observer installed on this thread, if any."""
    return getattr(_ROUND_OBSERVER, "callback", None)


@dataclass(frozen=True)
class MetricSpec:
    """One adaptively-estimated quantity.

    Attributes
    ----------
    name:
        Metric key in the report.
    kernel:
        Picklable chunk callable ``(index, count, seed) -> (index,
        replications, payload)``; payload is a per-stratum moments mapping
        for ``kind="mean"`` or a ``(successes, count)`` pair for
        ``kind="proportion"``.
    kind:
        ``"mean"`` or ``"proportion"``.
    weights:
        Exact stratum weights for post-stratified reduction (``None`` for
        pooled estimation).
    anchor:
        Exactly-known control mean for the control-variate estimator.
    scale:
        Optional reference scale for *relative* targets (defaults to the
        running ``|mean|``); pinned by metrics whose mean can sit
        arbitrarily close to zero.
    vr:
        The resolved variance-reduction technique (for reporting).
    reps_per_obs:
        Replications consumed per recorded observation (2 under
        antithetic pairing, else 1).
    """

    name: str
    kernel: Callable
    kind: str = "mean"
    weights: Optional[Dict[int, float]] = None
    anchor: Optional[float] = None
    scale: Optional[float] = None
    vr: str = "none"
    reps_per_obs: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("mean", "proportion"):
            raise ModelError(
                f"metric kind must be 'mean' or 'proportion', got {self.kind!r}"
            )
        if self.reps_per_obs < 1:
            raise ModelError(
                f"reps_per_obs must be >= 1, got {self.reps_per_obs}"
            )


@dataclass(frozen=True)
class MetricReport:
    """Outcome of one metric's adaptive estimation."""

    name: str
    estimate: Estimate
    converged: bool
    replications: int
    rounds: int
    threshold: float
    vr: str
    kind: str = "mean"

    def as_estimator(self, report: Optional["AdaptiveReport"] = None):
        """Package the estimate as a standard streaming estimator.

        This is how the ``simulate_*`` drivers keep their return types
        under ``precision=``: a :class:`~repro.mc.estimator.MeanEstimator`
        (or :class:`~repro.mc.estimator.ProportionEstimator`) whose mean,
        standard error and intervals reproduce the adaptive estimate —
        for variance-reduced means the moments are *synthesised* from the
        adjusted estimate, so ``mean``/``std_error()`` report the
        variance-reduced values, not the raw sample's.  When ``report``
        is given it is attached as an ``adaptive`` attribute for callers
        that want the convergence metadata.
        """
        from ..mc.estimator import MeanEstimator, ProportionEstimator

        estimate = self.estimate
        if self.kind == "proportion":
            estimator = ProportionEstimator()
            estimator.add_many(
                int(round(estimate.mean * estimate.count)), estimate.count
            )
        else:
            estimator = MeanEstimator()
            if estimate.count:
                if not math.isfinite(estimate.std_error):
                    raise ModelError(
                        "cannot package an estimate without a finite "
                        "standard error"
                    )
                m2 = (
                    estimate.std_error**2
                    * estimate.count
                    * max(estimate.count - 1, 0)
                )
                estimator.add_moments(estimate.count, estimate.mean, m2)
        if report is not None:
            estimator.adaptive = report
        return estimator

    def to_payload(self) -> Dict[str, object]:
        """JSON-safe summary for ``ExperimentResult.extra`` / the store."""
        return {
            "mean": float(self.estimate.mean),
            "std_error": float(self.estimate.std_error),
            "half_width": float(self.estimate.half_width),
            "threshold": float(self.threshold),
            "confidence": float(self.estimate.confidence),
            "observations": int(self.estimate.count),
            "replications": int(self.replications),
            "rounds": int(self.rounds),
            "converged": bool(self.converged),
            "vr": str(self.vr),
        }


@dataclass(frozen=True)
class AdaptiveReport:
    """Outcome of one :func:`run_adaptive` call across all its metrics."""

    metrics: Dict[str, MetricReport]
    target: PrecisionTarget
    rounds: int

    @property
    def converged(self) -> bool:
        """True iff every metric met its target within budget."""
        return all(metric.converged for metric in self.metrics.values())

    @property
    def replications(self) -> int:
        """Total replications spent across all metrics."""
        return sum(metric.replications for metric in self.metrics.values())

    def __getitem__(self, name: str) -> MetricReport:
        return self.metrics[name]

    @property
    def only(self) -> MetricReport:
        """The single metric of a one-metric run."""
        if len(self.metrics) != 1:
            raise ModelError(
                f"report tracks {len(self.metrics)} metrics; ask by name"
            )
        return next(iter(self.metrics.values()))

    def to_payload(self) -> Dict[str, object]:
        """JSON-safe summary for ``ExperimentResult.extra`` / the store."""
        return {
            "converged": bool(self.converged),
            "replications": int(self.replications),
            "rounds": int(self.rounds),
            "target": self.target.to_params(),
            "metrics": {
                name: metric.to_payload()
                for name, metric in sorted(self.metrics.items())
            },
        }


def iter_adaptive_runs(payload):
    """Yield every :meth:`AdaptiveReport.to_payload` dict inside ``payload``.

    Experiments nest their adaptive reports under arbitrary labels in
    ``ExperimentResult.extra["adaptive"]`` (per shape, per grid point, per
    campaign); this walker is the single definition of that shape, shared
    by the printed report's summary line and the sweep layer's Neyman
    sigma extraction — so the payload structure cannot silently drift
    apart between consumers.
    """
    if not isinstance(payload, dict):
        return
    if "metrics" in payload and "replications" in payload:
        yield payload
        return
    for value in payload.values():
        yield from iter_adaptive_runs(value)


class _MetricState:
    """Mutable per-metric bookkeeping inside the controller loop."""

    def __init__(self, spec: MetricSpec, stream) -> None:
        self.spec = spec
        self.stream = stream
        self.accumulator = (
            ProportionAccumulator()
            if spec.kind == "proportion"
            else StratifiedAccumulator()
        )
        self.replications = 0
        self.rounds = 0
        self.next_index = 0
        self.done = False

    def estimate(self, confidence: float) -> Estimate:
        spec = self.spec
        if spec.kind == "proportion":
            return self.accumulator.estimate(confidence)
        weights = spec.weights if spec.weights is not None else {POOLED: 1.0}
        return self.accumulator.estimate(
            weights, confidence, anchor=spec.anchor
        )

    def absorb(self, index: int, replications: int, payload) -> None:
        if self.spec.kind == "proportion":
            successes, count = payload
            self.accumulator.add_chunk(index, successes, count)
        else:
            self.accumulator.add_chunk(index, payload)
        self.replications += int(replications)


def _dispatch_chunk(kernels: Dict[str, Callable], task):
    """Run one (metric, chunk) task — module level for process pools."""
    name, chunk_task = task
    index, replications, payload = kernels[name](chunk_task)
    return name, index, replications, payload


def _round_allotment(
    state: _MetricState, estimate: Estimate, target: PrecisionTarget
) -> int:
    """Replications the next round should add for one unmet metric."""
    budget = target.budget
    remaining = (
        math.inf if budget is None else budget - state.replications
    )
    if remaining <= 0:
        return 0
    if state.replications == 0:
        allotment = target.initial
    else:
        threshold = target.threshold(estimate.mean, state.spec.scale)
        allotment = None
        if threshold > 0.0 and math.isfinite(estimate.std_error):
            # project the total sample the observed spread implies, with a
            # 10% safety margin for the spread estimate's own noise
            from ..extensions.stopping import replications_for_half_width

            spread = estimate.std_error * math.sqrt(max(estimate.count, 1))
            if spread > 0.0:
                needed_obs = replications_for_half_width(
                    spread, threshold, estimate.confidence
                )
                needed = needed_obs * state.spec.reps_per_obs
                allotment = math.ceil(1.1 * needed) - state.replications
        if allotment is None or allotment <= 0:
            allotment = state.replications  # geometric fallback: double
        # never escalate the cumulative count past the growth cap
        cap = math.ceil(state.replications * target.growth) - state.replications
        allotment = min(allotment, cap)
        allotment = max(allotment, min(_MIN_ROUND, cap))
    if allotment > remaining:
        allotment = int(remaining)
    allotment = int(allotment)
    if state.spec.reps_per_obs > 1:
        multiple = state.spec.reps_per_obs
        allotment = max(
            multiple, (allotment + multiple - 1) // multiple * multiple
        )
        if not math.isinf(remaining):
            allotment = min(allotment, int(remaining) // multiple * multiple)
    return max(allotment, 0)


def _round_payload(
    round_number: int,
    names: Sequence[str],
    states: Dict[str, "_MetricState"],
    target: PrecisionTarget,
) -> Dict[str, object]:
    """The progress payload emitted after one controller round."""
    metrics: Dict[str, object] = {}
    for name in sorted(names):
        state = states[name]
        estimate = state.estimate(target.confidence)
        threshold = target.threshold(estimate.mean, state.spec.scale)
        metrics[name] = {
            "replications": int(state.replications),
            "mean": float(estimate.mean),
            "half_width": float(estimate.half_width),
            "threshold": float(threshold),
            "converged": bool(
                target.met(estimate.mean, estimate.half_width, state.spec.scale)
            ),
        }
    return {"round": int(round_number), "metrics": metrics}


def run_adaptive(
    metrics: Sequence[MetricSpec],
    target: PrecisionTarget,
    rng: SeedLike = None,
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    on_round: Optional[Callable[[Dict[str, object]], None]] = None,
) -> AdaptiveReport:
    """Estimate every metric to its precision target (or budget).

    Results are deterministic in ``rng`` and bit-identical for any
    ``n_jobs``: chunk seeds are drawn per metric in declaration order
    before any work runs, and accumulators reduce in chunk-index order
    regardless of completion order.

    After each round, ``on_round`` (and the ambient per-thread observer
    installed with :func:`set_round_observer`, if any) receives a progress
    payload — ``{"round": n, "metrics": {name: {"replications",
    "mean", "half_width", "threshold", "converged"}}}`` covering the
    metrics that ran in that round.  Observation never changes results:
    the payload is derived from the same accumulator state the stopping
    decision reads.
    """
    if not metrics:
        raise ModelError("run_adaptive needs at least one metric")
    names = [spec.name for spec in metrics]
    if len(set(names)) != len(names):
        raise ModelError(f"duplicate metric name(s) in {names}")
    if target.budget is None:
        raise ModelError(
            "run_adaptive needs a bounded target; call "
            "target.with_defaults(budget=...) first"
        )
    if chunk_size is None:
        chunk_size = _DEFAULT_CHUNK
    if chunk_size < 1:
        raise ModelError(f"chunk_size must be >= 1, got {chunk_size}")
    from ..mc.batch import run_tasks

    root = as_generator(rng)
    streams = spawn_many(root, len(metrics))
    states = {
        spec.name: _MetricState(spec, stream)
        for spec, stream in zip(metrics, streams)
    }
    kernels = {spec.name: spec.kernel for spec in metrics}
    rounds = 0
    while True:
        tasks: List[Tuple[str, Tuple[int, int, int]]] = []
        for name in names:
            state = states[name]
            if state.done:
                continue
            estimate = (
                state.estimate(target.confidence)
                if state.replications
                else None
            )
            if estimate is not None and target.met(
                estimate.mean, estimate.half_width, state.spec.scale
            ):
                state.done = True
                continue
            allotment = _round_allotment(
                state,
                estimate
                if estimate is not None
                else Estimate(math.nan, math.inf, math.inf, 0, target.confidence),
                target,
            )
            if allotment <= 0:
                state.done = True  # budget exhausted
                continue
            state.rounds += 1
            remaining = allotment
            multiple = state.spec.reps_per_obs
            while remaining > 0:
                step = min(chunk_size, remaining)
                if multiple > 1:
                    # paired sampling: every chunk must be a whole number
                    # of pairs, or the kernel would run more/fewer
                    # replications than the budget accounting records
                    step = max(multiple, step - step % multiple)
                    step = min(step, remaining)
                seed = int(
                    state.stream.integers(0, 2**63 - 1, dtype="int64")
                )
                tasks.append((name, (state.next_index, step, seed)))
                state.next_index += 1
                remaining -= step
        if not tasks:
            break
        rounds += 1
        from ..obs import span as _obs_span

        with _obs_span(
            "adaptive.round",
            round=rounds,
            chunks=len(tasks),
            replications=sum(step for _, (_, step, _) in tasks),
        ):
            results = run_tasks(
                partial(_dispatch_chunk, kernels), tasks, n_jobs
            )
            for name, index, replications, payload in results:
                states[name].absorb(index, replications, payload)
        observer = round_observer()
        if on_round is not None or observer is not None:
            progress = _round_payload(
                rounds, sorted({name for name, _ in tasks}), states, target
            )
            if on_round is not None:
                on_round(progress)
            if observer is not None:
                observer(progress)
    reports = {}
    for name in names:
        state = states[name]
        estimate = state.estimate(target.confidence)
        threshold = target.threshold(estimate.mean, state.spec.scale)
        reports[name] = MetricReport(
            name=name,
            estimate=estimate,
            converged=target.met(
                estimate.mean, estimate.half_width, state.spec.scale
            ),
            replications=state.replications,
            rounds=state.rounds,
            threshold=threshold,
            vr=state.spec.vr,
            kind=state.spec.kind,
        )
    return AdaptiveReport(metrics=reports, target=target, rounds=rounds)


# ---------------------------------------------------------------------------
# adapters for the library's standard estimands
# ---------------------------------------------------------------------------


def _antithetic_ok(population, generator) -> bool:
    from ..populations import BernoulliFaultPopulation
    from ..testing import OperationalSuiteGenerator

    return isinstance(population, BernoulliFaultPopulation) and isinstance(
        generator, OperationalSuiteGenerator
    )


def adaptive_version_pfd(
    population,
    generator,
    profile,
    target: PrecisionTarget,
    oracle=None,
    fixing=None,
    rng: SeedLike = None,
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    default_budget: Optional[int] = None,
    name: str = "version_pfd",
) -> AdaptiveReport:
    """Adaptive mean post-test version pfd — eq. (14)'s ``E_Q[ζ(X)]``.

    The precision-targeted counterpart of
    :func:`repro.mc.simulate_version_pfd`: control variate anchored on the
    exact untested mean ``E_Q[θ]``, post-stratified on the version's fault
    count when the population's pmf is exact.
    """
    from ..mc.batch import _require_plan

    plan = _require_plan(oracle, fixing)
    population.space.require_same(profile.space)
    target = target.with_defaults(budget=default_budget)
    weights = fault_count_pmf(population)
    vr = resolve_vr(
        target.vr,
        has_strata=weights is not None,
        has_anchor=True,
        antithetic_ok=_antithetic_ok(population, generator),
    )
    spec = MetricSpec(
        name=name,
        kernel=partial(
            version_pfd_chunk, population, generator, profile, plan, vr
        ),
        weights=weights if vr in ("stratified", "stratified+control") else None,
        anchor=(
            population.pfd(profile)
            if vr in ("control", "stratified+control")
            else None
        ),
        vr=vr,
        reps_per_obs=2 if vr == "antithetic" else 1,
    )
    return run_adaptive(
        [spec], target, rng=rng, n_jobs=n_jobs, chunk_size=chunk_size
    )


def adaptive_untested_joint_pfd(
    population_a,
    profile,
    target: PrecisionTarget,
    population_b=None,
    rng: SeedLike = None,
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    default_budget: Optional[int] = None,
    name: str = "untested_joint_pfd",
) -> AdaptiveReport:
    """Adaptive untested joint pfd ``E[Θ_A(X) Θ_B(X)]`` — eqs. (4)/(6).

    Control variate: the pair's average marginal pfd, whose exact mean is
    ``(E[Θ_A] + E[Θ_B]) / 2``; strata: the pair's total fault count.
    """
    population_b = population_b if population_b is not None else population_a
    population_a.space.require_same(profile.space)
    target = target.with_defaults(budget=default_budget)
    weights = pair_fault_count_pmf(population_a, population_b)
    vr = resolve_vr(
        target.vr, has_strata=weights is not None, has_anchor=True
    )
    spec = MetricSpec(
        name=name,
        kernel=partial(
            untested_joint_pfd_chunk, population_a, population_b, profile, vr
        ),
        weights=weights if vr in ("stratified", "stratified+control") else None,
        anchor=(
            0.5 * (population_a.pfd(profile) + population_b.pfd(profile))
            if vr in ("control", "stratified+control")
            else None
        ),
        vr=vr,
    )
    return run_adaptive(
        [spec], target, rng=rng, n_jobs=n_jobs, chunk_size=chunk_size
    )


def adaptive_marginal_system_pfd(
    regime,
    population_a,
    profile,
    target: PrecisionTarget,
    population_b=None,
    oracle=None,
    fixing=None,
    rng: SeedLike = None,
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    default_budget: Optional[int] = None,
    name: str = "system_pfd",
) -> AdaptiveReport:
    """Adaptive tested 1-out-of-2 system pfd — eqs. (22)–(25).

    Control variate: the *untested* joint pfd of the same drawn pair,
    whose exact mean is ``E_Q[θ_A θ_B]``; strata: pair fault count.
    """
    from ..mc.batch import _require_plan

    plan = _require_plan(oracle, fixing)
    population_b = population_b if population_b is not None else population_a
    population_a.space.require_same(profile.space)
    target = target.with_defaults(budget=default_budget)
    weights = pair_fault_count_pmf(population_a, population_b)
    vr = resolve_vr(
        target.vr, has_strata=weights is not None, has_anchor=True
    )
    anchor = None
    if vr in ("control", "stratified+control"):
        anchor = float(
            profile.expectation(
                population_a.difficulty() * population_b.difficulty()
            )
        )
    spec = MetricSpec(
        name=name,
        kernel=partial(
            marginal_system_pfd_chunk,
            regime,
            population_a,
            population_b,
            profile,
            plan,
            vr,
        ),
        weights=weights if vr in ("stratified", "stratified+control") else None,
        anchor=anchor,
        vr=vr,
    )
    return run_adaptive(
        [spec], target, rng=rng, n_jobs=n_jobs, chunk_size=chunk_size
    )


def adaptive_campaign_pfd(
    campaign,
    population_a,
    profile,
    target: PrecisionTarget,
    population_b=None,
    rng: SeedLike = None,
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    default_budget: Optional[int] = None,
    scale: Optional[float] = None,
    name: str = "campaign_pfd",
) -> AdaptiveReport:
    """Adaptive mean final system pfd of a development campaign (§5).

    Requires a fully batch-capable campaign
    (:attr:`repro.extensions.DevelopmentCampaign.supports_batch`).
    ``scale`` anchors relative targets for campaigns whose delivered pfd
    sits near zero — ``x3`` passes the exact untested system pfd, so
    ``rel_hw`` reads as "this fraction of the untested baseline".
    """
    if not campaign.supports_batch:
        raise ModelError(
            "adaptive campaign estimation needs every activity to support "
            "the batch path; run the fixed-n scalar estimator instead"
        )
    population_b = population_b if population_b is not None else population_a
    population_a.space.require_same(profile.space)
    target = target.with_defaults(budget=default_budget)
    weights = pair_fault_count_pmf(population_a, population_b)
    vr = resolve_vr(
        target.vr, has_strata=weights is not None, has_anchor=True
    )
    anchor = None
    if vr in ("control", "stratified+control"):
        anchor = float(
            profile.expectation(
                population_a.difficulty() * population_b.difficulty()
            )
        )
    spec = MetricSpec(
        name=name,
        kernel=partial(
            campaign_pfd_chunk, campaign, population_a, population_b, profile, vr
        ),
        weights=weights if vr in ("stratified", "stratified+control") else None,
        anchor=anchor,
        scale=scale,
        vr=vr,
    )
    return run_adaptive(
        [spec], target, rng=rng, n_jobs=n_jobs, chunk_size=chunk_size
    )


def _require_proportion_vr(target: PrecisionTarget) -> None:
    """Proportion metrics accumulate exact counts; no VR transform exists.

    An *explicit* request for one must fail loudly (mirroring
    :func:`repro.adaptive.variance.resolve_vr`'s contract) instead of
    silently running plain sampling under a misleading label.
    """
    if target.vr not in ("auto", "none"):
        raise ModelError(
            f"vr={target.vr!r} does not apply to proportion metrics "
            "(exact integer counts, Wilson intervals); use vr='none' or "
            "vr='auto'"
        )


def adaptive_untested_joint_on_demand(
    population_a,
    demand: int,
    target: PrecisionTarget,
    population_b=None,
    rng: SeedLike = None,
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    default_budget: Optional[int] = None,
    name: str = "untested_joint_on_demand",
) -> AdaptiveReport:
    """Adaptive ``P(both untested versions fail on x)`` — the eq. (4) check."""
    _require_proportion_vr(target)
    population_b = population_b if population_b is not None else population_a
    demand = population_a.space.validate_demand(demand)
    target = target.with_defaults(budget=default_budget)
    spec = MetricSpec(
        name=name,
        kernel=partial(
            untested_joint_on_demand_chunk, population_a, population_b, demand
        ),
        kind="proportion",
        vr="none",
    )
    return run_adaptive(
        [spec], target, rng=rng, n_jobs=n_jobs, chunk_size=chunk_size
    )


def adaptive_joint_on_demand(
    regime,
    population_a,
    demand: int,
    target: PrecisionTarget,
    population_b=None,
    oracle=None,
    fixing=None,
    rng: SeedLike = None,
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    default_budget: Optional[int] = None,
    name: str = "joint_on_demand",
) -> AdaptiveReport:
    """Adaptive ``P(both tested versions fail on x)`` — eqs. (16)–(21).

    A proportion metric: chunks accumulate exact integer counts and the
    stopping half-width is the Wilson interval's.
    """
    from ..mc.batch import _require_plan

    _require_proportion_vr(target)
    plan = _require_plan(oracle, fixing)
    population_b = population_b if population_b is not None else population_a
    demand = population_a.space.validate_demand(demand)
    target = target.with_defaults(budget=default_budget)
    spec = MetricSpec(
        name=name,
        kernel=partial(
            joint_on_demand_chunk,
            regime,
            population_a,
            population_b,
            demand,
            plan,
        ),
        kind="proportion",
        vr="none",
    )
    return run_adaptive(
        [spec], target, rng=rng, n_jobs=n_jobs, chunk_size=chunk_size
    )
