"""Precision targets: how tight an adaptive estimate must be before it stops.

The paper (§2) frames operational testing around stopping rules that give
the tester "sufficiently high confidence that the goal has been achieved"
(Littlewood & Wright's conservative rules).  A :class:`PrecisionTarget` is
the same idea applied to our own Monte-Carlo runs: instead of burning a
fixed ``n_replications`` per experiment, the adaptive controller
(:mod:`repro.adaptive.controller`) keeps escalating the replication count
until every tracked metric's confidence-interval half-width is below the
target — or a hard budget runs out.

Targets are plain declarative data, parseable from three front ends:

* Python: ``PrecisionTarget(rel_hw=0.05, budget=20_000)``;
* TOML sweep grids: a ``[precision]`` table with the same keys
  (see :mod:`repro.sweeps` and ``docs/sweeps.md``);
* the CLI: ``--target-rel-hw`` / ``--target-abs-hw`` / ``--budget`` /
  ``--vr`` (see ``python -m repro.experiments --help``).

A target is **met** for a metric when the half-width is at or below the
absolute target (if set) *or* at or below ``rel_hw`` times the metric's
scale (if set).  The scale defaults to the running ``|mean|`` — the classic
relative-precision criterion — but a metric may pin an explicit scale
(e.g. ``x3`` anchors its campaign metrics to the exact untested system
pfd) so that relative targets stay meaningful for estimands whose mean is
arbitrarily close to zero.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..errors import ModelError

__all__ = ["PrecisionTarget", "VR_MODES"]

#: Recognised variance-reduction knob values (resolved per sampler by
#: :func:`repro.adaptive.variance.resolve_vr`).
VR_MODES = (
    "auto",
    "none",
    "antithetic",
    "stratified",
    "control",
    "stratified+control",
)

_KNOWN_KEYS = (
    "rel_hw",
    "abs_hw",
    "confidence",
    "budget",
    "initial",
    "growth",
    "vr",
)


@dataclass(frozen=True)
class PrecisionTarget:
    """Declarative stopping criterion for an adaptive Monte-Carlo run.

    Attributes
    ----------
    rel_hw:
        Relative half-width target: stop when ``half_width <= rel_hw *
        scale`` (scale defaults to the running ``|mean|``).
    abs_hw:
        Absolute half-width target: stop when ``half_width <= abs_hw``.
        At least one of ``rel_hw`` / ``abs_hw`` must be set; when both
        are, meeting either stops the run.
    confidence:
        Confidence level of the interval whose half-width is checked.
    budget:
        Hard cap on replications per metric.  ``None`` lets the caller
        supply a context default (experiments use their full-mode
        replication counts); the controller never exceeds it.
    initial:
        Replications of the first round (also the minimum sample before
        any convergence decision is trusted).
    growth:
        Maximum escalation factor between consecutive cumulative sample
        sizes.  Rounds are sized from the projected requirement
        (:func:`repro.extensions.stopping.replications_for_half_width`)
        but never grow the cumulative count by more than this factor.
    vr:
        Variance-reduction knob — one of :data:`VR_MODES`.  ``"auto"``
        picks the strongest technique each sampler supports.
    """

    rel_hw: Optional[float] = None
    abs_hw: Optional[float] = None
    confidence: float = 0.99
    budget: Optional[int] = None
    initial: int = 256
    growth: float = 4.0
    vr: str = "auto"

    def __post_init__(self) -> None:
        if self.rel_hw is None and self.abs_hw is None:
            raise ModelError(
                "a PrecisionTarget needs rel_hw and/or abs_hw"
            )
        for name in ("rel_hw", "abs_hw"):
            value = getattr(self, name)
            if value is not None and not (
                isinstance(value, (int, float)) and 0.0 < float(value) < math.inf
            ):
                raise ModelError(
                    f"{name} must be a positive finite number, got {value!r}"
                )
        if not 0.0 < self.confidence < 1.0:
            raise ModelError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )
        if self.budget is not None and self.budget < 1:
            raise ModelError(f"budget must be >= 1, got {self.budget}")
        if self.initial < 1:
            raise ModelError(f"initial must be >= 1, got {self.initial}")
        if self.budget is not None and self.budget < self.initial:
            raise ModelError(
                f"budget ({self.budget}) must be >= initial ({self.initial})"
            )
        if not self.growth > 1.0:
            raise ModelError(f"growth must be > 1, got {self.growth}")
        if self.vr not in VR_MODES:
            raise ModelError(
                f"vr must be one of {VR_MODES}, got {self.vr!r}"
            )

    # -- stopping predicate -------------------------------------------------

    def threshold(self, mean: float, scale: Optional[float] = None) -> float:
        """The half-width this metric must reach, given its current mean.

        The loosest of the configured criteria (meeting either stops the
        run).  With only a relative target and a zero mean (and no pinned
        scale) the threshold is 0 — only a degenerate, zero-spread sample
        can satisfy it, which is exactly right: a relative target on an
        exactly-zero estimand is met only by an exact answer.
        """
        candidates = []
        if self.abs_hw is not None:
            candidates.append(float(self.abs_hw))
        if self.rel_hw is not None:
            reference = abs(mean) if scale is None else float(scale)
            candidates.append(float(self.rel_hw) * reference)
        return max(candidates)

    def met(
        self,
        mean: float,
        half_width: float,
        scale: Optional[float] = None,
    ) -> bool:
        """True iff ``half_width`` satisfies this target at ``mean``."""
        if math.isnan(half_width):
            return False
        return half_width <= self.threshold(mean, scale)

    # -- serialization ------------------------------------------------------

    def to_params(self) -> Dict[str, object]:
        """The target as a canonical, JSON-safe mapping.

        This is the form stored in sweep-point params (and hashed into
        cache keys), so it includes only explicitly-representable values
        and omits nothing: two targets with equal fields serialize
        identically.
        """
        return {
            "rel_hw": self.rel_hw,
            "abs_hw": self.abs_hw,
            "confidence": self.confidence,
            "budget": self.budget,
            "initial": self.initial,
            "growth": self.growth,
            "vr": self.vr,
        }

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, object]) -> "PrecisionTarget":
        """Build a target from a TOML ``[precision]`` table (or any dict).

        Unknown keys are rejected up front so a typo in a grid file fails
        before any replication budget is spent, mirroring the sweep
        layer's knob validation.
        """
        stray = sorted(set(mapping) - set(_KNOWN_KEYS))
        if stray:
            raise ModelError(
                f"unknown precision key(s): {stray} (known: "
                f"{sorted(_KNOWN_KEYS)})"
            )
        kwargs: Dict[str, object] = {}
        for key in _KNOWN_KEYS:
            if key in mapping and mapping[key] is not None:
                kwargs[key] = mapping[key]
        if "budget" in kwargs:
            kwargs["budget"] = int(kwargs["budget"])
        if "initial" in kwargs:
            kwargs["initial"] = int(kwargs["initial"])
        return cls(**kwargs)

    @classmethod
    def coerce(cls, value: object) -> Optional["PrecisionTarget"]:
        """Normalise a runner's ``precision`` knob value.

        Accepts ``None`` (no adaptive control), an existing target, or a
        mapping (the form a TOML grid or the CLI produces).
        """
        if value is None:
            return None
        if isinstance(value, cls):
            return value
        if isinstance(value, Mapping):
            return cls.from_mapping(value)
        raise ModelError(
            "precision must be a PrecisionTarget, a mapping of its fields, "
            f"or None; got {type(value).__name__}"
        )

    def with_defaults(
        self, budget: Optional[int] = None
    ) -> "PrecisionTarget":
        """This target with unset fields filled from context defaults.

        Experiments call this to supply their replication budget when the
        user did not pin one.  A context budget below ``initial`` clamps
        ``initial`` down (matching ``PrecisionPlan.knob``) — the declared
        budget is a hard ceiling and is never silently raised.
        """
        if self.budget is not None or budget is None:
            return self
        budget = max(int(budget), 1)
        return PrecisionTarget(
            rel_hw=self.rel_hw,
            abs_hw=self.abs_hw,
            confidence=self.confidence,
            budget=budget,
            initial=min(self.initial, budget),
            growth=self.growth,
            vr=self.vr,
        )
