"""Adaptive precision engine: precision-targeted replication control.

Instead of burning a fixed ``n_replications`` per Monte-Carlo experiment —
oversampling tight points and undersampling noisy tails — this subsystem
runs *sequential escalating rounds* until each tracked metric's
confidence-interval half-width meets a declarative
:class:`~repro.adaptive.targets.PrecisionTarget` (or a hard budget runs
out), with variance-reduction kernels (control variates anchored on the
analytic layer's exact means, post-stratification on exact fault-count
pmfs, antithetic pairing) cutting the replications-to-target further.

Layers, bottom up:

* :mod:`~repro.adaptive.targets` — the declarative stopping criteria,
  parseable from Python, TOML sweep grids and the CLI;
* :mod:`~repro.adaptive.accumulators` — chunk-keyed mergeable moment
  accumulators whose reductions are exactly chunk-order and worker-count
  invariant;
* :mod:`~repro.adaptive.variance` — the variance-reduction chunk kernels
  riding the batch engine's matrix primitives;
* :mod:`~repro.adaptive.controller` — the escalating-round driver and the
  per-estimand adapters.

See ``docs/adaptive.md`` for the user-level guide.
"""

from .accumulators import (
    BivariateMoments,
    Estimate,
    MeanAccumulator,
    ProportionAccumulator,
    StratifiedAccumulator,
    estimator_half_width,
    moments_of,
)
from .controller import (
    AdaptiveReport,
    MetricReport,
    MetricSpec,
    adaptive_campaign_pfd,
    adaptive_joint_on_demand,
    adaptive_marginal_system_pfd,
    adaptive_untested_joint_on_demand,
    adaptive_untested_joint_pfd,
    adaptive_version_pfd,
    iter_adaptive_runs,
    round_observer,
    run_adaptive,
    set_round_observer,
)
from .targets import VR_MODES, PrecisionTarget
from .variance import fault_count_pmf, pair_fault_count_pmf, resolve_vr

__all__ = [
    "AdaptiveReport",
    "BivariateMoments",
    "Estimate",
    "MeanAccumulator",
    "MetricReport",
    "MetricSpec",
    "PrecisionTarget",
    "ProportionAccumulator",
    "StratifiedAccumulator",
    "VR_MODES",
    "adaptive_campaign_pfd",
    "adaptive_joint_on_demand",
    "adaptive_marginal_system_pfd",
    "adaptive_untested_joint_on_demand",
    "adaptive_untested_joint_pfd",
    "adaptive_version_pfd",
    "estimator_half_width",
    "fault_count_pmf",
    "iter_adaptive_runs",
    "moments_of",
    "pair_fault_count_pmf",
    "resolve_vr",
    "round_observer",
    "run_adaptive",
    "set_round_observer",
]
