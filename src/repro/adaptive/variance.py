"""Variance-reduction kernels for the adaptive controller.

Each kernel runs one chunk of replications of the paper's generative story
on the batch engine's matrix primitives and reduces it to the mergeable
per-stratum bivariate moments of
:mod:`repro.adaptive.accumulators` — the shape every variance-reduction
technique here can be expressed in:

* ``"none"`` — plain sampling: one stratum, no control value;
* ``"stratified"`` — the chunk is *post-stratified* on the replication's
  initial fault count (pair total for two-channel metrics), whose exact
  Poisson-binomial distribution :func:`fault_count_pmf` computes from the
  population itself, so the between-strata variance component is removed
  with exact weights;
* ``"control"`` — each replication also records a control value whose
  exact mean the analytic layer knows (the *untested* pfd of the same
  drawn versions — ``E[Θ]`` via ``population.difficulty()`` /
  ``profile.expectation``), enabling the regression control-variate
  estimator at reduction time;
* ``"stratified+control"`` — both, with a common β chosen to minimise the
  stratified variance;
* ``"antithetic"`` — replications are drawn in negatively-coupled pairs
  (fault-presence and suite-demand uniforms ``u`` / ``1 − u``), and each
  pair's average is one observation.

``"auto"`` resolves per sampler to the strongest technique its model
supports (:func:`resolve_vr`): ``stratified+control`` when the population
exposes an exact fault-count pmf, else ``control`` (the untested anchor is
always computable), falling back to ``none`` only for metrics with no
analytic anchor at all.  Antithetic pairing is never auto-selected — it is
incompatible with stratification (a pair straddles strata) and exists as
an explicitly-requested alternative.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import ModelError, NotEnumerableError
from ..populations import BernoulliFaultPopulation, VersionPopulation
from ..rng import as_generator, inverse_cdf_indices, spawn_many
from ..testing import OperationalSuiteGenerator
from .accumulators import BivariateMoments, moments_of
from .targets import VR_MODES

__all__ = [
    "fault_count_pmf",
    "pair_fault_count_pmf",
    "resolve_vr",
]

#: stratum key used by non-stratified kernels
POOLED = 0


def fault_count_pmf(population: VersionPopulation) -> Optional[Dict[int, float]]:
    """Exact pmf of a version's fault count, when the population allows it.

    For a :class:`~repro.populations.BernoulliFaultPopulation` the count is
    Poisson-binomial in the per-fault presence probabilities; the standard
    O(F²) convolution DP computes it exactly.  Populations that support
    exact enumeration are handled through it; anything else returns
    ``None`` (no stratification available).
    """
    if isinstance(population, BernoulliFaultPopulation):
        pmf = np.array([1.0])
        for p in population.presence_probs:
            extended = np.zeros(pmf.size + 1)
            extended[: pmf.size] += pmf * (1.0 - p)
            extended[1:] += pmf * p
            pmf = extended
        return {k: float(mass) for k, mass in enumerate(pmf)}
    try:
        pairs = list(population.enumerate())
    except NotEnumerableError:
        # the documented "no exact enumeration" signal; any other
        # exception is a genuine bug and must propagate
        return None
    pmf_map: Dict[int, float] = {}
    for version, probability in pairs:
        k = int(version.n_faults)
        pmf_map[k] = pmf_map.get(k, 0.0) + float(probability)
    return pmf_map


def pair_fault_count_pmf(
    population_a: VersionPopulation, population_b: VersionPopulation
) -> Optional[Dict[int, float]]:
    """Exact pmf of the *pair* fault count ``K_A + K_B`` (independent draws)."""
    pmf_a = fault_count_pmf(population_a)
    pmf_b = fault_count_pmf(population_b)
    if pmf_a is None or pmf_b is None:
        return None
    out: Dict[int, float] = {}
    for ka, pa in pmf_a.items():
        for kb, pb in pmf_b.items():
            out[ka + kb] = out.get(ka + kb, 0.0) + pa * pb
    return out


def resolve_vr(
    vr: str,
    has_strata: bool,
    has_anchor: bool,
    antithetic_ok: bool = False,
) -> str:
    """Resolve the ``vr`` knob to a concrete technique for one sampler.

    ``"auto"`` picks the strongest supported combination; an *explicit*
    request for an unsupported technique raises, so a grid that asks for
    stratification on a population without an exact fault-count pmf fails
    loudly instead of silently measuring something else.
    """
    if vr not in VR_MODES:
        raise ModelError(f"vr must be one of {VR_MODES}, got {vr!r}")
    if vr == "auto":
        if has_strata and has_anchor:
            return "stratified+control"
        if has_anchor:
            return "control"
        if has_strata:
            return "stratified"
        return "none"
    if vr in ("stratified", "stratified+control") and not has_strata:
        raise ModelError(
            f"vr={vr!r} needs an exact fault-count pmf, which this "
            "population does not expose; use vr='control' or vr='none'"
        )
    if vr in ("control", "stratified+control") and not has_anchor:
        raise ModelError(
            f"vr={vr!r} needs an analytic control anchor, which this "
            "metric does not define; use vr='none'"
        )
    if vr == "antithetic" and not antithetic_ok:
        raise ModelError(
            "vr='antithetic' is only available for single-version metrics "
            "over Bernoulli populations with operational suite generation"
        )
    return vr


def _stratify(
    values: np.ndarray,
    controls: Optional[np.ndarray],
    strata: Optional[np.ndarray],
) -> Dict[int, BivariateMoments]:
    """Reduce a chunk's observations to per-stratum bivariate moments."""
    if strata is None:
        return {POOLED: moments_of(values, controls)}
    payload: Dict[int, BivariateMoments] = {}
    for stratum in np.unique(strata):
        selector = strata == stratum
        payload[int(stratum)] = moments_of(
            values[selector],
            None if controls is None else controls[selector],
        )
    return payload


def _wants_control(vr: str) -> bool:
    return vr in ("control", "stratified+control")


def _wants_strata(vr: str) -> bool:
    return vr in ("stratified", "stratified+control")


def _antithetic_suite_blocks(
    generator: OperationalSuiteGenerator, n_pairs: int, rng
) -> Tuple[np.ndarray, np.ndarray]:
    """A coupled pair of suite occurrence-count blocks (``u`` vs ``1 − u``)."""
    space_size = generator.space.size
    cdf = np.cumsum(generator.profile.probabilities)
    uniforms = as_generator(rng).random((n_pairs, generator.size))
    counts = []
    for block in (uniforms, 1.0 - uniforms):
        demands = inverse_cdf_indices(cdf, None, uniforms=block)
        rows = np.repeat(np.arange(n_pairs), generator.size)
        flat = np.bincount(
            rows * space_size + demands.reshape(-1),
            minlength=n_pairs * space_size,
        )
        counts.append(flat.reshape(n_pairs, space_size))
    return counts[0], counts[1]


def _antithetic_fault_blocks(
    population: BernoulliFaultPopulation, n_pairs: int, rng
) -> Tuple[np.ndarray, np.ndarray]:
    """A coupled pair of fault-matrix blocks (``u < p`` vs ``1 − u < p``)."""
    probs = population.presence_probs
    uniforms = as_generator(rng).random((n_pairs, probs.size))
    return uniforms < probs, (1.0 - uniforms) < probs


# ---------------------------------------------------------------------------
# chunk kernels — module level so process pools can pickle them
# ---------------------------------------------------------------------------


def version_pfd_chunk(
    population: VersionPopulation,
    generator,
    profile,
    plan: tuple,
    vr: str,
    task: Tuple[int, int, int],
) -> Tuple[int, int, Dict[int, BivariateMoments]]:
    """One chunk of post-test version-pfd replications.

    ``task`` is ``(index, count, seed)``; returns ``(index, replications,
    payload)``.  ``y`` is the tested version's pfd, ``c`` the same drawn
    version's *untested* pfd (exact mean ``E_Q[θ]``), the stratum its
    initial fault count.
    """
    from ..mc.batch import _apply_plan_batch, _plan_needs_counts

    index, count, seed = task
    universe = population.universe
    if vr == "antithetic":
        # the controller dispatches whole pairs; round a stray odd count
        # up so the reported replications always equal the work done
        n_pairs = max((count + 1) // 2, 1)
        streams = spawn_many(as_generator(seed), 3)
        faults_a, faults_b = _antithetic_fault_blocks(
            population, n_pairs, streams[0]
        )
        counts_a, counts_b = _antithetic_suite_blocks(
            generator, n_pairs, streams[1]
        )
        if _plan_needs_counts(plan):
            test_a, test_b = spawn_many(streams[2], 2)
            tested_a = _apply_plan_batch(plan, faults_a, counts_a, universe, test_a)
            tested_b = _apply_plan_batch(plan, faults_b, counts_b, universe, test_b)
        else:
            tested_a = _apply_plan_batch(plan, faults_a, counts_a > 0, universe)
            tested_b = _apply_plan_batch(plan, faults_b, counts_b > 0, universe)
        y_a = universe.failure_matrix(tested_a) @ profile.probabilities
        y_b = universe.failure_matrix(tested_b) @ profile.probabilities
        values = 0.5 * (y_a + y_b)
        return index, 2 * n_pairs, _stratify(values, None, None)
    streams = spawn_many(as_generator(seed), 3)
    faults = population.sample_fault_matrix(count, streams[0])
    if _plan_needs_counts(plan):
        suite_block = generator.sample_demand_counts(count, streams[1])
    else:
        suite_block = generator.sample_demand_masks(count, streams[1])
    tested = _apply_plan_batch(plan, faults, suite_block, universe, streams[2])
    values = universe.failure_matrix(tested) @ profile.probabilities
    controls = (
        universe.failure_matrix(faults) @ profile.probabilities
        if _wants_control(vr)
        else None
    )
    strata = faults.sum(axis=1) if _wants_strata(vr) else None
    return index, count, _stratify(values, controls, strata)


def untested_joint_pfd_chunk(
    population_a: VersionPopulation,
    population_b: VersionPopulation,
    profile,
    vr: str,
    task: Tuple[int, int, int],
) -> Tuple[int, int, Dict[int, BivariateMoments]]:
    """One chunk of untested joint-pfd replications — the eq. (6) estimand.

    ``y`` is the Rao-Blackwellised joint failure mass ``Q(A ∩ B)`` of an
    independently drawn version pair; ``c`` the pair's average *marginal*
    pfd (exact mean ``(E[Θ_A] + E[Θ_B]) / 2``); the stratum the pair's
    total fault count.
    """
    index, count, seed = task
    stream_a, stream_b = spawn_many(as_generator(seed), 2)
    faults_a = population_a.sample_fault_matrix(count, stream_a)
    faults_b = population_b.sample_fault_matrix(count, stream_b)
    fail_a = population_a.universe.failure_matrix(faults_a)
    fail_b = population_b.universe.failure_matrix(faults_b)
    values = (fail_a & fail_b) @ profile.probabilities
    controls = (
        0.5
        * (fail_a @ profile.probabilities + fail_b @ profile.probabilities)
        if _wants_control(vr)
        else None
    )
    strata = (
        faults_a.sum(axis=1) + faults_b.sum(axis=1)
        if _wants_strata(vr)
        else None
    )
    return index, count, _stratify(values, controls, strata)


def marginal_system_pfd_chunk(
    regime,
    population_a: VersionPopulation,
    population_b: VersionPopulation,
    profile,
    plan: tuple,
    vr: str,
    task: Tuple[int, int, int],
) -> Tuple[int, int, Dict[int, BivariateMoments]]:
    """One chunk of tested 1-out-of-2 system-pfd replications.

    The adaptive counterpart of the batch engine's eqs. (22)–(25) kernel
    (always Rao-Blackwellised): ``y`` is the post-test joint failure mass,
    ``c`` the *untested* joint failure mass of the same drawn pair (exact
    mean ``E_Q[θ_A θ_B]``), the stratum the pair's total fault count.
    """
    from ..mc.batch import _apply_plan_batch, _plan_needs_counts

    index, count, seed = task
    universe_a = population_a.universe
    universe_b = population_b.universe
    if _plan_needs_counts(plan):
        streams = spawn_many(as_generator(seed), 5)
        faults_a = population_a.sample_fault_matrix(count, streams[0])
        faults_b = population_b.sample_fault_matrix(count, streams[1])
        counts_a, counts_b = regime.draw_suite_counts(count, streams[2])
        tested_a = _apply_plan_batch(plan, faults_a, counts_a, universe_a, streams[3])
        tested_b = _apply_plan_batch(plan, faults_b, counts_b, universe_b, streams[4])
    else:
        streams = spawn_many(as_generator(seed), 3)
        faults_a = population_a.sample_fault_matrix(count, streams[0])
        faults_b = population_b.sample_fault_matrix(count, streams[1])
        masks_a, masks_b = regime.draw_suite_masks(count, streams[2])
        tested_a = _apply_plan_batch(plan, faults_a, masks_a, universe_a)
        tested_b = _apply_plan_batch(plan, faults_b, masks_b, universe_b)
    joint = universe_a.failure_matrix(tested_a) & universe_b.failure_matrix(
        tested_b
    )
    values = joint @ profile.probabilities
    controls = None
    if _wants_control(vr):
        untested = universe_a.failure_matrix(
            faults_a
        ) & universe_b.failure_matrix(faults_b)
        controls = untested @ profile.probabilities
    strata = (
        faults_a.sum(axis=1) + faults_b.sum(axis=1)
        if _wants_strata(vr)
        else None
    )
    return index, count, _stratify(values, controls, strata)


def campaign_pfd_chunk(
    campaign,
    population_a: VersionPopulation,
    population_b: VersionPopulation,
    profile,
    vr: str,
    task: Tuple[int, int, int],
) -> Tuple[int, int, Dict[int, BivariateMoments]]:
    """One chunk of whole-campaign final-system-pfd replications.

    ``y`` is the delivered system's pfd after every campaign activity ran
    on the fault-matrix blocks (mirroring
    :meth:`repro.extensions.DevelopmentCampaign.mean_final_system_pfd`'s
    randomness structure); ``c`` the *untested* joint pfd of the same
    drawn pair (exact mean ``E_Q[θ_A θ_B]``); the stratum the pair's total
    fault count.
    """
    index, count, seed = task
    streams = spawn_many(as_generator(seed), 3)
    faults_a = population_a.sample_fault_matrix(count, streams[0])
    faults_b = population_b.sample_fault_matrix(count, streams[1])
    universe_a = population_a.universe
    universe_b = population_b.universe
    controls = None
    if _wants_control(vr):
        untested = universe_a.failure_matrix(
            faults_a
        ) & universe_b.failure_matrix(faults_b)
        controls = untested @ profile.probabilities
    strata = (
        faults_a.sum(axis=1) + faults_b.sum(axis=1)
        if _wants_strata(vr)
        else None
    )
    evolved_a, evolved_b = faults_a, faults_b
    activity_streams = spawn_many(streams[2], len(campaign.activities))
    for activity, stream in zip(campaign.activities, activity_streams):
        evolved_a, evolved_b = activity.apply_batch(
            evolved_a, evolved_b, universe_a, universe_b, stream
        )
    joint = universe_a.failure_matrix(evolved_a) & universe_b.failure_matrix(
        evolved_b
    )
    values = joint @ profile.probabilities
    return index, count, _stratify(values, controls, strata)


def untested_joint_on_demand_chunk(
    population_a: VersionPopulation,
    population_b: VersionPopulation,
    demand: int,
    task: Tuple[int, int, int],
) -> Tuple[int, int, Tuple[int, int]]:
    """One chunk of *untested* joint-on-demand Bernoulli replications."""
    from ..mc.batch import _chunk_untested_joint

    index, count, seed = task
    successes, total = _chunk_untested_joint(
        population_a, population_b, demand, (count, seed)
    )
    return index, total, (successes, total)


def joint_on_demand_chunk(
    regime,
    population_a: VersionPopulation,
    population_b: VersionPopulation,
    demand: int,
    plan: tuple,
    task: Tuple[int, int, int],
) -> Tuple[int, int, Tuple[int, int]]:
    """One chunk of tested joint-on-demand Bernoulli replications.

    Proportion metrics accumulate exact integer ``(successes, count)``
    pairs; no variance-reduction transform applies (the Wilson interval
    is already the robust choice near zero).
    """
    from ..mc.batch import _chunk_tested_joint

    index, count, seed = task
    successes, total = _chunk_tested_joint(
        regime, population_a, population_b, demand, plan, (count, seed)
    )
    return index, total, (successes, total)
