"""Mergeable streaming accumulators for adaptive estimation.

The adaptive controller runs replications in *chunks* — across escalating
rounds and, within a round, across worker processes.  For its convergence
decisions to be trustworthy, chunk results must combine into exactly the
same estimate no matter how the chunks were scheduled.  The accumulators
here guarantee that with one structural idea: **a chunk's reduced moments
are stored under the chunk's index, and every statistic is computed by
folding the stored chunks in sorted-index order.**  Merging two
accumulators is a dictionary union, so it is exactly associative,
commutative and arrival-order invariant — bit-for-bit, not just up to
floating-point reordering — and therefore invariant in ``n_procs`` and in
the order rounds complete.

Three accumulator flavours cover the engine's estimators:

* :class:`ProportionAccumulator` — integer successes/trials per chunk
  (Bernoulli metrics, Wilson intervals);
* :class:`MeanAccumulator` — per-chunk bivariate Welford moments of the
  primary value ``y`` and an optional control value ``c``, reduced by Chan
  et al.'s pairwise merge;
* :class:`StratifiedAccumulator` — a :class:`MeanAccumulator` per stratum,
  reduced by post-stratification against exact stratum weights (with
  deterministic collapsing of undersampled strata).

Reduction produces an :class:`Estimate` — mean, standard error and
half-width at a requested confidence — which is also where the
variance-reduction arithmetic lives: control-variate adjustment against an
exactly-known anchor mean, and the stratified variance formula
``Σ w_h² s_h² / n_h``.

Degenerate data is handled explicitly: a zero-spread sample (every
observation identical — e.g. a stratum of versions that never fail) has a
zero half-width, never ``NaN``, and merged moments are clamped at the
floating-point floor so rounding can never produce a negative variance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..errors import ModelError
from ..mc.estimator import MeanEstimator, ProportionEstimator, _z_value

__all__ = [
    "BivariateMoments",
    "Estimate",
    "MeanAccumulator",
    "ProportionAccumulator",
    "StratifiedAccumulator",
    "estimator_half_width",
    "moments_of",
]


def estimator_half_width(estimator, confidence: float) -> float:
    """Confidence-interval half-width of a streaming estimator.

    The single definition shared by the adaptive controller and the legacy
    :func:`repro.mc.estimate_until` wrapper: Wilson for proportions, normal
    for means (via their ``half_width`` methods), ``inf`` when the
    estimator holds no observations.
    """
    if estimator.count == 0:
        return math.inf
    return estimator.half_width(confidence)


# ---------------------------------------------------------------------------
# moments
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BivariateMoments:
    """Welford moments of one sample of ``(y, c)`` observation pairs.

    ``m2_*`` are sums of squared deviations, ``cross`` the sum of
    co-deviations; all three merge by Chan et al.'s pairwise update.  A
    univariate sample simply carries ``c``-moments of zero.
    """

    count: int
    mean_y: float
    m2_y: float
    mean_c: float = 0.0
    m2_c: float = 0.0
    cross: float = 0.0

    def merge(self, other: "BivariateMoments") -> "BivariateMoments":
        """Moments of the concatenated samples (exact pairwise merge)."""
        if self.count == 0:
            return other
        if other.count == 0:
            return self
        total = self.count + other.count
        delta_y = other.mean_y - self.mean_y
        delta_c = other.mean_c - self.mean_c
        scale = self.count * other.count / total
        return BivariateMoments(
            count=total,
            mean_y=self.mean_y + delta_y * other.count / total,
            m2_y=self.m2_y + other.m2_y + delta_y * delta_y * scale,
            mean_c=self.mean_c + delta_c * other.count / total,
            m2_c=self.m2_c + other.m2_c + delta_c * delta_c * scale,
            cross=self.cross + other.cross + delta_y * delta_c * scale,
        )

    def var_y(self) -> float:
        """Unbiased sample variance of ``y`` (clamped at zero)."""
        if self.count < 2:
            return 0.0
        return max(self.m2_y, 0.0) / (self.count - 1)

    def to_payload(self) -> Tuple:
        return (
            int(self.count),
            float(self.mean_y),
            float(self.m2_y),
            float(self.mean_c),
            float(self.m2_c),
            float(self.cross),
        )

    @classmethod
    def from_payload(cls, payload) -> "BivariateMoments":
        count, mean_y, m2_y, mean_c, m2_c, cross = payload
        return cls(int(count), mean_y, m2_y, mean_c, m2_c, cross)


_EMPTY = BivariateMoments(0, 0.0, 0.0)

#: a control sample counts as degenerate when its per-observation standard
#: deviation is below this fraction of its mean's magnitude — genuinely
#: constant controls accumulate a few ulps of rounding noise in ``m2_c``
#: through chunk merges, and dividing by that noise would send the
#: regression coefficient β to garbage
_CONTROL_REL_TOL = 1e-7


def _control_usable(moments: BivariateMoments) -> bool:
    """True iff the control sample's spread is real, not rounding noise."""
    if moments.count < 2 or moments.m2_c <= 0.0:
        return False
    scale = max(abs(moments.mean_c), 1e-300)
    return moments.m2_c > moments.count * (_CONTROL_REL_TOL * scale) ** 2


def moments_of(
    values: np.ndarray, controls: Optional[np.ndarray] = None
) -> BivariateMoments:
    """Reduce raw observations (and optional controls) to moments."""
    y = np.asarray(values, dtype=np.float64).reshape(-1)
    if y.size == 0:
        return _EMPTY
    mean_y = float(y.mean())
    m2_y = float(np.square(y - mean_y).sum())
    if controls is None:
        return BivariateMoments(int(y.size), mean_y, m2_y)
    c = np.asarray(controls, dtype=np.float64).reshape(-1)
    if c.shape != y.shape:
        raise ModelError(
            f"controls shape {c.shape} does not match values shape {y.shape}"
        )
    mean_c = float(c.mean())
    return BivariateMoments(
        count=int(y.size),
        mean_y=mean_y,
        m2_y=m2_y,
        mean_c=mean_c,
        m2_c=float(np.square(c - mean_c).sum()),
        cross=float(((y - mean_y) * (c - mean_c)).sum()),
    )


# ---------------------------------------------------------------------------
# estimates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Estimate:
    """A point estimate with its uncertainty at a fixed confidence level.

    Attributes
    ----------
    mean:
        The (possibly variance-reduced) point estimate.
    std_error:
        Standard error of ``mean`` (0 for a degenerate, zero-spread
        sample; ``inf`` when the sample cannot support an interval yet).
    half_width:
        ``z(confidence) * std_error``.
    count:
        Observations behind the estimate (pairs count once under
        antithetic pairing; see the controller's replication accounting).
    confidence:
        The confidence level ``half_width`` was computed at.
    """

    mean: float
    std_error: float
    half_width: float
    count: int
    confidence: float

    def interval(self) -> Tuple[float, float]:
        """The symmetric confidence interval around the mean."""
        return self.mean - self.half_width, self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """True iff ``value`` lies inside :meth:`interval`."""
        low, high = self.interval()
        return low <= value <= high


def _estimate(
    mean: float, variance_of_mean: float, count: int, confidence: float
) -> Estimate:
    """Package a reduced mean/variance pair, NaN-proofing the edges."""
    if count == 0:
        return Estimate(math.nan, math.inf, math.inf, 0, confidence)
    variance_of_mean = max(float(variance_of_mean), 0.0)
    std_error = math.sqrt(variance_of_mean)
    return Estimate(
        mean=float(mean),
        std_error=std_error,
        half_width=_z_value(confidence) * std_error,
        count=int(count),
        confidence=confidence,
    )


# ---------------------------------------------------------------------------
# accumulators
# ---------------------------------------------------------------------------


class ProportionAccumulator:
    """Chunk-keyed Bernoulli accumulator (exact integer merges)."""

    def __init__(self) -> None:
        self._chunks: Dict[int, Tuple[int, int]] = {}

    def add_chunk(self, index: int, successes: int, count: int) -> None:
        """Record one chunk's ``(successes, count)`` under its index."""
        if count < 0 or successes < 0 or successes > count:
            raise ModelError(
                f"invalid chunk: successes={successes}, count={count}"
            )
        if index in self._chunks:
            raise ModelError(f"chunk index {index} already recorded")
        self._chunks[int(index)] = (int(successes), int(count))

    def merge(self, other: "ProportionAccumulator") -> None:
        """Union another accumulator's chunks into this one."""
        overlap = set(self._chunks) & set(other._chunks)
        if overlap:
            raise ModelError(
                f"cannot merge: chunk index(es) {sorted(overlap)} present "
                "in both accumulators"
            )
        self._chunks.update(other._chunks)

    @property
    def count(self) -> int:
        return sum(count for _s, count in self._chunks.values())

    @property
    def successes(self) -> int:
        return sum(successes for successes, _c in self._chunks.values())

    def to_estimator(self) -> ProportionEstimator:
        """The pooled sample as a standard :class:`ProportionEstimator`."""
        estimator = ProportionEstimator()
        estimator.add_many(self.successes, self.count)
        return estimator

    def estimate(self, confidence: float = 0.99) -> Estimate:
        """Wilson-interval estimate of the proportion.

        Integer totals make this trivially chunk-order and worker-count
        invariant; the Wilson half-width keeps degenerate all-failure or
        no-failure samples honest (small but nonzero width).
        """
        count = self.count
        if count == 0:
            return Estimate(math.nan, math.inf, math.inf, 0, confidence)
        estimator = self.to_estimator()
        half = estimator.half_width(confidence)
        return Estimate(
            mean=estimator.mean,
            std_error=estimator.std_error(),
            half_width=half,
            count=count,
            confidence=confidence,
        )


class MeanAccumulator:
    """Chunk-keyed bivariate Welford accumulator.

    Statistics fold the stored chunk moments in sorted-index order, so two
    accumulators holding the same chunks produce bit-identical estimates
    regardless of arrival order — the merge-law the adaptive controller's
    multi-round, multi-process execution relies on.
    """

    def __init__(self) -> None:
        self._chunks: Dict[int, BivariateMoments] = {}

    def add_chunk(
        self,
        index: int,
        values: np.ndarray | BivariateMoments,
        controls: Optional[np.ndarray] = None,
    ) -> None:
        """Record one chunk (raw observations or pre-reduced moments)."""
        if index in self._chunks:
            raise ModelError(f"chunk index {index} already recorded")
        if isinstance(values, BivariateMoments):
            if controls is not None:
                raise ModelError(
                    "controls cannot accompany pre-reduced moments"
                )
            moments = values
        else:
            moments = moments_of(values, controls)
        self._chunks[int(index)] = moments

    def merge(self, other: "MeanAccumulator") -> None:
        """Union another accumulator's chunks into this one."""
        overlap = set(self._chunks) & set(other._chunks)
        if overlap:
            raise ModelError(
                f"cannot merge: chunk index(es) {sorted(overlap)} present "
                "in both accumulators"
            )
        self._chunks.update(other._chunks)

    def reduced(self) -> BivariateMoments:
        """Moments of the pooled sample (deterministic fold order)."""
        total = _EMPTY
        for index in sorted(self._chunks):
            total = total.merge(self._chunks[index])
        return total

    @property
    def count(self) -> int:
        return sum(moments.count for moments in self._chunks.values())

    def to_estimator(self) -> MeanEstimator:
        """The pooled ``y`` sample as a standard :class:`MeanEstimator`."""
        reduced = self.reduced()
        estimator = MeanEstimator()
        estimator.add_moments(reduced.count, reduced.mean_y, reduced.m2_y)
        return estimator

    def estimate(
        self, confidence: float = 0.99, anchor: Optional[float] = None
    ) -> Estimate:
        """Normal-interval estimate of ``E[y]``.

        With ``anchor`` — the exactly-known mean of the control value
        ``c`` — the estimate is the control-variate regression estimator
        ``ȳ − β̂ (c̄ − anchor)`` with ``β̂ = cov(y, c) / var(c)``, whose
        variance-of-mean is the residual ``(var(y) − cov²/var(c)) / n``.
        A degenerate control sample (``var(c) = 0``) falls back to the
        plain mean, and a perfectly-correlated pair collapses the
        half-width to exactly zero — the d = 0 "testing changes nothing"
        regime, where the anchor *is* the answer.
        """
        reduced = self.reduced()
        if reduced.count == 0:
            return Estimate(math.nan, math.inf, math.inf, 0, confidence)
        n = reduced.count
        if anchor is None or not _control_usable(reduced):
            return _estimate(
                reduced.mean_y, reduced.var_y() / n, n, confidence
            )
        beta = reduced.cross / reduced.m2_c
        mean = reduced.mean_y - beta * (reduced.mean_c - float(anchor))
        if n < 2:
            return _estimate(mean, math.inf, n, confidence)
        residual_m2 = max(reduced.m2_y - reduced.cross * beta, 0.0)
        variance_of_mean = residual_m2 / (n - 1) / n
        return _estimate(mean, variance_of_mean, n, confidence)


class StratifiedAccumulator:
    """Per-stratum mean accumulators reduced by post-stratification.

    Replications are drawn from the population unconditionally and routed
    to the accumulator of their realised stratum (e.g. the version pair's
    initial fault count); the estimate recombines the per-stratum sample
    means with *exact* stratum weights (a Poisson-binomial pmf from
    :func:`repro.adaptive.variance.fault_count_pmf`), removing the
    between-strata component of the variance.  Post-stratification rather
    than true stratified sampling keeps the chunk kernels unconditional —
    and therefore exactly mergeable — at the cost of requiring every
    positive-weight stratum to be represented; undersampled strata are
    collapsed into their nearest sampled neighbour (by stratum key order)
    before reduction, a deterministic rule shared by every worker.
    """

    #: strata with fewer pooled observations than this are collapsed
    MIN_STRATUM = 2

    def __init__(self) -> None:
        self._strata: Dict[int, MeanAccumulator] = {}

    def add_chunk(
        self, index: int, payload: Mapping[int, BivariateMoments]
    ) -> None:
        """Record one chunk's per-stratum moments under its index."""
        for stratum, moments in payload.items():
            accumulator = self._strata.setdefault(
                int(stratum), MeanAccumulator()
            )
            accumulator.add_chunk(index, moments)

    def merge(self, other: "StratifiedAccumulator") -> None:
        """Union another accumulator's chunks into this one."""
        for stratum, accumulator in other._strata.items():
            mine = self._strata.setdefault(stratum, MeanAccumulator())
            mine.merge(accumulator)

    @property
    def count(self) -> int:
        return sum(acc.count for acc in self._strata.values())

    def _collapsed(
        self, weights: Mapping[int, float]
    ) -> Dict[int, Tuple[float, BivariateMoments]]:
        """Reduce to ``{group: (weight, moments)}`` with sparse strata
        folded into their nearest sampled neighbour.

        Every stratum named by ``weights`` participates (weight mass is
        never dropped); strata observed fewer than :data:`MIN_STRATUM`
        times donate their weight and observations to the closest key
        that meets the minimum.  If no stratum meets it, everything
        collapses into a single pooled group.
        """
        reduced = {
            stratum: acc.reduced() for stratum, acc in self._strata.items()
        }
        keys = sorted(set(weights) | set(reduced))
        anchors = [
            key
            for key in keys
            if reduced.get(key, _EMPTY).count >= self.MIN_STRATUM
        ]
        groups: Dict[int, Tuple[float, BivariateMoments]] = {}
        if not anchors:
            weight = float(sum(weights.values()))
            moments = _EMPTY
            for key in keys:
                moments = moments.merge(reduced.get(key, _EMPTY))
            return {keys[0] if keys else 0: (weight, moments)}
        for key in keys:
            nearest = min(anchors, key=lambda a: (abs(a - key), a))
            weight, moments = groups.get(nearest, (0.0, _EMPTY))
            groups[nearest] = (
                weight + float(weights.get(key, 0.0)),
                moments.merge(reduced.get(key, _EMPTY)),
            )
        return groups

    def estimate(
        self,
        weights: Mapping[int, float],
        confidence: float = 0.99,
        anchor: Optional[float] = None,
    ) -> Estimate:
        """Post-stratified estimate ``Σ w_h ȳ_h`` with exact weights.

        Variance is the standard ``Σ w_h² s_h² / n_h``; a degenerate
        stratum (zero spread — e.g. the zero-fault stratum, whose
        versions never fail) contributes exactly zero, and a single pooled
        group reproduces the plain estimator.  With ``anchor`` set, a
        common control-variate coefficient β — chosen to minimise the
        stratified variance — is applied within every group before
        recombination (the ``vr="stratified+control"`` path).
        """
        groups = self._collapsed(weights)
        count = sum(moments.count for _w, moments in groups.values())
        if count == 0 or any(
            moments.count == 0 for _w, moments in groups.values()
        ):
            return Estimate(math.nan, math.inf, math.inf, count, confidence)
        beta = 0.0
        if anchor is not None:
            # β* = Σ (w_h²/n_h) cov_h / Σ (w_h²/n_h) var_h(c), the
            # minimiser of the stratified variance of y − βc; groups whose
            # control is (numerically) constant carry no β information —
            # with fault-count strata and disjoint equal-mass regions the
            # control is *exactly* constant per stratum, so this guard is
            # load-bearing, not defensive
            numerator = 0.0
            denominator = 0.0
            for weight, moments in groups.values():
                if not _control_usable(moments):
                    continue
                factor = weight * weight / moments.count / (moments.count - 1)
                numerator += factor * moments.cross
                denominator += factor * moments.m2_c
            beta = numerator / denominator if denominator > 0.0 else 0.0
        mean = 0.0
        variance_of_mean = 0.0
        control_mean = 0.0
        for weight, moments in groups.values():
            mean += weight * moments.mean_y
            control_mean += weight * moments.mean_c
            if moments.count >= 2:
                m2 = moments.m2_y
                if beta != 0.0:
                    m2 = m2 - 2.0 * beta * moments.cross + beta * beta * moments.m2_c
                sample_var = max(m2, 0.0) / (moments.count - 1)
                variance_of_mean += (
                    weight * weight * sample_var / moments.count
                )
            # count == 1: zero observed spread contributes zero variance —
            # the degenerate-stratum rule; the collapse step keeps such
            # groups rare (only when *no* stratum reached MIN_STRATUM
            # twice over)
        if anchor is not None and beta != 0.0:
            mean -= beta * (control_mean - float(anchor))
        return _estimate(mean, variance_of_mean, count, confidence)
