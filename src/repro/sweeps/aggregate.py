"""Join stored sweep records into comparison tables.

Two shapes, matching how the paper's figures are read:

* the **summary table** — one line per stored point (id, seed, knobs,
  claim verdicts), the sweep-level analogue of the CLI's per-run summary;
* a **comparison table** for one experiment id — every stored run's result
  rows, concatenated, with ``seed`` and the knob values prepended as
  columns.  This is the long-form data behind a figure: e.g. sweep
  ``presence_prob`` over ``a2`` and the table holds one same-suite-excess
  curve per (seed, presence_prob) cell.

Rendering preserves the stored numbers bit-for-bit in ``json`` and ``csv``
formats (floats are emitted via ``repr``-stable JSON); ``text`` rounds for
the terminal like the single-run reporter does.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Sequence, Tuple

from ..errors import ModelError
from ..experiments.base import canonical_cell
from ..experiments.report import _format_table
from ..store import ResultStore
from ..store.records import canonical_json, record_result

__all__ = ["summary_table", "comparison_table", "render_table"]

Table = Tuple[List[str], List[List[object]]]


def _value_order(value: object) -> Tuple[int, object]:
    """A total order over knob values: numbers numerically, then strings,
    then everything else by canonical JSON (mixed-type axes stay sortable,
    and ``suite_size = [15, 25, 100]`` reports as 15, 25, 100 — not
    lexicographically as "100", "15", "25")."""
    if isinstance(value, bool):
        return (1, canonical_json(value))
    if isinstance(value, (int, float)):
        return (0, float(value))
    if isinstance(value, str):
        return (1, value)
    return (2, canonical_json(value))


def _sorted_records(records: Sequence[dict]) -> List[dict]:
    """Result-carrying records in deterministic report order.

    Identity-only records (no result payload) have nothing to report and
    are dropped; order is id, seed, version, then knob values (numeric
    knobs in numeric order).
    """
    return sorted(
        (record for record in records if "result" in record),
        key=lambda record: (
            record["experiment_id"],
            record["seed"],
            record["engine"],
            record["version"],
            [
                (name, _value_order(record["params"][name]))
                for name in sorted(record["params"])
            ],
        ),
    )


def _param_names(records: Sequence[dict]) -> List[str]:
    names: Dict[str, None] = {}
    for record in records:
        for name in sorted(record["params"]):
            names.setdefault(name, None)
    return list(names)


def _summary_entries(store: ResultStore) -> List[dict]:
    """Per-record summary entries: identity, claim counts, verdict.

    Backends exposing ``summary_rows`` (the SQLite store) compute these
    inside SQL — claim counting happens in the database and the result
    payloads never leave it.  Everything else falls back to a Python scan
    over ``records()``.  Both paths produce identical entries, so the
    rendered table is byte-for-byte backend-independent (the conformance
    suite asserts exactly that).
    """
    summary_rows = getattr(store, "summary_rows", None)
    if summary_rows is not None:
        return summary_rows()
    entries = []
    for record in store.records():
        if "result" not in record:
            continue
        claims = record["result"]["claims"]
        entries.append(
            {
                "experiment_id": record["experiment_id"],
                "seed": record["seed"],
                "fast": record["fast"],
                "engine": record["engine"],
                "version": record["version"],
                "params": record["params"],
                "held": sum(1 for claim in claims if claim["holds"]),
                "claims": len(claims),
                "passed": record["result"]["passed"],
            }
        )
    return entries


def summary_table(store: ResultStore) -> Table:
    """One row per stored point: identity, claim counts, verdict."""
    entries = sorted(
        _summary_entries(store),
        key=lambda entry: (
            entry["experiment_id"],
            entry["seed"],
            entry["engine"],
            entry["version"],
            [
                (name, _value_order(entry["params"][name]))
                for name in sorted(entry["params"])
            ],
        ),
    )
    if not entries:
        raise ModelError(f"store {store.path} has no records to aggregate")
    param_names = _param_names(entries)
    columns = (
        ["experiment", "seed", "fast", "engine", "version"]
        + param_names
        + ["claims held", "claims", "status"]
    )
    rows: List[List[object]] = []
    for entry in entries:
        rows.append(
            [
                entry["experiment_id"],
                entry["seed"],
                entry["fast"],
                entry["engine"],
                entry["version"],
            ]
            + [entry["params"].get(name, "") for name in param_names]
            + [
                entry["held"],
                entry["claims"],
                "PASS" if entry["passed"] else "FAIL",
            ]
        )
    return columns, rows


def comparison_table(store: ResultStore, experiment_id: str) -> Table:
    """All stored result rows for one id, keyed by seed and knob columns.

    Every stored run of ``experiment_id`` must share one table shape
    (identical result columns) — sweeping a knob that changes the shape is
    a modelling error worth failing loudly on.
    """
    records = _sorted_records(store.records(experiment_id))
    if not records:
        known = ", ".join(store.experiment_ids()) or "none"
        raise ModelError(
            f"store {store.path} has no records for {experiment_id!r}; "
            f"stored ids: {known}"
        )
    result_columns = list(records[0]["result"]["columns"])
    for record in records:
        if list(record["result"]["columns"]) != result_columns:
            raise ModelError(
                f"stored runs of {experiment_id!r} disagree on result "
                f"columns: {result_columns} vs {record['result']['columns']}"
            )
    param_names = _param_names(records)
    # a store can legally hold the same point computed by several package
    # versions or engines (both are part of the cache key); when it does,
    # the rows would be indistinguishable duplicates without those columns
    extra_names = [
        name
        for name in ("engine", "version")
        if len({record[name] for record in records}) > 1
    ]
    columns = ["seed"] + extra_names + param_names + result_columns
    rows: List[List[object]] = []
    for record in records:
        prefix = [record["seed"]]
        prefix += [record[name] for name in extra_names]
        prefix += [record["params"].get(name, "") for name in param_names]
        for row in record_result(record).rows:
            rows.append(prefix + list(row))
    return columns, rows


def render_table(table: Table, fmt: str = "text") -> str:
    """Render ``(columns, rows)`` as ``text``, ``csv`` or ``json``.

    ``csv``/``json`` carry floats in shortest-round-trip form, so numbers
    read back from either format equal the stored (and hence the original
    in-process) values bit-for-bit.
    """
    columns, rows = table
    if fmt == "text":
        return _format_table(columns, rows)
    if fmt == "json":
        # decoded rows may hold real NaN/inf again; canonical_cell restores
        # the tagged-object encoding so the output stays strict JSON
        payload = {
            "columns": columns,
            "rows": [[canonical_cell(cell) for cell in row] for row in rows],
        }
        return json.dumps(payload, indent=2, sort_keys=False, allow_nan=False)
    if fmt == "csv":
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(columns)
        for row in rows:
            writer.writerow(
                [repr(cell) if isinstance(cell, float) else cell for cell in row]
            )
        return buffer.getvalue().rstrip("\n")
    raise ModelError(
        f"unknown aggregate format {fmt!r}; known: text, csv, json"
    )
