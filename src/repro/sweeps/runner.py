"""Sweep execution: cache-aware fan-out of grid points over processes.

``Sweep(spec, store).run()`` partitions the grid into *cached* points
(their key is already in the store — served instantly, nothing recomputed)
and *pending* points, then executes the pending ones through the batch
engine's shared process fan-out layer (:func:`repro.mc.batch.run_tasks`).
Each completed point is appended to the store the moment it finishes, so a
sweep killed mid-flight resumes exactly where it stopped: re-running the
same command skips every point that reached disk.

Inside each point the experiment runs with the sweep's
:class:`~repro.experiments.base.EngineConfig` (``engine``/``n_jobs``)
installed, mirroring the single-run CLI.  Point-level workers
(``n_procs``) and chunk-level workers (``n_jobs``) compose; results are
bit-identical for any combination because every point derives its
randomness from its own ``(seed, fast, params)`` identity alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..errors import ModelError

# the package import (not .registry directly) so worker processes register
# the experiment modules before running their point
from ..experiments import run_experiment
from ..experiments.base import set_engine_config
from ..mc.batch import run_tasks
from ..store import ResultStore, make_record
from .spec import SweepPoint, SweepSpec

__all__ = ["Sweep", "SweepReport"]

# one sweep-point task: everything a worker process needs, all picklable
_PointTask = Tuple[str, int, bool, Tuple[Tuple[str, object], ...], str, int]


def _execute_point(task: _PointTask) -> dict:
    """Run one grid point and return its store record (worker kernel).

    Module level so process pools can pickle it.  Installs the sweep's
    engine configuration for the duration of the run — in a pool worker
    that process-global state is private to the worker; on the serial path
    the previous configuration is restored afterwards.
    """
    experiment_id, seed, fast, params, engine, n_jobs = task
    previous = set_engine_config(engine=engine, n_jobs=n_jobs)
    try:
        result = run_experiment(
            experiment_id, seed=seed, fast=fast, params=dict(params)
        )
    finally:
        set_engine_config(engine=previous.engine, n_jobs=previous.n_jobs)
    return make_record(
        experiment_id,
        seed=seed,
        fast=fast,
        params=dict(params),
        result=result,
        engine=engine,
    )


@dataclass
class SweepReport:
    """What one :meth:`Sweep.run` did, point by point."""

    total: int = 0
    executed: int = 0
    cached: int = 0
    #: cache keys of points whose stored result has failing claims
    failed_keys: List[str] = field(default_factory=list)
    #: (point, "cached" | "executed") in completion order
    outcomes: List[Tuple[SweepPoint, str]] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """True iff every point's claims held (cached points included)."""
        return not self.failed_keys

    def summary(self) -> str:
        """One-line machine-greppable totals, used by the CLI and CI smoke."""
        return (
            f"sweep: {self.total} points, {self.executed} executed, "
            f"{self.cached} cached, {len(self.failed_keys)} with failing "
            "claims"
        )


class Sweep:
    """A declarative grid bound to a result store and an engine config."""

    def __init__(
        self,
        spec: SweepSpec,
        store: ResultStore,
        engine: str = "auto",
        n_jobs: int = 1,
    ) -> None:
        if engine not in ("auto", "batch", "scalar"):
            raise ModelError(
                f"engine must be one of ('auto', 'batch', 'scalar'), got "
                f"{engine!r}"
            )
        if n_jobs < 1:
            raise ModelError(f"n_jobs must be >= 1, got {n_jobs}")
        self.spec = spec
        self.store = store
        self.engine = engine
        self.n_jobs = n_jobs

    def partition(self) -> Tuple[List[SweepPoint], List[SweepPoint]]:
        """Split the grid into ``(cached, pending)`` against the store.

        Only records carrying a result payload count as cache hits —
        identity-only records (``make_record(..., result=None)``) mark a
        point as known, not as computed, and are re-executed (the fresh
        record shadows them last-wins).
        """
        cached: List[SweepPoint] = []
        pending: List[SweepPoint] = []
        for point in self.spec.points():
            record = self.store.get(point.cache_key(engine=self.engine))
            is_hit = record is not None and "result" in record
            (cached if is_hit else pending).append(point)
        return cached, pending

    def run(
        self,
        n_procs: int = 1,
        progress: Optional[Callable[[SweepPoint, str], None]] = None,
    ) -> SweepReport:
        """Execute the grid, serving completed points from the store.

        Parameters
        ----------
        n_procs:
            Worker processes across sweep *points* (each point may itself
            shard replication chunks over ``n_jobs`` workers).
        progress:
            Optional ``(point, status)`` callback; status is ``"cached"``
            or ``"executed"``, invoked in completion order.
        """
        if n_procs < 1:
            raise ModelError(f"n_procs must be >= 1, got {n_procs}")
        cached, pending = self.partition()
        report = SweepReport(total=len(cached) + len(pending), cached=len(cached))
        for point in cached:
            key = point.cache_key(engine=self.engine)
            record = self.store.get(key)
            if not record["result"]["passed"]:
                report.failed_keys.append(key)
            report.outcomes.append((point, "cached"))
            if progress is not None:
                progress(point, "cached")
        if not pending:
            return report
        tasks = [
            (
                point.experiment_id,
                point.seed,
                point.fast,
                point.params,
                self.engine,
                self.n_jobs,
            )
            for point in pending
        ]
        point_by_key = {
            point.cache_key(engine=self.engine): point for point in pending
        }

        def persist(record: dict) -> None:
            # invoked in completion order (out of task order when
            # n_procs > 1), so the point is recovered from the record key
            point = point_by_key[record["key"]]
            self.store.put(record)
            report.executed += 1
            if not record["result"]["passed"]:
                report.failed_keys.append(record["key"])
            report.outcomes.append((point, "executed"))
            if progress is not None:
                progress(point, "executed")

        run_tasks(_execute_point, tasks, n_procs, on_result=persist)
        return report
