"""Sweep execution: cache-aware fan-out of grid points over processes.

``Sweep(spec, store).run()`` partitions the grid into *cached* points
(their key is already in the store — served instantly, nothing recomputed)
and *pending* points, then executes the pending ones through the batch
engine's shared process fan-out layer (:func:`repro.mc.batch.run_tasks`).
Each completed point is appended to the store the moment it finishes, so a
sweep killed mid-flight resumes exactly where it stopped: re-running the
same command skips every point that reached disk.

Inside each point the experiment runs with the sweep's
:class:`~repro.experiments.base.EngineConfig` (``engine``/``n_jobs``)
installed, mirroring the single-run CLI.  Point-level workers
(``n_procs``) and chunk-level workers (``n_jobs``) compose; results are
bit-identical for any combination because every point derives its
randomness from its own ``(seed, fast, params)`` identity alone.

A grid's ``[precision]`` table routes precision-capable experiments
through the adaptive engine (the target becomes each point's ``precision``
knob — part of its cache identity).  With ``budget_total`` set the sweep
runs **Neyman-style cross-point allocation**: a pilot pass (the target's
``initial`` replications per point, cached like any other point) estimates
each point's per-replication spread σ̂, the total budget is split across
points proportionally to σ̂ (:func:`allocate_budgets` — the equal-cost
Neyman optimum), and a final pass runs each point to its allocated budget.
Both passes are ordinary cached points, so an interrupted allocation run
resumes deterministically: the same pilot results reproduce the same
allocation, hence the same final-point identities.
"""

from __future__ import annotations

import math
import threading
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..errors import ModelError

# the package import (not .registry directly) so worker processes register
# the experiment modules before running their point
from ..experiments import run_experiment
from ..experiments.base import set_engine_config
from ..mc.batch import run_tasks
from ..obs import get_logger
from ..store import ResultStore, make_record
from .spec import SweepPoint, SweepSpec

__all__ = ["Sweep", "SweepReport", "allocate_budgets", "record_sigma"]

_log = get_logger("repro.sweeps")


def _log_point(point: SweepPoint, status: str, **fields: object) -> None:
    """One structured event per sweep point (``--log-level info``)."""
    if _log.enabled("info"):
        _log.info(
            "sweep.point",
            experiment_id=point.experiment_id,
            seed=point.seed,
            fast=point.fast,
            status=status,
            **fields,
        )

# one sweep-point task: everything a worker process needs, all picklable
_PointTask = Tuple[str, int, bool, Tuple[Tuple[str, object], ...], str, int]


def _execute_point(task: _PointTask) -> dict:
    """Run one grid point and return its store record (worker kernel).

    Module level so process pools can pickle it.  Installs the sweep's
    engine configuration for the duration of the run — in a pool worker
    that process-global state is private to the worker; on the serial path
    the previous configuration is restored afterwards.
    """
    experiment_id, seed, fast, params, engine, n_jobs = task
    previous = set_engine_config(engine=engine, n_jobs=n_jobs)
    try:
        result = run_experiment(
            experiment_id, seed=seed, fast=fast, params=dict(params)
        )
    finally:
        set_engine_config(engine=previous.engine, n_jobs=previous.n_jobs)
    return make_record(
        experiment_id,
        seed=seed,
        fast=fast,
        params=dict(params),
        result=result,
        engine=engine,
    )


def _record_metric_count(record: Optional[Mapping[str, object]]) -> int:
    """How many adaptive metrics a point's experiment runs (from its pilot)."""
    from ..adaptive.controller import iter_adaptive_runs

    if record is None:
        return 1
    result = record.get("result") or {}
    extra = result.get("extra") or {}
    count = sum(
        len(run["metrics"])
        for run in iter_adaptive_runs(extra.get("adaptive"))
    )
    return max(count, 1)


def record_sigma(record: Mapping[str, object]) -> float:
    """A point's per-replication spread σ̂ from its stored adaptive report.

    The largest per-observation standard deviation across the record's
    adaptive metrics (``std_error · √observations``) — the quantity Neyman
    allocation weighs points by.  Records without adaptive metadata (or
    with degenerate, zero-spread metrics) report 0.0 and receive only the
    floor allocation.
    """
    from ..adaptive.controller import iter_adaptive_runs

    result = record.get("result") or {}
    extra = result.get("extra") or {}
    sigma = 0.0
    for run in iter_adaptive_runs(extra.get("adaptive")):
        for metric in run["metrics"].values():
            std_error = float(metric.get("std_error", 0.0))
            observations = int(metric.get("observations", 0))
            if math.isfinite(std_error) and observations > 0:
                sigma = max(sigma, std_error * math.sqrt(observations))
    return sigma


def allocate_budgets(
    sigmas: Mapping[str, float], total: int, floor: int
) -> Dict[str, int]:
    """Split ``total`` replications across points proportionally to σ̂.

    The equal-cost Neyman optimum for minimising the summed variance of
    the point estimates: ``n_i ∝ σ̂_i``, with every point floored at
    ``floor`` (zero-spread pilots still deserve a verification budget) and
    the remainder after flooring distributed over the positive-σ̂ points.
    Deterministic: ties and rounding depend only on the sorted point keys.

    A ``total`` that cannot cover the floors is rejected loudly — the
    alternative (spending ``floor × n_points`` anyway) would silently
    exceed the caller's declared budget.
    """
    if total < 1:
        raise ModelError(f"total must be >= 1, got {total}")
    if floor < 1:
        raise ModelError(f"floor must be >= 1, got {floor}")
    keys = sorted(sigmas)
    if not keys:
        return {}
    if total < floor * len(keys):
        raise ModelError(
            f"budget total {total} cannot cover the per-point floor: "
            f"{len(keys)} points need at least {floor * len(keys)} "
            f"(floor {floor} each) — raise budget_total or lower the "
            "target's initial"
        )
    budgets = {key: floor for key in keys}
    remainder = total - floor * len(keys)
    if remainder <= 0:
        return budgets
    mass = sum(max(float(sigmas[key]), 0.0) for key in keys)
    if mass <= 0.0:
        # no spread information: split the remainder evenly
        share, spare = divmod(remainder, len(keys))
        for index, key in enumerate(keys):
            budgets[key] += share + (1 if index < spare else 0)
        return budgets
    allocated = 0
    for key in keys:
        extra = int(remainder * max(float(sigmas[key]), 0.0) / mass)
        budgets[key] += extra
        allocated += extra
    # hand rounding leftovers to the highest-spread points, key-ordered
    leftovers = remainder - allocated
    for key in sorted(keys, key=lambda k: (-float(sigmas[k]), k)):
        if leftovers <= 0:
            break
        budgets[key] += 1
        leftovers -= 1
    return budgets


@dataclass
class SweepReport:
    """What one :meth:`Sweep.run` did, point by point."""

    total: int = 0
    executed: int = 0
    cached: int = 0
    #: cache keys of points whose stored result has failing claims
    failed_keys: List[str] = field(default_factory=list)
    #: (point, "cached" | "executed") in completion order
    outcomes: List[Tuple[SweepPoint, str]] = field(default_factory=list)
    #: final per-point replication budgets of a Neyman allocation run,
    #: keyed by the *final-phase* cache key (empty otherwise)
    allocations: Dict[str, int] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """True iff every point's claims held (cached points included)."""
        return not self.failed_keys

    def summary(self) -> str:
        """One-line machine-greppable totals, used by the CLI and CI smoke."""
        return (
            f"sweep: {self.total} points, {self.executed} executed, "
            f"{self.cached} cached, {len(self.failed_keys)} with failing "
            "claims"
        )


class Sweep:
    """A declarative grid bound to a result store and an engine config."""

    def __init__(
        self,
        spec: SweepSpec,
        store: ResultStore,
        engine: str = "auto",
        n_jobs: int = 1,
    ) -> None:
        if engine not in ("auto", "batch", "compiled", "fastest", "scalar"):
            raise ModelError(
                "engine must be one of ('auto', 'batch', 'compiled', "
                f"'fastest', 'scalar'), got {engine!r}"
            )
        if n_jobs < 1:
            raise ModelError(f"n_jobs must be >= 1, got {n_jobs}")
        if engine in ("scalar", "compiled") and spec.precision is not None:
            raise ModelError(
                "a [precision] sweep runs on the batch kernels; "
                f"engine={engine!r} cannot be combined with it"
            )
        self.spec = spec
        self.store = store
        self.engine = engine
        self.n_jobs = n_jobs

    # -- precision plumbing -------------------------------------------------

    def _with_precision(
        self, point: SweepPoint, budget: Optional[int] = None
    ) -> SweepPoint:
        """The point with the sweep's precision knob pinned (if capable)."""
        plan = self.spec.precision
        if (
            plan is None
            or point.experiment_id not in self.spec.precision_experiments
        ):
            return point
        params = dict(point.params)
        params["precision"] = plan.knob(budget)
        return SweepPoint(
            experiment_id=point.experiment_id,
            seed=point.seed,
            fast=point.fast,
            params=tuple(sorted(params.items())),
        )

    def effective_points(self) -> List[SweepPoint]:
        """The grid as actually executed (default-budget precision knobs).

        Under Neyman allocation (``budget_total``) the *final* per-point
        budgets additionally depend on the pilot results, so this is the
        pilot-phase view of the grid.
        """
        plan = self.spec.precision
        if plan is None:
            return list(self.spec.points())
        budget = (
            plan.pilot_budget if plan.budget_total is not None else None
        )
        return [
            self._with_precision(point, budget)
            for point in self.spec.points()
        ]

    # -- execution ----------------------------------------------------------

    def partition(self) -> Tuple[List[SweepPoint], List[SweepPoint]]:
        """Split the grid into ``(cached, pending)`` against the store.

        Only records carrying a result payload count as cache hits —
        identity-only records (``make_record(..., result=None)``) mark a
        point as known, not as computed, and are re-executed (the fresh
        record shadows them last-wins).
        """
        return self._partition(self.effective_points())

    def _partition(
        self, points: List[SweepPoint]
    ) -> Tuple[List[SweepPoint], List[SweepPoint]]:
        cached: List[SweepPoint] = []
        pending: List[SweepPoint] = []
        for point in points:
            record = self.store.get(point.cache_key(engine=self.engine))
            is_hit = record is not None and "result" in record
            (cached if is_hit else pending).append(point)
        return cached, pending

    def _run_points(
        self,
        points: List[SweepPoint],
        report: SweepReport,
        n_procs: int,
        progress: Optional[Callable[[SweepPoint, str], None]],
    ) -> None:
        """Execute one batch of points into ``report`` (cache-aware)."""
        cached, pending = self._partition(points)
        report.total += len(cached) + len(pending)
        report.cached += len(cached)
        for point in cached:
            key = point.cache_key(engine=self.engine)
            record = self.store.get(key)
            if not record["result"]["passed"]:
                report.failed_keys.append(key)
            report.outcomes.append((point, "cached"))
            _log_point(point, "cached")
            if progress is not None:
                progress(point, "cached")
        if not pending:
            return
        tasks = [
            (
                point.experiment_id,
                point.seed,
                point.fast,
                point.params,
                self.engine,
                self.n_jobs,
            )
            for point in pending
        ]
        point_by_key = {
            point.cache_key(engine=self.engine): point for point in pending
        }

        def persist(record: dict) -> None:
            # invoked in completion order (out of task order when
            # n_procs > 1), so the point is recovered from the record key
            point = point_by_key[record["key"]]
            self.store.put(record)
            report.executed += 1
            if not record["result"]["passed"]:
                report.failed_keys.append(record["key"])
            report.outcomes.append((point, "executed"))
            _log_point(point, "executed", key=record["key"])
            if progress is not None:
                progress(point, "executed")

        run_tasks(_execute_point, tasks, n_procs, on_result=persist)

    def run_via_service(
        self,
        service,
        n_procs: int = 1,
        progress: Optional[Callable[[SweepPoint, str], None]] = None,
    ) -> SweepReport:
        """Execute the grid by fanning points through a running service.

        ``service`` is a base URL (or a
        :class:`~repro.service.ServiceClient`, whose address is reused —
        clients are not thread-safe, so each worker thread opens its own
        connection).  The cheap-path split happens twice: points whose
        records are already in the *local* store are served locally
        without a request, and points the *service* answers from its
        cache count as cached in the report.  Every record the service
        computes is mirrored into the local store, so a later offline
        ``aggregate`` or re-run needs no service at all.

        Points run with this sweep's ``engine``/``n_jobs`` (part of the
        cache identity / forwarded per request), and ``n_procs`` becomes
        the number of concurrent client threads — the service's own queue
        and worker pool bound actual compute concurrency.  A
        ``[precision]`` plan's per-point targets flow through like any
        other knob, but ``budget_total`` (Neyman allocation) needs the
        two-phase local driver and is rejected.
        """
        from ..service.client import ServiceClient

        if n_procs < 1:
            raise ModelError(f"n_procs must be >= 1, got {n_procs}")
        plan = self.spec.precision
        if plan is not None and plan.budget_total is not None:
            raise ModelError(
                "a [precision] budget_total (Neyman allocation) sweep "
                "needs the two-phase local driver; run without "
                "--via-service or drop budget_total"
            )
        if isinstance(service, ServiceClient):
            url = f"http://{service.host}:{service.port}"
        else:
            url = str(service)
        report = SweepReport()
        cached, pending = self._partition(self.effective_points())
        report.total = len(cached) + len(pending)
        report.cached = len(cached)
        for point in cached:
            key = point.cache_key(engine=self.engine)
            if not self.store.get(key)["result"]["passed"]:
                report.failed_keys.append(key)
            report.outcomes.append((point, "cached"))
            _log_point(point, "cached")
            if progress is not None:
                progress(point, "cached")
        if not pending:
            return report
        local = threading.local()

        def call(point: SweepPoint) -> dict:
            if not hasattr(local, "client"):
                local.client = ServiceClient(url)
            return local.client.run(
                point.experiment_id,
                seed=point.seed,
                fast=point.fast,
                params=point.params_dict or None,
                engine=self.engine,
                n_jobs=self.n_jobs,
            )

        workers = min(n_procs, len(pending))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(call, point): point for point in pending}
            for future in as_completed(futures):
                point = futures[future]
                job = future.result()  # ServiceError propagates loudly
                record = job["record"]
                self.store.put(record)
                status = "cached" if job.get("cached") else "executed"
                if status == "cached":
                    report.cached += 1
                else:
                    report.executed += 1
                if not record["result"]["passed"]:
                    report.failed_keys.append(record["key"])
                report.outcomes.append((point, status))
                _log_point(point, status, key=record["key"], via="service")
                if progress is not None:
                    progress(point, status)
        return report

    def run(
        self,
        n_procs: int = 1,
        progress: Optional[Callable[[SweepPoint, str], None]] = None,
    ) -> SweepReport:
        """Execute the grid, serving completed points from the store.

        Parameters
        ----------
        n_procs:
            Worker processes across sweep *points* (each point may itself
            shard replication chunks over ``n_jobs`` workers).
        progress:
            Optional ``(point, status)`` callback; status is ``"cached"``
            or ``"executed"``, invoked in completion order.

        With a ``[precision]`` plan carrying ``budget_total``, the run is
        two phases — pilot, then Neyman-allocated final — and the report
        counts both phases' points (``allocations`` records the final
        budgets).
        """
        if n_procs < 1:
            raise ModelError(f"n_procs must be >= 1, got {n_procs}")
        plan = self.spec.precision
        report = SweepReport()
        if plan is None or plan.budget_total is None:
            self._run_points(self.effective_points(), report, n_procs, progress)
            return report
        # phase 1 — pilot (plain points for precision-incapable experiments
        # run here once and are not revisited)
        pilot_points = self.effective_points()
        self._run_points(pilot_points, report, n_procs, progress)
        # phase 2 — Neyman-allocated final pass over the capable points
        capable = [
            point
            for point in pilot_points
            if point.experiment_id in self.spec.precision_experiments
        ]
        if not capable:
            return report
        sigmas = {}
        metric_counts = {}
        for point in capable:
            key = point.cache_key(engine=self.engine)
            record = self.store.get(key)
            sigmas[key] = record_sigma(record) if record is not None else 0.0
            metric_counts[key] = _record_metric_count(record)
        budgets = allocate_budgets(
            sigmas, total=plan.budget_total, floor=plan.target.initial
        )
        point_by_key = {
            point.cache_key(engine=self.engine): point for point in capable
        }
        final_points = []
        for key, budget in budgets.items():
            pilot_point = point_by_key[key]
            raw = SweepPoint(
                experiment_id=pilot_point.experiment_id,
                seed=pilot_point.seed,
                fast=pilot_point.fast,
                params=tuple(
                    (name, value)
                    for name, value in pilot_point.params
                    if name != "precision"
                ),
            )
            # the PrecisionTarget budget caps each *metric*; a point's
            # experiment may run several adaptive metrics (e11: 14, e01:
            # 3), so divide the point's allocation by the metric count
            # observed in its pilot — otherwise the sweep would spend up
            # to metric-count times the declared budget_total
            per_metric = max(budget // metric_counts[key], 1)
            final = self._with_precision(raw, per_metric)
            final_points.append(final)
            report.allocations[final.cache_key(engine=self.engine)] = budget
        self._run_points(final_points, report, n_procs, progress)
        return report
