"""Declarative sweep specifications and the TOML/JSON grid loader.

A sweep is a cartesian grid: *experiment ids* × *seeds* × *knob axes*.
Knob axes come in two scopes — shared axes applied to every experiment in
the sweep, and per-experiment axes merged on top — and every knob name is
validated against the runner's signature (:func:`repro.experiments.
runner_params`) when the spec is built, so a typo fails before any
replication budget is spent.

Grid file format (TOML; an identically-shaped JSON object also loads)::

    [sweep]
    experiments = ["a2", "x3"]    # required
    seeds = [0, 1, 2]             # optional, default [0]
    fast = true                   # optional, default true

    [params]                      # optional: axes for every experiment
    presence_prob = [0.2, 0.3]

    [experiment_params.x3]        # optional: extra axes for one id
    suite_size = [15, 25]

    [precision]                   # optional: adaptive replication control
    rel_hw = 0.05                 # PrecisionTarget fields (docs/adaptive.md)
    vr = "auto"
    budget_total = 100000         # optional: Neyman cross-point allocation

Scalar axis values are promoted to single-point axes, so ``fast = true``
style pinning works for knobs too.

A ``[precision]`` table pins the adaptive precision engine's target onto
every experiment in the sweep that exposes a ``precision`` knob (at least
one must).  With ``budget_total`` set, the sweep runs Neyman-style
cross-point budget allocation: a cheap pilot pass estimates each point's
per-replication spread, and the total replication budget is then split
across points proportionally to it — spending replications where the
estimated variance is highest (``pilot`` overrides the pilot budget per
point; default is the target's ``initial``).
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .._version import __version__
from ..adaptive.targets import PrecisionTarget
from ..errors import ModelError

# the package import (not .registry directly) so the experiment modules
# register themselves before any id validation happens
from ..experiments import get_runner, runner_params, validate_params
from ..store.records import cache_key

__all__ = ["PrecisionPlan", "SweepPoint", "SweepSpec", "load_grid"]


@dataclass(frozen=True)
class PrecisionPlan:
    """The sweep-level adaptive precision configuration.

    ``target`` is the validated :class:`~repro.adaptive.PrecisionTarget`
    every precision-capable point runs under (passed to runners as their
    ``precision`` knob mapping); ``budget_total``/``pilot`` configure the
    optional Neyman cross-point allocation pass (see
    :meth:`repro.sweeps.Sweep.run`).
    """

    target: PrecisionTarget
    budget_total: Optional[int] = None
    pilot: Optional[int] = None

    def __post_init__(self) -> None:
        if self.budget_total is not None and self.budget_total < 1:
            raise ModelError(
                f"budget_total must be >= 1, got {self.budget_total}"
            )
        if self.pilot is not None and self.pilot < 1:
            raise ModelError(f"pilot must be >= 1, got {self.pilot}")

    @property
    def pilot_budget(self) -> int:
        """Replications per point in the pilot pass (default: ``initial``)."""
        return self.pilot if self.pilot is not None else self.target.initial

    def knob(self, budget: Optional[int] = None) -> Dict[str, object]:
        """The ``precision`` knob mapping for one point.

        ``budget`` overrides the target's budget — how the Neyman pass
        pins per-point allocations (and the pilot pass its pilot budget).
        """
        params = self.target.to_params()
        if budget is not None:
            params["budget"] = int(budget)
            params["initial"] = min(self.target.initial, int(budget))
        return {
            name: value for name, value in params.items() if value is not None
        }

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, object]) -> "PrecisionPlan":
        """Parse a grid's ``[precision]`` table."""
        extras = {"budget_total", "pilot"}
        target = PrecisionTarget.from_mapping(
            {
                name: value
                for name, value in mapping.items()
                if name not in extras
            }
        )
        budget_total = mapping.get("budget_total")
        pilot = mapping.get("pilot")
        return cls(
            target=target,
            budget_total=None if budget_total is None else int(budget_total),
            pilot=None if pilot is None else int(pilot),
        )


@dataclass(frozen=True)
class SweepPoint:
    """One cell of the grid: an experiment id, a seed, and pinned knobs.

    ``params`` is stored as a name-sorted tuple of pairs so points are
    hashable and their identity is insertion-order independent.
    """

    experiment_id: str
    seed: int
    fast: bool
    params: Tuple[Tuple[str, object], ...] = ()

    @property
    def params_dict(self) -> Dict[str, object]:
        """The knobs as a plain dict."""
        return dict(self.params)

    def cache_key(
        self, version: str = __version__, engine: str = "auto"
    ) -> str:
        """The store key this point's record lives under.

        The engine is part of the identity — scalar and batch stream
        layouts differ, so their results must never share a cache slot.
        """
        return cache_key(
            self.experiment_id,
            self.seed,
            self.fast,
            self.params_dict,
            version,
            engine,
        )

    def label(self) -> str:
        """Human-readable point label for progress lines and reports."""
        parts = [self.experiment_id, f"seed={self.seed}"]
        parts += [f"{name}={value}" for name, value in self.params]
        if not self.fast:
            parts.append("full")
        return " ".join(parts)


def _as_axis(name: str, value: object) -> List[object]:
    """An axis as a non-empty, duplicate-free list of values (scalars
    become one point)."""
    if isinstance(value, (list, tuple)):
        values = list(value)
        if not values:
            raise ModelError(f"param axis {name!r} has no values")
        duplicates = [v for i, v in enumerate(values) if v in values[:i]]
        if duplicates:
            raise ModelError(
                f"param axis {name!r} has duplicate value(s): {duplicates}"
            )
        return values
    return [value]


class SweepSpec:
    """A validated sweep grid over experiment ids, seeds and knob axes."""

    def __init__(
        self,
        experiments: Sequence[str],
        seeds: Sequence[int] = (0,),
        fast: bool = True,
        params: Optional[Mapping[str, object]] = None,
        experiment_params: Optional[Mapping[str, Mapping[str, object]]] = None,
        precision: Optional[object] = None,
    ) -> None:
        experiments = list(experiments)
        if not experiments:
            raise ModelError("a sweep needs at least one experiment id")
        duplicates = sorted(
            {eid for eid in experiments if experiments.count(eid) > 1}
        )
        if duplicates:
            raise ModelError(
                f"experiment id(s) listed more than once: {duplicates}"
            )
        seeds = [int(seed) for seed in seeds]
        if not seeds:
            raise ModelError("a sweep needs at least one seed")
        duplicate_seeds = sorted({s for s in seeds if seeds.count(s) > 1})
        if duplicate_seeds:
            raise ModelError(
                f"seed(s) listed more than once: {duplicate_seeds}"
            )
        experiment_params = dict(experiment_params or {})
        unknown_scopes = sorted(
            set(experiment_params) - set(experiments)
        )
        if unknown_scopes:
            raise ModelError(
                "experiment_params given for id(s) not in the sweep: "
                f"{unknown_scopes}"
            )
        shared_axes = {
            str(name): _as_axis(name, value)
            for name, value in (params or {}).items()
        }
        self._axes_by_experiment: Dict[str, Dict[str, List[object]]] = {}
        for experiment_id in experiments:
            get_runner(experiment_id)  # raises for unknown ids, listing known
            axes = dict(shared_axes)
            for name, value in (experiment_params.get(experiment_id) or {}).items():
                axes[str(name)] = _as_axis(name, value)
            validate_params(experiment_id, {name: None for name in axes})
            self._axes_by_experiment[experiment_id] = axes
        self.experiments = experiments
        self.seeds = seeds
        self.fast = bool(fast)
        if precision is None or isinstance(precision, PrecisionPlan):
            self.precision = precision
        else:
            self.precision = PrecisionPlan.from_mapping(precision)
        self.precision_experiments: Tuple[str, ...] = ()
        if self.precision is not None:
            capable = tuple(
                eid
                for eid in experiments
                if "precision" in runner_params(eid)
            )
            if not capable:
                raise ModelError(
                    "[precision] given but no experiment in the sweep has "
                    f"a 'precision' knob: {experiments}"
                )
            if any(
                "precision" in self._axes_by_experiment[eid]
                for eid in capable
            ):
                raise ModelError(
                    "'precision' cannot be both a [precision] table and an "
                    "explicit param axis"
                )
            self.precision_experiments = capable

    def axes(self, experiment_id: str) -> Dict[str, List[object]]:
        """The resolved knob axes for one experiment (copy)."""
        return {
            name: list(values)
            for name, values in self._axes_by_experiment[experiment_id].items()
        }

    def points(self) -> List[SweepPoint]:
        """Every grid cell, in deterministic order.

        Experiments in given order; within one experiment, seeds vary
        slowest, then knob axes in sorted-name order.
        """
        out: List[SweepPoint] = []
        for experiment_id in self.experiments:
            axes = self._axes_by_experiment[experiment_id]
            names = sorted(axes)
            for seed in self.seeds:
                for values in itertools.product(*(axes[name] for name in names)):
                    out.append(
                        SweepPoint(
                            experiment_id=experiment_id,
                            seed=seed,
                            fast=self.fast,
                            params=tuple(zip(names, values)),
                        )
                    )
        return out

    def __len__(self) -> int:
        return len(self.points())


def _load_mapping(path: Path) -> Mapping[str, object]:
    if path.suffix == ".json":
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as error:
            raise ModelError(f"invalid JSON grid {path}: {error}") from None
    try:
        import tomllib
    except ImportError:  # Python 3.10: stdlib has no TOML parser
        raise ModelError(
            f"cannot read TOML grid {path}: this Python has no tomllib "
            "(needs 3.11+); use an equivalent .json grid instead"
        ) from None
    try:
        with open(path, "rb") as handle:
            return tomllib.load(handle)
    except tomllib.TOMLDecodeError as error:
        raise ModelError(f"invalid TOML grid {path}: {error}") from None


def load_grid(path) -> SweepSpec:
    """Load and validate a sweep grid file (``.toml`` or ``.json``).

    Raises
    ------
    ModelError
        For a missing file, a parse error, a missing/malformed ``[sweep]``
        table, unknown experiment ids, or knobs no runner accepts.
    """
    path = Path(path)
    if not path.exists():
        raise ModelError(f"grid file not found: {path}")
    data = _load_mapping(path)
    if not isinstance(data, Mapping) or "sweep" not in data:
        raise ModelError(f"grid {path} has no [sweep] table")
    sweep = data["sweep"]
    if not isinstance(sweep, Mapping):
        raise ModelError(f"grid {path}: [sweep] must be a table")
    known_top = {"sweep", "params", "experiment_params", "precision"}
    stray = sorted(set(data) - known_top)
    if stray:
        raise ModelError(
            f"grid {path} has unknown table(s): {stray} (known: "
            f"{sorted(known_top)})"
        )
    known_sweep = {"experiments", "seeds", "fast"}
    stray = sorted(set(sweep) - known_sweep)
    if stray:
        raise ModelError(
            f"grid {path}: unknown [sweep] key(s): {stray} (known: "
            f"{sorted(known_sweep)})"
        )
    experiments = sweep.get("experiments")
    if not isinstance(experiments, list) or not all(
        isinstance(eid, str) for eid in experiments
    ):
        raise ModelError(
            f"grid {path}: [sweep].experiments must be a list of id strings"
        )
    seeds = sweep.get("seeds", [0])
    if not isinstance(seeds, list) or not all(
        isinstance(seed, int) and not isinstance(seed, bool) for seed in seeds
    ):
        raise ModelError(f"grid {path}: [sweep].seeds must be a list of ints")
    fast = sweep.get("fast", True)
    if not isinstance(fast, bool):
        raise ModelError(f"grid {path}: [sweep].fast must be a boolean")
    params = data.get("params", {})
    if not isinstance(params, Mapping):
        raise ModelError(f"grid {path}: [params] must be a table")
    experiment_params = data.get("experiment_params", {})
    if not isinstance(experiment_params, Mapping) or not all(
        isinstance(table, Mapping) for table in experiment_params.values()
    ):
        raise ModelError(
            f"grid {path}: [experiment_params.<id>] entries must be tables"
        )
    precision = data.get("precision")
    if precision is not None and not isinstance(precision, Mapping):
        raise ModelError(f"grid {path}: [precision] must be a table")
    return SweepSpec(
        experiments=experiments,
        seeds=seeds,
        fast=fast,
        params=params,
        experiment_params=experiment_params,
        precision=precision,
    )
