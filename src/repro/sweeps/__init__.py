"""Declarative parameter sweeps over the experiment catalog.

The sweep layer turns one-shot ``(seed, fast)`` experiment invocations
into resumable grid studies: a :class:`SweepSpec` enumerates experiment
ids × seeds × knob axes, :class:`Sweep` fans the grid out over worker
processes (reusing the batch engine's task layer), and every completed
point is persisted to a :class:`~repro.store.ResultStore` keyed by content
hash — re-runs are cache hits, interrupted sweeps resume where they
stopped, and :mod:`repro.sweeps.aggregate` joins the stored records into
the comparison tables behind the paper's figures.

>>> from repro.sweeps import Sweep, SweepSpec
>>> from repro.store import ResultStore
>>> spec = SweepSpec(experiments=["a4", "a5"], seeds=[0, 1])
>>> sweep = Sweep(spec, ResultStore("results"))      # doctest: +SKIP
>>> report = sweep.run(n_procs=2)                    # doctest: +SKIP
>>> report.summary()                                 # doctest: +SKIP
'sweep: 4 points, 4 executed, 0 cached, 0 with failing claims'

Command-line counterpart::

    python -m repro.experiments sweep --grid grid.toml --out results/
    python -m repro.experiments aggregate --store results/ --experiment a2
"""

from .aggregate import comparison_table, render_table, summary_table
from .runner import Sweep, SweepReport, allocate_budgets, record_sigma
from .spec import PrecisionPlan, SweepPoint, SweepSpec, load_grid

__all__ = [
    "Sweep",
    "SweepReport",
    "SweepPoint",
    "SweepSpec",
    "PrecisionPlan",
    "load_grid",
    "allocate_budgets",
    "record_sigma",
    "comparison_table",
    "summary_table",
    "render_table",
]
