"""Closed forms for Bernoulli populations under i.i.d. operational suites.

Setting: a :class:`~repro.populations.BernoulliFaultPopulation` (fault ``f``
present with probability ``p_f``) tested with suites of ``n`` demands drawn
i.i.d. from the usage profile ``Q`` (an
:class:`~repro.testing.OperationalSuiteGenerator`).

Let ``Z_f = 1{suite misses region R_f}``; then ``P(Z_f = 1 for all f in H) =
(1 − Q(∪_{f∈H} R_f))ⁿ`` for any fault set ``H``.  A tested random version
fails on ``x`` iff some fault covering ``x`` is present *and* survives, so
with ``G_x`` the set of faults covering ``x``::

    ξ(x, T) = 1 − Π_{f∈G_x} (1 − p_f Z_f)

Expanding the product and taking expectations over the suite gives, for any
per-fault coefficients ``c_f`` (inclusion–exclusion over subsets ``H``)::

    E_T[ Π_{f∈G_x} (1 − c_f Z_f) ]
        = Σ_{H ⊆ G_x} Π_{f∈H} (−c_f) · (1 − Q(R_H))ⁿ

Three choices of ``c_f`` give every moment the paper's results need:

* ``c_f = p_f``                        → ``ζ(x) = 1 − E[Π]``        (eq. 14)
* ``c_f = 2 p_f − p_f²``               → ``E_T[ξ(x,T)²]``           (eq. 20)
* ``c_f = p_f^A + p_f^B − p_f^A p_f^B`` → ``E_T[ξ_A ξ_B]``          (eq. 21)

(the last two via ``(1 − a Z)(1 − b Z) = 1 − (a + b − ab) Z`` for binary
``Z``).  Cost is ``O(2^{|G_x|})`` per demand — exponential only in the
number of faults covering a single demand, which generators keep small.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import Sequence

import numpy as np

from ..demand import UsageProfile
from ..errors import ModelError
from ..faults import FaultUniverse
from ..populations import BernoulliFaultPopulation

__all__ = ["suite_miss_probability", "BernoulliExactEngine"]

_MAX_COVER = 22


def suite_miss_probability(
    profile: UsageProfile, region: Sequence[int] | np.ndarray, n_tests: int
) -> float:
    """``P(an n-demand i.i.d. suite misses the region) = (1 − Q(R))ⁿ``."""
    if n_tests < 0:
        raise ModelError(f"n_tests must be >= 0, got {n_tests}")
    mass = profile.mass_of(region)
    return float((1.0 - mass) ** n_tests)


class BernoulliExactEngine(object):
    """Exact suite-moment computations for one fault universe and profile.

    Parameters
    ----------
    universe:
        The fault universe shared by the populations of interest.
    profile:
        The usage profile ``Q`` from which suites draw demands i.i.d. and
        on which marginal quantities integrate.

    Notes
    -----
    The engine precomputes, per demand, the list of covering faults, and
    evaluates the inclusion–exclusion sum with an explicit subset walk.
    Demands covered by more than ``max_cover`` faults raise
    :class:`ModelError` — reformulate the model (fewer overlapping faults)
    or use Monte Carlo for such structures.
    """

    def __init__(
        self,
        universe: FaultUniverse,
        profile: UsageProfile,
        max_cover: int = _MAX_COVER,
    ) -> None:
        universe.space.require_same(profile.space)
        self._universe = universe
        self._profile = profile
        self._max_cover = max_cover
        coverage = universe.coverage
        self._covers = [
            np.flatnonzero(coverage[:, x]).astype(np.int64)
            for x in range(universe.space.size)
        ]
        self._region_masks = coverage.copy()

    @property
    def universe(self) -> FaultUniverse:
        """The fault universe the engine analyses."""
        return self._universe

    @property
    def profile(self) -> UsageProfile:
        """The usage profile driving suite draws and marginals."""
        return self._profile

    def _expected_product(
        self, coefficients: np.ndarray, n_tests: int
    ) -> np.ndarray:
        """``E_T[Π_{f∈G_x}(1 − c_f Z_f)]`` per demand, for coefficient vector ``c``.

        Faults with zero coefficient are skipped (their factor is 1).
        """
        if n_tests < 0:
            raise ModelError(f"n_tests must be >= 0, got {n_tests}")
        size = self._universe.space.size
        probs = self._profile.probabilities
        out = np.ones(size, dtype=np.float64)
        for x in range(size):
            cover = self._covers[x]
            cover = cover[coefficients[cover] != 0.0]
            k = cover.size
            if k == 0:
                continue
            if k > self._max_cover:
                raise ModelError(
                    f"demand {x} is covered by {k} faults with non-zero "
                    f"coefficients; exceeds max_cover={self._max_cover}"
                )
            masks = self._region_masks[cover]
            coeffs = coefficients[cover]
            total = 0.0
            for bits in range(1 << k):
                if bits == 0:
                    total += 1.0
                    continue
                chosen = [i for i in range(k) if bits >> i & 1]
                union = masks[chosen[0]].copy()
                sign_coeff = -coeffs[chosen[0]]
                for i in chosen[1:]:
                    union |= masks[i]
                    sign_coeff *= -coeffs[i]
                miss = (1.0 - float(probs[union].sum())) ** n_tests
                total += sign_coeff * miss
            out[x] = total
        return out

    # ------------------------------------------------------------------
    # per-demand moments
    # ------------------------------------------------------------------
    def zeta(
        self, population: BernoulliFaultPopulation, n_tests: int
    ) -> np.ndarray:
        """Exact ``ζ(x)`` after an ``n_tests``-demand operational suite."""
        self._check_population(population)
        product = self._expected_product(population.presence_probs, n_tests)
        return np.clip(1.0 - product, 0.0, 1.0)

    def xi_second_moment(
        self, population: BernoulliFaultPopulation, n_tests: int
    ) -> np.ndarray:
        """Exact ``E_T[ξ(x,T)²]`` — the same-suite joint probability (eq. (20))."""
        self._check_population(population)
        p = population.presence_probs
        first = self._expected_product(p, n_tests)
        second = self._expected_product(2.0 * p - p**2, n_tests)
        return np.clip(1.0 - 2.0 * first + second, 0.0, 1.0)

    def xi_variance(
        self, population: BernoulliFaultPopulation, n_tests: int
    ) -> np.ndarray:
        """Exact ``Var_T(ξ(x,T))`` — the same-suite dependence excess."""
        zeta = self.zeta(population, n_tests)
        second = self.xi_second_moment(population, n_tests)
        return np.maximum(second - zeta**2, 0.0)

    def xi_cross_moment(
        self,
        population_a: BernoulliFaultPopulation,
        population_b: BernoulliFaultPopulation,
        n_tests: int,
    ) -> np.ndarray:
        """Exact ``E_T[ξ_A(x,T) ξ_B(x,T)]`` under one shared suite (eq. (21))."""
        self._check_population(population_a)
        self._check_population(population_b)
        pa = population_a.presence_probs
        pb = population_b.presence_probs
        first_a = self._expected_product(pa, n_tests)
        first_b = self._expected_product(pb, n_tests)
        mixed = self._expected_product(pa + pb - pa * pb, n_tests)
        return np.clip(1.0 - first_a - first_b + mixed, 0.0, 1.0)

    def xi_power_moment(
        self,
        population: BernoulliFaultPopulation,
        n_tests: int,
        power: int,
    ) -> np.ndarray:
        """Exact ``E_T[ξ(x,T)^k]`` — the ``k``-version same-suite joint.

        Generalises eq. (20) to a 1-out-of-``k`` system whose ``k`` channels
        are all drawn from this population and tested on one shared suite:
        conditionally on the suite the channels fail independently with
        probability ``ξ(x,t)`` each, so the joint is the ``k``-th moment of
        ``ξ`` over the suite measure.  Uses the binomial expansion
        ``(1-P)^k`` with ``E[P^j]`` evaluated via per-fault coefficients
        ``1 − (1−p_f)^j`` (since ``Z_f`` is binary).
        """
        if power < 1:
            raise ModelError(f"power must be >= 1, got {power}")
        self._check_population(population)
        p = population.presence_probs
        total = np.zeros(self._universe.space.size, dtype=np.float64)
        for j in range(power + 1):
            coefficients = 1.0 - (1.0 - p) ** j
            term = self._expected_product(coefficients, n_tests)
            total += comb(power, j) * (-1.0) ** j * term
        return np.clip(total, 0.0, 1.0)

    def xi_covariance(
        self,
        population_a: BernoulliFaultPopulation,
        population_b: BernoulliFaultPopulation,
        n_tests: int,
    ) -> np.ndarray:
        """Exact ``Cov_T(ξ_A(x,T), ξ_B(x,T))`` per demand — either sign."""
        cross = self.xi_cross_moment(population_a, population_b, n_tests)
        zeta_a = self.zeta(population_a, n_tests)
        zeta_b = self.zeta(population_b, n_tests)
        return cross - zeta_a * zeta_b

    # ------------------------------------------------------------------
    # marginal (system-level) quantities: eqs. (22)-(25)
    # ------------------------------------------------------------------
    def version_pfd(
        self, population: BernoulliFaultPopulation, n_tests: int
    ) -> float:
        """``E_Q[ζ(X)]`` — mean post-test pfd of one tested version."""
        return self._profile.expectation(self.zeta(population, n_tests))

    def system_pfd_independent_suites(
        self,
        population_a: BernoulliFaultPopulation,
        n_tests: int,
        population_b: BernoulliFaultPopulation | None = None,
    ) -> float:
        """Eq. (22)/(24): system pfd with independently drawn suites."""
        population_b = population_b if population_b is not None else population_a
        zeta_a = self.zeta(population_a, n_tests)
        zeta_b = (
            zeta_a
            if population_b is population_a
            else self.zeta(population_b, n_tests)
        )
        return self._profile.expectation(zeta_a * zeta_b)

    def system_pfd_same_suite(
        self,
        population_a: BernoulliFaultPopulation,
        n_tests: int,
        population_b: BernoulliFaultPopulation | None = None,
    ) -> float:
        """Eq. (23)/(25): system pfd with one shared suite."""
        population_b = population_b if population_b is not None else population_a
        if population_b is population_a:
            joint = self.xi_second_moment(population_a, n_tests)
        else:
            joint = self.xi_cross_moment(population_a, population_b, n_tests)
        return self._profile.expectation(joint)

    def system_pfd_same_suite_n_versions(
        self,
        population: BernoulliFaultPopulation,
        n_tests: int,
        n_versions: int,
    ) -> float:
        """Marginal 1-out-of-``n`` system pfd under one shared suite.

        ``E_Q[E_T[ξ(X,T)^n]]`` — the n-channel generalisation of eq. (23).
        """
        return self._profile.expectation(
            self.xi_power_moment(population, n_tests, n_versions)
        )

    def system_pfd_independent_suites_n_versions(
        self,
        population: BernoulliFaultPopulation,
        n_tests: int,
        n_versions: int,
    ) -> float:
        """Marginal 1-out-of-``n`` system pfd with per-channel suites.

        ``E_Q[ζ(X)^n]`` — the n-channel generalisation of eq. (22).
        """
        if n_versions < 1:
            raise ModelError(f"n_versions must be >= 1, got {n_versions}")
        zeta = self.zeta(population, n_tests)
        return self._profile.expectation(zeta**n_versions)

    def _check_population(self, population: BernoulliFaultPopulation) -> None:
        if population.universe is not self._universe:
            raise ModelError(
                "population is defined over a different fault universe"
            )
