"""Exact analytics.

Two independent exact engines validate the whole stack:

* :mod:`repro.analytic.enumeration` — brute-force summation of the paper's
  defining expectations (eq. (15) and friends) over finitely enumerable
  populations and suite measures.  It deliberately does *not* use the
  paper's derived formulas, so agreement with :mod:`repro.core` confirms
  the derivations (16)–(25) as implemented.
* :mod:`repro.analytic.bernoulli_exact` — closed forms for Bernoulli fault
  populations under i.i.d. operational suites, via inclusion–exclusion
  over the faults covering each demand.  Polynomial in everything except
  the per-demand fault cover (exponential there, fine for sparse covers).

:mod:`repro.analytic.moments` supplies the discrete moment helpers both use.
"""

from .moments import weighted_cov, weighted_mean, weighted_var
from .enumeration import (
    exact_joint_per_demand,
    exact_marginal_system_pfd,
    exact_zeta,
)
from .bernoulli_exact import (
    BernoulliExactEngine,
    suite_miss_probability,
)

__all__ = [
    "weighted_mean",
    "weighted_var",
    "weighted_cov",
    "exact_zeta",
    "exact_joint_per_demand",
    "exact_marginal_system_pfd",
    "BernoulliExactEngine",
    "suite_miss_probability",
]
