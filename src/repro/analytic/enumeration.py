"""Brute-force exact enumeration of the paper's defining expectations.

For a finitely enumerable population (``FinitePopulation``) and suite
measure (``EnumerableSuiteGenerator`` or any generator implementing
``enumerate``), the probability of simultaneous failure on a demand is the
literal quadruple sum of eq. (15)::

    P(both fail on x) = Σ_π₁ Σ_π₂ Σ_t₁ Σ_t₂
        υ(π₁,x,t₁) υ(π₂,x,t₂) S₁(π₁) S₂(π₂) M₁(t₁) M₂(t₂)

with the regime deciding how ``(t₁, t₂)`` are coupled: independent draws
(product measure), one shared draw (diagonal measure), or draws from two
different measures.  This module computes those sums *directly from score
functions* — no use of the ζ/ξ shortcuts — so it provides ground truth
against which the derived results (16)–(25) in :mod:`repro.core` are tested.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..demand import UsageProfile
from ..errors import NotEnumerableError
from ..populations import VersionPopulation
from ..testing import SuiteGenerator, TestSuite, apply_testing
from ..versions import Version
from ..core.regimes import (
    ForcedTestingDiversity,
    IndependentSuites,
    SameSuite,
    TestingRegime,
)

__all__ = ["exact_zeta", "exact_joint_per_demand", "exact_marginal_system_pfd"]


def _enumerate_population(
    population: VersionPopulation,
) -> List[Tuple[Version, float]]:
    pairs = list(population.enumerate())
    if not pairs:
        raise NotEnumerableError("population enumeration produced no support")
    return pairs


def _enumerate_suites(generator: SuiteGenerator) -> List[Tuple[TestSuite, float]]:
    pairs = list(generator.enumerate())
    if not pairs:
        raise NotEnumerableError("suite enumeration produced no support")
    return pairs


def _tested_masks(
    population: VersionPopulation, generator: SuiteGenerator
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Post-test failure masks for every (version, suite) support pair.

    Returns ``(masks, version_probs, suite_probs)`` where ``masks`` has
    shape ``[n_versions, n_suites, n_demands]`` — small by construction
    since enumeration is for ground-truth models.
    """
    version_pairs = _enumerate_population(population)
    suite_pairs = _enumerate_suites(generator)
    size = population.space.size
    masks = np.zeros((len(version_pairs), len(suite_pairs), size), dtype=np.float64)
    for i, (version, _) in enumerate(version_pairs):
        for j, (suite, _) in enumerate(suite_pairs):
            outcome = apply_testing(version, suite)
            masks[i, j] = outcome.after.failure_mask
    version_probs = np.array([p for _, p in version_pairs])
    suite_probs = np.array([p for _, p in suite_pairs])
    return masks, version_probs, suite_probs


def exact_zeta(
    population: VersionPopulation, generator: SuiteGenerator
) -> np.ndarray:
    """Exact ``ζ(x)`` by direct summation over ``℘ × Ξ`` (eq. (14))."""
    masks, version_probs, suite_probs = _tested_masks(population, generator)
    return np.einsum("i,j,ijx->x", version_probs, suite_probs, masks)


def exact_joint_per_demand(
    regime: TestingRegime,
    population_a: VersionPopulation,
    population_b: VersionPopulation | None = None,
) -> np.ndarray:
    """Exact per-demand ``P(both tested versions fail on x)`` — eq. (15).

    Computed from the raw generative definition under the regime's suite
    coupling; agreement with
    :func:`repro.core.joint.joint_failure_probability` validates the
    paper's derivations as implemented.
    """
    population_b = population_b if population_b is not None else population_a

    if isinstance(regime, SameSuite):
        masks_a, vprobs_a, sprobs = _tested_masks(population_a, regime.generator)
        if population_b is population_a:
            masks_b, vprobs_b = masks_a, vprobs_a
        else:
            masks_b, vprobs_b, _ = _tested_masks(population_b, regime.generator)
        # shared suite: average over the diagonal of the suite measure
        mean_a = np.einsum("i,ijx->jx", vprobs_a, masks_a)
        mean_b = np.einsum("i,ijx->jx", vprobs_b, masks_b)
        return np.einsum("j,jx,jx->x", sprobs, mean_a, mean_b)

    if isinstance(regime, IndependentSuites):
        zeta_a = exact_zeta(population_a, regime.generator)
        if population_b is population_a:
            zeta_b = zeta_a
        else:
            zeta_b = exact_zeta(population_b, regime.generator)
        return zeta_a * zeta_b

    if isinstance(regime, ForcedTestingDiversity):
        zeta_a = exact_zeta(population_a, regime.generator_a)
        zeta_b = exact_zeta(population_b, regime.generator_b)
        return zeta_a * zeta_b

    raise TypeError(f"unknown testing regime: {type(regime).__name__}")


def exact_marginal_system_pfd(
    regime: TestingRegime,
    population_a: VersionPopulation,
    profile: UsageProfile,
    population_b: VersionPopulation | None = None,
) -> float:
    """Exact marginal 1-out-of-2 system pfd — eqs. (22)–(25) ground truth."""
    joint = exact_joint_per_demand(regime, population_a, population_b)
    return profile.expectation(joint)
