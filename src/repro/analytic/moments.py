"""Weighted discrete moments.

Thin, well-tested helpers shared by the exact engines and the experiment
reports.  All take an explicit weight vector (a probability distribution
over demands) so they work with any usage profile or conditional measure.
"""

from __future__ import annotations

import numpy as np

from ..errors import ProbabilityError

__all__ = ["weighted_mean", "weighted_var", "weighted_cov", "validate_weights"]

_SUM_TOLERANCE = 1e-9


def validate_weights(weights: np.ndarray) -> np.ndarray:
    """Check that ``weights`` is a probability vector; return as float64."""
    array = np.asarray(weights, dtype=np.float64)
    if array.ndim != 1:
        raise ProbabilityError(f"weights must be 1-D, got shape {array.shape}")
    if np.any(array < 0.0) or np.any(~np.isfinite(array)):
        raise ProbabilityError("weights must be finite and non-negative")
    if abs(float(array.sum()) - 1.0) > _SUM_TOLERANCE:
        raise ProbabilityError(
            f"weights must sum to 1, got {float(array.sum()):.12f}"
        )
    return array


def weighted_mean(values: np.ndarray, weights: np.ndarray) -> float:
    """``E_w[v]`` for a per-point value vector under probability weights."""
    weights = validate_weights(weights)
    values = np.asarray(values, dtype=np.float64)
    if values.shape != weights.shape:
        raise ProbabilityError(
            f"values shape {values.shape} does not match weights shape "
            f"{weights.shape}"
        )
    return float(weights @ values)


def weighted_var(values: np.ndarray, weights: np.ndarray) -> float:
    """``Var_w[v]`` — never negative (clipped at the floating-point floor)."""
    mean = weighted_mean(values, weights)
    values = np.asarray(values, dtype=np.float64)
    second = float(validate_weights(weights) @ (values - mean) ** 2)
    return max(second, 0.0)


def weighted_cov(
    first: np.ndarray, second: np.ndarray, weights: np.ndarray
) -> float:
    """``Cov_w[u, v]`` — may take either sign (the LM key quantity)."""
    weights = validate_weights(weights)
    u = np.asarray(first, dtype=np.float64)
    v = np.asarray(second, dtype=np.float64)
    if u.shape != weights.shape or v.shape != weights.shape:
        raise ProbabilityError("value vectors must match weights shape")
    mean_u = float(weights @ u)
    mean_v = float(weights @ v)
    return float(weights @ ((u - mean_u) * (v - mean_v)))
