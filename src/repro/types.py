"""Shared type aliases and small value objects used across :mod:`repro`.

The paper's objects map onto the following concrete representations:

* a *demand* is an integer index into a finite demand space ``F``;
* a *fault* is an integer index into a finite fault universe, carrying a
  *failure region* (a set of demands);
* a *program version* ``π`` is the set of faults it contains;
* a *test suite* ``t`` is a set of demands;
* measures (``S``, ``Q``, ``M``) are either sampling procedures or explicit
  finite distributions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, Sequence, Union

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from numpy.typing import NDArray

#: A demand is an index into the demand space.
DemandIndex = int

#: A fault is an index into the fault universe.
FaultIndex = int

#: Dense float vector (probabilities, difficulty functions, ...).
FloatArray = "NDArray[np.float64]"

#: Dense bool vector (failure regions, fault-presence indicators, ...).
BoolArray = "NDArray[np.bool_]"

#: Dense int vector (demand indices, fault indices, ...).
IntArray = "NDArray[np.int64]"

#: Anything accepted where a seed is expected.
SeedLike = Union[int, np.random.SeedSequence, np.random.Generator, None]


class SupportsSample(Protocol):
    """Protocol for objects that can be sampled with a numpy generator."""

    def sample(self, rng: np.random.Generator) -> object:
        """Draw one realisation using ``rng``."""


def as_index_array(indices: Sequence[int] | "NDArray[np.int64]") -> "NDArray[np.int64]":
    """Return ``indices`` as a sorted, duplicate-free int64 array.

    The library canonicalises demand and fault index sets this way so that
    set-valued objects (failure regions, test suites, fault sets) have a
    single representation, making equality and hashing dependable.
    """
    array = np.asarray(indices, dtype=np.int64)
    if array.ndim != 1:
        array = array.reshape(-1)
    return np.unique(array)
