"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  The subclasses draw the distinctions that matter to a
user of a stochastic-modelling library: invalid model construction, invalid
probability values, incompatible model components, and features that require
an exact (enumerable) representation when only a sampling one is available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ModelError(ReproError):
    """A model object was constructed with inconsistent parameters."""


class ProbabilityError(ModelError):
    """A supplied probability or probability vector is invalid.

    Raised when values fall outside ``[0, 1]`` or when a distribution does
    not sum to one within tolerance.
    """


class IncompatibleSpaceError(ModelError):
    """Two components refer to different demand spaces or fault universes."""


class NotEnumerableError(ReproError):
    """An exact computation was requested from a sampling-only object.

    Exact enumeration requires a finite, explicitly enumerable population or
    test-suite measure.  Objects that can only be sampled raise this error
    from their enumeration hooks; callers should fall back to Monte Carlo.
    """


class ConvergenceError(ReproError):
    """A sequential Monte-Carlo estimation failed to reach its target."""


class EmptyPopulationError(ModelError):
    """A population or measure with no support was supplied."""
