"""Score functions — the paper's ``υ`` notation made executable.

Definition (11) of the paper::

    υ(π, x, t) = 1 if π, tested on t, fails on x
                 0 otherwise

with ``υ(π, x, ∅) = υ(π, x)`` the before-testing score of Eckhardt and Lee.
Under perfect detection and fixing the fundamental monotonicity holds:
``υ(π, x, ∅) ≥ υ(π, x, t)`` — testing can only flip scores from 1 to 0.
These helpers exist so the model layer can speak the paper's language while
the heavy lifting stays vectorised in the substrate classes.
"""

from __future__ import annotations

from ..testing import TestSuite, apply_testing
from ..versions import Version

__all__ = ["score_before_testing", "score_after_perfect_testing"]


def score_before_testing(version: Version, demand: int) -> int:
    """``υ(π, x, ∅)`` — 1 iff the untested version fails on the demand."""
    return version.score(demand)


def score_after_perfect_testing(
    version: Version, suite: TestSuite, demand: int
) -> int:
    """``υ(π, x, t)`` under a perfect oracle and perfect fixing.

    Equivalent to testing the version set-wise (every fault triggered by
    the suite is removed) and scoring the survivor.  Guaranteed to be at
    most :func:`score_before_testing` for the same arguments.
    """
    outcome = apply_testing(version, suite)
    return outcome.after.score(demand)
